#!/usr/bin/env python
"""Non-gating perf trend annotation for CI.

Compares the newest quick entry in a perf trajectory file (the one the
CI run just appended) against the last recorded *full* entry — the
deliberate, checked-in measurement — and emits a Markdown summary for
``$GITHUB_STEP_SUMMARY``.  Exits 0 always: shared-runner wall-clock is
too noisy to gate on, but a >25% headline drop gets a ``::warning``
annotation so it is visible on the run page.

Usage: python scripts/perf_trend.py [BENCH_perf.json]
"""

from __future__ import annotations

import json
import sys

THRESHOLD = 0.25

HEADLINES = (
    ("kernel_events_per_sec", "kernel sleep events/s", None),
    ("macro", "macro sim-s per wall-s", "sim_s_per_wall_s"),
)


def _metric(entry, key, subkey):
    value = entry.get(key)
    if subkey is not None and isinstance(value, dict):
        value = value.get(subkey)
    return value if isinstance(value, (int, float)) and value > 0 else None


def main(path: str = "BENCH_perf.json") -> int:
    try:
        with open(path) as fh:
            entries = json.load(fh).get("entries", [])
    except (OSError, ValueError) as exc:
        print(f"perf-trend: cannot read {path}: {exc}")
        return 0
    quick = next((e for e in reversed(entries) if e.get("quick")), None)
    if quick is None:
        print("perf-trend: no quick entry; skipping")
        return 0
    # Only a full entry from the *same machine fingerprint* is a trend
    # baseline: a full entry recorded on a different box (a dev laptop,
    # a differently-sized runner) made the delta pure noise and the
    # -25% warning fire spuriously.
    machine = quick.get("machine")
    full = next(
        (
            e
            for e in reversed(entries)
            if not e.get("quick") and e.get("machine") == machine
        ),
        None,
    )
    if full is None:
        print(
            "perf-trend: no comparable full entry (same machine "
            "fingerprint) to compare against; skipping"
        )
        return 0
    lines = [
        "### Perf trend (quick CI entry vs last recorded full entry)",
        "",
        "| metric | full | quick | delta |",
        "|---|---|---|---|",
    ]
    for key, label, subkey in HEADLINES:
        new = _metric(quick, key, subkey)
        old = _metric(full, key, subkey)
        if new is None or old is None:
            continue
        pct = (new - old) / old
        lines.append(f"| {label} | {old:,.0f} | {new:,.0f} | {pct:+.1%} |")
        if pct < -THRESHOLD:
            # GitHub annotation: visible on the run page, non-gating.
            print(
                f"::warning title=perf regression::{label} regressed "
                f"{pct:+.1%} vs the last full entry "
                f"({full.get('recorded_at', '?')}); shared-runner noise "
                "is possible — rerun `repro perf` locally to confirm"
            )
    lines.append("")
    lines.append(
        f"_full entry: {full.get('label')} @ {full.get('recorded_at', '?')}; "
        "threshold for a warning: -25% (non-gating)._"
    )
    print("\n".join(lines))
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
