#!/usr/bin/env python
"""CI bench gate: quick benchmark + regression check vs a baseline.

Runs the Figure 7 single-stage quick benchmark (2 functions x 2 input
sizes x 5 configurations), exports the headline latencies as a metrics
JSON through the :mod:`repro.obs` layer (uploaded as a CI artifact),
and fails when any headline latency regresses more than the tolerance
over the checked-in baseline (``scripts/bench_baseline.json``).

It also runs the ML inference microbenchmark and fails if the compiled
(code-generated) predict path is ever slower than the recursive tree
walk it replaced — wall-clock rates are too machine-dependent for an
absolute bar in CI, but the *relative* claim "compiled is the fast
path" must hold everywhere.  The measured rates ride along in the
metrics artifact for trend tracking.

The kernel fast path is gated the same relative way: each event-loop
pattern (sleep/chain/churn/event/immediate) is timed with the codegen
dispatch explicitly on and explicitly off (``fastpath.set_enabled``,
so the comparison is identical no matter what ``REPRO_SIM_FASTPATH``
the job exports), and the on/off ratio must clear a conservative
per-pattern floor.  The floors encode what the fast path *claims*:
sleep chains are the headline (≥2x everywhere), churn/event carry the
fused-delivery win (must not lose), and chain is flat by design
(Timeout construction dominates; the floor only catches a real loss).

Finally a small seeded chaos cell (crashes + RSDS episodes + history
recorder) runs under both dispatchers; the two results must be
*identical* — this is the faulted fast path's parity gate at system
scale — and its deterministic counters (ops/completed/failed/
violations) are exact-gated through the ``micro`` section so the
fault-injected workload itself cannot silently drift.

The baseline file is sectioned (``bench-baseline/v2``): ``headlines``
holds the Figure 7 latencies (tolerance-gated) and ``micro`` holds
seeded workload counters (exact-match gated, e.g. the tenants arrival
count).  *Every* baseline key must have a measured counterpart — a
benchmark that silently stops running fails the gate instead of
passing it.  A legacy flat baseline is read as headlines-only.

The simulation is fully seeded, so on an unchanged tree the measured
values match the baseline exactly; the 25% tolerance only absorbs
intentional small model/latency adjustments.  Regenerate the baseline
after a deliberate performance change with ``--write-baseline``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.bench.fig7 import run_fig7_single  # noqa: E402
from repro.bench.perfbench import bench_ml  # noqa: E402
from repro.obs import export_json, MetricsRegistry  # noqa: E402
from repro.sim.latency import KB  # noqa: E402
from repro.workloads.functions import FIGURE7_FUNCTIONS  # noqa: E402

TOLERANCE = 0.25
#: The compiled path must at minimum not lose to the recursive walk.
ML_MIN_SPEEDUP = 1.0
#: Fast-path on/off floors per kernel pattern.  Measured ratios on the
#: dev container: sleep ~3.8x, event ~1.2x, churn ~1.15x, immediate
#: ~1.07x, chain ~1.0x (flat by design: the chain pattern is bound by
#: Timeout construction, not dispatch).  Floors sit well under the
#: measurements because single-run wall clocks on shared CI swing
#: +-20%; they catch "the fast path stopped being fast", not noise.
KERNEL_MIN_RATIO = {
    "sleep": 2.0,
    "chain": 0.85,
    "churn": 0.9,
    "event": 0.9,
    "immediate": 0.85,
}
KERNEL_GATE_N = 100_000
KERNEL_GATE_REPEATS = 3
BASELINE_SCHEMA = "bench-baseline/v2"
BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "bench_baseline.json"
)
DEFAULT_OUT = "results/bench_metrics.json"

BENCH_FUNCTIONS = 2
BENCH_SIZES = (16 * KB, 128 * KB)


def measure() -> dict:
    """Headline latencies keyed "workload/size/config" -> total seconds."""
    rows = run_fig7_single(
        FIGURE7_FUNCTIONS[:BENCH_FUNCTIONS], sizes=BENCH_SIZES
    )
    return {
        f"{row.workload}/{row.input_size}/{row.config}": row.total_s
        for row in rows
    }


def measure_micro() -> dict:
    """Seeded workload counters, keyed "family/name" -> exact value.

    Unlike the wall-clock rates these are deterministic by
    construction, so the gate requires an exact match: any drift means
    a seeded generator changed behaviour.
    """
    from repro.workloads.tenants import (  # noqa: E402
        MergedArrivalStream,
        TenantWorkloadConfig,
        synthesize_tenants,
    )

    config = TenantWorkloadConfig(n_tenants=200, mean_interval_s=60.0, seed=0)
    stream = MergedArrivalStream(synthesize_tenants(config), deadline=3600.0)
    return {"tenants/arrivals_200t_1h": sum(1 for _ in stream)}


def measure_kernel_ratios() -> dict:
    """Fast-path on/off events-per-second ratio for each kernel pattern.

    Both sides are pinned with ``set_enabled`` (best-of-N interleaved),
    so the measurement is self-relative and identical under any
    ``REPRO_SIM_FASTPATH`` the CI job exports.
    """
    from repro.bench.perfbench import KERNEL_PATTERNS  # noqa: E402
    from repro.sim import fastpath  # noqa: E402

    original = fastpath.enabled()
    ratios = {}
    try:
        for name in KERNEL_MIN_RATIO:
            fn = KERNEL_PATTERNS[name]
            best = {True: 0.0, False: 0.0}
            for _ in range(KERNEL_GATE_REPEATS):
                for enabled in (True, False):
                    fastpath.set_enabled(enabled)
                    best[enabled] = max(best[enabled], fn(KERNEL_GATE_N))
            ratios[name] = best[True] / best[False]
    finally:
        fastpath.set_enabled(original)
    return ratios


def measure_faulted_cell() -> dict:
    """Seeded chaos cell under both dispatchers: parity + counters.

    Returns the cell's deterministic counters for the ``micro`` section
    and raises if the fast-faulted and generic runs diverge in *any*
    field — the system-scale parity gate for the faulted fast path.
    """
    from dataclasses import asdict  # noqa: E402

    from repro.bench.chaos import ChaosCell, run_chaos_cell  # noqa: E402
    from repro.sim import fastpath  # noqa: E402

    cell = ChaosCell(
        backend="ofc",
        intensity="medium",
        quota_policy="none",
        n_tenants=24,
        mean_interval_s=6.0,
        duration_s=20.0,
        seed=11,
        warmup_s=10.0,
    )
    original = fastpath.enabled()
    results = {}
    try:
        for enabled in (True, False):
            fastpath.set_enabled(enabled)
            results[enabled] = asdict(run_chaos_cell(cell))
    finally:
        fastpath.set_enabled(original)
    if results[True] != results[False]:
        diverged = sorted(
            key
            for key in results[True]
            if results[True][key] != results[False][key]
        )
        raise AssertionError(
            "faulted cell diverged between fast and generic dispatch "
            f"(fields: {', '.join(diverged)})"
        )
    fast = results[True]
    return {
        "faults/cell_ops": fast["ops"],
        "faults/cell_completed": fast["completed"],
        "faults/cell_failed": fast["failed"],
        "faults/cell_violations": fast["violations_total"],
    }


def load_baseline(path: str) -> dict:
    """Read the baseline, upgrading a legacy flat file to v2 sections."""
    with open(path, encoding="utf-8") as f:
        loaded = json.load(f)
    if loaded.get("schema") == BASELINE_SCHEMA:
        return loaded
    # Legacy flat format: every key is a headline, no micro section.
    print("note: legacy flat baseline (regenerate with --write-baseline)")
    return {"schema": BASELINE_SCHEMA, "headlines": loaded, "micro": {}}


def export_metrics(
    headlines: dict, ml: dict, micro: dict, kernel_ratios: dict, out: str
) -> None:
    registry = MetricsRegistry()
    gauge = registry.gauge(
        "bench_total_s", help="Figure 7 single-stage headline latency (s)"
    )
    for key, total_s in headlines.items():
        workload, size, config = key.split("/")
        gauge.set(total_s, workload=workload, input_size=size, config=config)
    registry.register_collector("headlines", lambda: dict(headlines))
    ml_gauge = registry.gauge(
        "bench_ml", help="J48 train/predict microbenchmark rates"
    )
    for metric, value in ml.items():
        ml_gauge.set(float(value), metric=metric)
    registry.register_collector("ml", lambda: dict(ml))
    micro_gauge = registry.gauge(
        "bench_micro", help="seeded workload counters (exact-match gated)"
    )
    for key, value in micro.items():
        micro_gauge.set(float(value), key=key)
    registry.register_collector("micro", lambda: dict(micro))
    ratio_gauge = registry.gauge(
        "bench_fastpath_ratio",
        help="kernel fast-path on/off events-per-second ratio",
    )
    for pattern, ratio in kernel_ratios.items():
        ratio_gauge.set(float(ratio), pattern=pattern)
    registry.register_collector("fastpath", lambda: dict(kernel_ratios))
    export_json(
        out,
        registry=registry,
        meta={
            "benchmark": "fig7-single-quick",
            "tolerance": TOLERANCE,
            "baseline": os.path.relpath(BASELINE_PATH),
        },
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=DEFAULT_OUT, help="metrics JSON artifact path"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current numbers as the new baseline and exit",
    )
    args = parser.parse_args(argv)

    headlines = measure()
    ml = bench_ml(n_rows=800)
    micro = measure_micro()
    # The faulted cell is a gate in itself: it raises on any fast/
    # generic divergence before its counters even reach the baseline.
    micro.update(measure_faulted_cell())
    kernel_ratios = measure_kernel_ratios()
    export_metrics(headlines, ml, micro, kernel_ratios, args.out)
    print(f"[bench metrics written to {args.out}]")

    if args.write_baseline:
        doc = {
            "schema": BASELINE_SCHEMA,
            "headlines": dict(sorted(headlines.items())),
            "micro": dict(sorted(micro.items())),
        }
        with open(BASELINE_PATH, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"[baseline written to {BASELINE_PATH}]")
        return 0

    if not os.path.exists(BASELINE_PATH):
        print(
            f"baseline missing: {BASELINE_PATH} (run with --write-baseline)",
            file=sys.stderr,
        )
        return 1
    baseline = load_baseline(BASELINE_PATH)

    failures = []
    if ml["ml_predict_speedup"] < ML_MIN_SPEEDUP:
        failures.append(
            "ml_predict: compiled path slower than recursive walk "
            f"(speedup {ml['ml_predict_speedup']:.2f}x < "
            f"{ML_MIN_SPEEDUP:.1f}x; "
            f"{ml['ml_predict_rows_per_sec']:,.0f} vs "
            f"{ml['recursive_rows_per_sec']:,.0f} rows/s)"
        )
    else:
        print(
            f"ml gate OK: compiled predict {ml['ml_predict_speedup']:.2f}x "
            f"the recursive walk ({ml['ml_predict_rows_per_sec']:,.0f} rows/s)"
        )
    for pattern, floor in sorted(KERNEL_MIN_RATIO.items()):
        ratio = kernel_ratios[pattern]
        if ratio < floor:
            failures.append(
                f"fastpath/{pattern}: on/off ratio {ratio:.2f}x below the "
                f"{floor:.2f}x floor"
            )
    gated = ", ".join(
        f"{p} {kernel_ratios[p]:.2f}x" for p in sorted(KERNEL_MIN_RATIO)
    )
    print(f"fastpath gate ratios: {gated}")
    # Every baseline key must be measured: a benchmark that silently
    # stops running is a gate failure, not a pass.
    for key, base in sorted(baseline["headlines"].items()):
        measured = headlines.get(key)
        if measured is None:
            failures.append(f"{key}: baseline headline not measured this run")
            continue
        if measured > base * (1.0 + TOLERANCE):
            pct = 100.0 * (measured - base) / base
            failures.append(
                f"{key}: {measured:.6f}s vs baseline {base:.6f}s (+{pct:.1f}%)"
            )
    for key, base in sorted(baseline["micro"].items()):
        measured = micro.get(key)
        if measured is None:
            failures.append(f"{key}: baseline micro entry not measured")
        elif measured != base:
            failures.append(
                f"{key}: {measured} vs baseline {base} "
                "(seeded counter drifted)"
            )
    for key in sorted(set(headlines) - set(baseline["headlines"])):
        print(f"note: new headline not in baseline: {key}")
    for key in sorted(set(micro) - set(baseline["micro"])):
        print(f"note: new micro entry not in baseline: {key}")

    if failures:
        print(
            f"bench gate FAILED ({len(failures)} regression(s) "
            f">{TOLERANCE:.0%}):",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        f"bench gate OK: {len(baseline['headlines'])} headlines within "
        f"{TOLERANCE:.0%} of baseline, "
        f"{len(baseline['micro'])} micro entries exact"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
