#!/usr/bin/env python
"""CI bench gate: quick benchmark + regression check vs a baseline.

Runs the Figure 7 single-stage quick benchmark (2 functions x 2 input
sizes x 5 configurations), exports the headline latencies as a metrics
JSON through the :mod:`repro.obs` layer (uploaded as a CI artifact),
and fails when any headline latency regresses more than the tolerance
over the checked-in baseline (``scripts/bench_baseline.json``).

It also runs the ML inference microbenchmark and fails if the compiled
(code-generated) predict path is ever slower than the recursive tree
walk it replaced — wall-clock rates are too machine-dependent for an
absolute bar in CI, but the *relative* claim "compiled is the fast
path" must hold everywhere.  The measured rates ride along in the
metrics artifact for trend tracking.

The baseline file is sectioned (``bench-baseline/v2``): ``headlines``
holds the Figure 7 latencies (tolerance-gated) and ``micro`` holds
seeded workload counters (exact-match gated, e.g. the tenants arrival
count).  *Every* baseline key must have a measured counterpart — a
benchmark that silently stops running fails the gate instead of
passing it.  A legacy flat baseline is read as headlines-only.

The simulation is fully seeded, so on an unchanged tree the measured
values match the baseline exactly; the 25% tolerance only absorbs
intentional small model/latency adjustments.  Regenerate the baseline
after a deliberate performance change with ``--write-baseline``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.bench.fig7 import run_fig7_single  # noqa: E402
from repro.bench.perfbench import bench_ml  # noqa: E402
from repro.obs import export_json, MetricsRegistry  # noqa: E402
from repro.sim.latency import KB  # noqa: E402
from repro.workloads.functions import FIGURE7_FUNCTIONS  # noqa: E402

TOLERANCE = 0.25
#: The compiled path must at minimum not lose to the recursive walk.
ML_MIN_SPEEDUP = 1.0
BASELINE_SCHEMA = "bench-baseline/v2"
BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "bench_baseline.json"
)
DEFAULT_OUT = "results/bench_metrics.json"

BENCH_FUNCTIONS = 2
BENCH_SIZES = (16 * KB, 128 * KB)


def measure() -> dict:
    """Headline latencies keyed "workload/size/config" -> total seconds."""
    rows = run_fig7_single(
        FIGURE7_FUNCTIONS[:BENCH_FUNCTIONS], sizes=BENCH_SIZES
    )
    return {
        f"{row.workload}/{row.input_size}/{row.config}": row.total_s
        for row in rows
    }


def measure_micro() -> dict:
    """Seeded workload counters, keyed "family/name" -> exact value.

    Unlike the wall-clock rates these are deterministic by
    construction, so the gate requires an exact match: any drift means
    a seeded generator changed behaviour.
    """
    from repro.workloads.tenants import (  # noqa: E402
        MergedArrivalStream,
        TenantWorkloadConfig,
        synthesize_tenants,
    )

    config = TenantWorkloadConfig(n_tenants=200, mean_interval_s=60.0, seed=0)
    stream = MergedArrivalStream(synthesize_tenants(config), deadline=3600.0)
    return {"tenants/arrivals_200t_1h": sum(1 for _ in stream)}


def load_baseline(path: str) -> dict:
    """Read the baseline, upgrading a legacy flat file to v2 sections."""
    with open(path, encoding="utf-8") as f:
        loaded = json.load(f)
    if loaded.get("schema") == BASELINE_SCHEMA:
        return loaded
    # Legacy flat format: every key is a headline, no micro section.
    print("note: legacy flat baseline (regenerate with --write-baseline)")
    return {"schema": BASELINE_SCHEMA, "headlines": loaded, "micro": {}}


def export_metrics(headlines: dict, ml: dict, micro: dict, out: str) -> None:
    registry = MetricsRegistry()
    gauge = registry.gauge(
        "bench_total_s", help="Figure 7 single-stage headline latency (s)"
    )
    for key, total_s in headlines.items():
        workload, size, config = key.split("/")
        gauge.set(total_s, workload=workload, input_size=size, config=config)
    registry.register_collector("headlines", lambda: dict(headlines))
    ml_gauge = registry.gauge(
        "bench_ml", help="J48 train/predict microbenchmark rates"
    )
    for metric, value in ml.items():
        ml_gauge.set(float(value), metric=metric)
    registry.register_collector("ml", lambda: dict(ml))
    micro_gauge = registry.gauge(
        "bench_micro", help="seeded workload counters (exact-match gated)"
    )
    for key, value in micro.items():
        micro_gauge.set(float(value), key=key)
    registry.register_collector("micro", lambda: dict(micro))
    export_json(
        out,
        registry=registry,
        meta={
            "benchmark": "fig7-single-quick",
            "tolerance": TOLERANCE,
            "baseline": os.path.relpath(BASELINE_PATH),
        },
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=DEFAULT_OUT, help="metrics JSON artifact path"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current numbers as the new baseline and exit",
    )
    args = parser.parse_args(argv)

    headlines = measure()
    ml = bench_ml(n_rows=800)
    micro = measure_micro()
    export_metrics(headlines, ml, micro, args.out)
    print(f"[bench metrics written to {args.out}]")

    if args.write_baseline:
        doc = {
            "schema": BASELINE_SCHEMA,
            "headlines": dict(sorted(headlines.items())),
            "micro": dict(sorted(micro.items())),
        }
        with open(BASELINE_PATH, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"[baseline written to {BASELINE_PATH}]")
        return 0

    if not os.path.exists(BASELINE_PATH):
        print(
            f"baseline missing: {BASELINE_PATH} (run with --write-baseline)",
            file=sys.stderr,
        )
        return 1
    baseline = load_baseline(BASELINE_PATH)

    failures = []
    if ml["ml_predict_speedup"] < ML_MIN_SPEEDUP:
        failures.append(
            "ml_predict: compiled path slower than recursive walk "
            f"(speedup {ml['ml_predict_speedup']:.2f}x < "
            f"{ML_MIN_SPEEDUP:.1f}x; "
            f"{ml['ml_predict_rows_per_sec']:,.0f} vs "
            f"{ml['recursive_rows_per_sec']:,.0f} rows/s)"
        )
    else:
        print(
            f"ml gate OK: compiled predict {ml['ml_predict_speedup']:.2f}x "
            f"the recursive walk ({ml['ml_predict_rows_per_sec']:,.0f} rows/s)"
        )
    # Every baseline key must be measured: a benchmark that silently
    # stops running is a gate failure, not a pass.
    for key, base in sorted(baseline["headlines"].items()):
        measured = headlines.get(key)
        if measured is None:
            failures.append(f"{key}: baseline headline not measured this run")
            continue
        if measured > base * (1.0 + TOLERANCE):
            pct = 100.0 * (measured - base) / base
            failures.append(
                f"{key}: {measured:.6f}s vs baseline {base:.6f}s (+{pct:.1f}%)"
            )
    for key, base in sorted(baseline["micro"].items()):
        measured = micro.get(key)
        if measured is None:
            failures.append(f"{key}: baseline micro entry not measured")
        elif measured != base:
            failures.append(
                f"{key}: {measured} vs baseline {base} "
                "(seeded counter drifted)"
            )
    for key in sorted(set(headlines) - set(baseline["headlines"])):
        print(f"note: new headline not in baseline: {key}")
    for key in sorted(set(micro) - set(baseline["micro"])):
        print(f"note: new micro entry not in baseline: {key}")

    if failures:
        print(
            f"bench gate FAILED ({len(failures)} regression(s) "
            f">{TOLERANCE:.0%}):",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        f"bench gate OK: {len(baseline['headlines'])} headlines within "
        f"{TOLERANCE:.0%} of baseline, "
        f"{len(baseline['micro'])} micro entries exact"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
