"""Unit tests for latency models and RNG streams."""

import numpy as np
import pytest

from repro.sim import LatencyModel, RngRegistry
from repro.sim.latency import GB, MB, MIGRATION


def test_mean_without_bandwidth():
    model = LatencyModel(base_s=0.01)
    assert model.mean(10**9) == 0.01


def test_mean_with_bandwidth():
    model = LatencyModel(base_s=0.0, bandwidth_bps=100.0)
    assert model.mean(50) == pytest.approx(0.5)


def test_sample_without_jitter_is_deterministic():
    model = LatencyModel(base_s=0.01, bandwidth_bps=1e6)
    rng = np.random.default_rng(0)
    assert model.sample(rng, 1000) == model.mean(1000)


def test_sample_with_jitter_varies_but_is_bounded():
    model = LatencyModel(base_s=0.01, jitter=0.5)
    rng = np.random.default_rng(0)
    draws = [model.sample(rng) for _ in range(200)]
    assert len(set(draws)) > 100
    assert all(0.01 / 3.001 <= d <= 0.01 * 3.001 for d in draws)


def test_sample_with_none_rng_is_mean():
    model = LatencyModel(base_s=0.02, jitter=0.5)
    assert model.sample(None) == 0.02


def test_scaled_model():
    model = LatencyModel(base_s=0.01, bandwidth_bps=1e6)
    double = model.scaled(2.0)
    assert double.mean(1_000_000) == pytest.approx(2 * model.mean(1_000_000))


def test_migration_calibration_matches_paper():
    # Paper (7.2.1): 0.18 ms @ 8 MB, 1.2 ms @ 64 MB, 13.5 ms @ 1 GB.
    assert MIGRATION.mean(8 * MB) == pytest.approx(0.18e-3, rel=0.35)
    assert MIGRATION.mean(64 * MB) == pytest.approx(1.2e-3, rel=0.35)
    assert MIGRATION.mean(1 * GB) == pytest.approx(13.5e-3, rel=0.35)


def test_rng_streams_are_reproducible():
    a = RngRegistry(seed=7).stream("swift")
    b = RngRegistry(seed=7).stream("swift")
    assert a.random() == b.random()


def test_rng_streams_differ_by_name():
    reg = RngRegistry(seed=7)
    assert reg.stream("a").random() != reg.stream("b").random()


def test_rng_streams_differ_by_seed():
    a = RngRegistry(seed=1).stream("x")
    b = RngRegistry(seed=2).stream("x")
    assert a.random() != b.random()


def test_rng_stream_is_cached():
    reg = RngRegistry(seed=1)
    assert reg.stream("x") is reg.stream("x")


def test_rng_fork_is_independent():
    reg = RngRegistry(seed=3)
    fork = reg.fork(1)
    assert reg.stream("x").random() != fork.stream("x").random()
