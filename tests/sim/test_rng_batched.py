"""Invariants the RNG fast path leans on.

Three pillars: (1) vectorized draws consume the bit stream exactly like
repeated scalar draws, per distribution — this is what makes
:class:`BatchedStream` bit-identical; (2) registry streams are stable by
name across instances and independent across forks; (3) the registry
refuses raw/batched double-issue, which would silently desynchronize
the cursor.
"""

import numpy as np
import pytest

from repro.sim.rng import BatchedStream, DEFAULT_BATCH, RngRegistry

#: Every distribution BatchedStream accepts, with representative params.
DISTRIBUTIONS = [
    ("random", {}),
    ("uniform", {"low": 0.25, "high": 4.0}),
    ("exponential", {"scale": 1.7}),
    ("pareto", {"a": 1.16}),
    ("lognormal", {"mean": 0.0, "sigma": 0.05}),
    ("standard_normal", {}),
    ("normal", {"loc": 1.0, "scale": 2.0}),
    ("geometric", {"p": 0.3}),
]


def _pair(seed=1234):
    return np.random.default_rng(seed), np.random.default_rng(seed)


@pytest.mark.parametrize("kind,params", DISTRIBUTIONS)
def test_vectorized_draws_match_sequential_scalars(kind, params):
    batched_gen, scalar_gen = _pair()
    n = 257
    vector = getattr(batched_gen, kind)(size=n, **params).tolist()
    scalars = [float(getattr(scalar_gen, kind)(**params)) for _ in range(n)]
    assert vector == scalars  # bitwise, not approx
    # The two generators are stream-aligned afterwards, so batching
    # composes: the NEXT draw agrees too.
    assert batched_gen.random() == scalar_gen.random()


@pytest.mark.parametrize("kind,params", DISTRIBUTIONS)
def test_batched_stream_draw_parity(kind, params):
    batched_gen, scalar_gen = _pair(seed=77)
    stream = BatchedStream(batched_gen, kind, batch=16, **params)
    # 3 refills and a partial batch.
    expected = [float(getattr(scalar_gen, kind)(**params)) for _ in range(53)]
    assert [stream.draw() for _ in range(53)] == expected


def test_batched_stream_facade_serves_matching_calls():
    batched_gen, scalar_gen = _pair(seed=5)
    stream = BatchedStream(batched_gen, "lognormal", batch=8, mean=0.0, sigma=0.05)
    expected = [scalar_gen.lognormal(mean=0.0, sigma=0.05) for _ in range(20)]
    got = [stream.lognormal(mean=0.0, sigma=0.05) for _ in range(20)]
    assert got == expected


def test_batched_stream_rejects_mismatched_params():
    stream = BatchedStream(
        np.random.default_rng(0), "lognormal", mean=0.0, sigma=0.05
    )
    stream.lognormal(mean=0.0, sigma=0.05)  # warms the buffer
    with pytest.raises(RuntimeError, match="bit-identity"):
        stream.lognormal(mean=0.0, sigma=0.08)
    with pytest.raises(RuntimeError, match="bit-identity"):
        stream.uniform(0.0, 1.0)


def test_batched_stream_rejects_unverified_distribution():
    with pytest.raises(ValueError, match="not verified batchable"):
        BatchedStream(np.random.default_rng(0), "binomial", n=3, p=0.5)


def test_latency_model_accepts_batched_stream():
    from repro.sim.latency import PLATFORM_OVERHEAD

    scalar_gen = np.random.default_rng(9)
    batched = BatchedStream(
        np.random.default_rng(9), "lognormal", mean=0.0, sigma=0.05
    )
    scalar = [PLATFORM_OVERHEAD.sample(scalar_gen) for _ in range(50)]
    served = [PLATFORM_OVERHEAD.sample(batched) for _ in range(50)]
    assert served == scalar


# -- registry invariants ----------------------------------------------------


def test_stream_names_are_stable_across_registry_instances():
    draws_a = RngRegistry(seed=42).stream("cache").random(8).tolist()
    draws_b = RngRegistry(seed=42).stream("cache").random(8).tolist()
    assert draws_a == draws_b


def test_streams_differ_by_name_and_seed():
    reg = RngRegistry(seed=42)
    assert reg.stream("cache").random() != reg.stream("platform").random()
    assert (
        RngRegistry(seed=1).stream("cache").random()
        != RngRegistry(seed=2).stream("cache").random()
    )


def test_batched_stream_matches_raw_stream_sequence():
    raw = RngRegistry(seed=7).stream("cache")
    batched = RngRegistry(seed=7).batched_stream(
        "cache", "lognormal", mean=0.0, sigma=0.05
    )
    expected = [raw.lognormal(mean=0.0, sigma=0.05) for _ in range(30)]
    assert [batched.draw() for _ in range(30)] == expected


def test_fork_streams_are_independent_and_deterministic():
    base = RngRegistry(seed=3)
    fork_a = base.fork(1)
    fork_b = base.fork(2)
    base_draw = base.stream("cache").random()
    a_draw = fork_a.stream("cache").random()
    b_draw = fork_b.stream("cache").random()
    assert len({base_draw, a_draw, b_draw}) == 3
    # Same salt → same fork, reproducibly.
    assert base.fork(1).stream("cache").random() == a_draw
    assert RngRegistry(seed=3).fork(1).seed == fork_a.seed


def test_registry_refuses_raw_then_batched_and_vice_versa():
    reg = RngRegistry(seed=0)
    reg.stream("cache")
    with pytest.raises(RuntimeError, match="already handed out raw"):
        reg.batched_stream("cache", "lognormal", mean=0.0, sigma=0.05)
    reg2 = RngRegistry(seed=0)
    reg2.batched_stream("persistor", "lognormal", mean=0.0, sigma=0.05)
    with pytest.raises(RuntimeError, match="served batched"):
        reg2.stream("persistor")
    # Re-requesting the identical batched config returns the same cursor.
    again = reg2.batched_stream("persistor", "lognormal", mean=0.0, sigma=0.05)
    assert again is reg2._batched["persistor"]
    with pytest.raises(RuntimeError, match="already batched"):
        reg2.batched_stream("persistor", "lognormal", mean=0.0, sigma=0.08)


def test_default_batch_is_sane():
    assert DEFAULT_BATCH >= 64
