"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Kernel


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=40))
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    kernel = Kernel()
    fired = []

    def make(delay):
        def proc():
            yield kernel.timeout(delay)
            fired.append(kernel.now)

        return proc

    for delay in delays:
        kernel.process(make(delay)())
    kernel.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert kernel.now == max(delays)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20
    )
)
def test_sequential_timeouts_accumulate_exactly(delays):
    kernel = Kernel()

    def proc():
        for delay in delays:
            yield kernel.timeout(delay)
        return kernel.now

    total = kernel.run_process(proc())
    assert abs(total - sum(delays)) < 1e-6 * max(1.0, sum(delays))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1, max_value=30),
    st.floats(min_value=0.01, max_value=5.0),
)
def test_resource_conserves_units(capacity, n_workers, hold):
    """At no instant do granted units exceed capacity; all work finishes."""
    from repro.sim import Resource

    kernel = Kernel()
    resource = Resource(kernel, capacity)
    peaks = []
    done = []

    def worker():
        yield resource.acquire()
        peaks.append(resource.in_use)
        yield kernel.timeout(hold)
        resource.release()
        done.append(True)

    for _ in range(n_workers):
        kernel.process(worker())
    kernel.run()
    assert max(peaks) <= capacity
    assert len(done) == n_workers
    assert resource.in_use == 0


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=30))
def test_all_of_collects_every_value(n):
    kernel = Kernel()
    timeouts = [kernel.timeout(float(i), value=i) for i in range(n)]

    def proc():
        results = yield kernel.all_of(timeouts)
        return sorted(results.values())

    assert kernel.run_process(proc()) == list(range(n))
