"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, Kernel, SimulationError


def test_clock_starts_at_zero():
    kernel = Kernel()
    assert kernel.now == 0.0


def test_timeout_advances_clock():
    kernel = Kernel()
    kernel.timeout(5.0)
    kernel.run()
    assert kernel.now == 5.0


def test_run_until_stops_early():
    kernel = Kernel()
    kernel.timeout(10.0)
    kernel.run(until=3.0)
    assert kernel.now == 3.0


def test_run_until_advances_past_drained_queue():
    kernel = Kernel()
    kernel.timeout(1.0)
    kernel.run(until=60.0)
    assert kernel.now == 60.0


def test_run_until_in_past_raises():
    kernel = Kernel()
    kernel.timeout(5.0)
    kernel.run()
    with pytest.raises(SimulationError):
        kernel.run(until=1.0)


def test_process_sequences_timeouts():
    kernel = Kernel()
    trace = []

    def proc():
        trace.append(kernel.now)
        yield kernel.timeout(2.0)
        trace.append(kernel.now)
        yield kernel.timeout(3.0)
        trace.append(kernel.now)

    kernel.process(proc())
    kernel.run()
    assert trace == [0.0, 2.0, 5.0]


def test_process_return_value():
    kernel = Kernel()

    def proc():
        yield kernel.timeout(1.0)
        return 42

    assert kernel.run_process(proc()) == 42


def test_timeout_carries_value():
    kernel = Kernel()

    def proc():
        got = yield kernel.timeout(1.0, value="payload")
        return got

    assert kernel.run_process(proc()) == "payload"


def test_event_succeed_resumes_waiter():
    kernel = Kernel()
    gate = kernel.event()

    def opener():
        yield kernel.timeout(4.0)
        gate.succeed("open")

    def waiter():
        value = yield gate
        return (kernel.now, value)

    kernel.process(opener())
    result = kernel.run_process(waiter())
    assert result == (4.0, "open")


def test_event_fail_raises_in_waiter():
    kernel = Kernel()
    gate = kernel.event()

    def failer():
        yield kernel.timeout(1.0)
        gate.fail(ValueError("boom"))

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            return str(exc)
        return "no exception"

    kernel.process(failer())
    assert kernel.run_process(waiter()) == "boom"


def test_unhandled_process_exception_propagates():
    kernel = Kernel()

    def bad():
        yield kernel.timeout(1.0)
        raise RuntimeError("unhandled")

    kernel.process(bad())
    with pytest.raises(RuntimeError, match="unhandled"):
        kernel.run()


def test_waiting_on_failed_process_rethrows():
    kernel = Kernel()

    def bad():
        yield kernel.timeout(1.0)
        raise RuntimeError("inner")

    def outer():
        try:
            yield kernel.process(bad())
        except RuntimeError as exc:
            return f"caught {exc}"

    assert kernel.run_process(outer()) == "caught inner"


def test_event_double_trigger_raises():
    kernel = Kernel()
    event = kernel.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_negative_timeout_raises():
    kernel = Kernel()
    with pytest.raises(SimulationError):
        kernel.timeout(-1.0)


def test_same_time_events_fire_in_schedule_order():
    kernel = Kernel()
    trace = []

    def make(name):
        def proc():
            yield kernel.timeout(1.0)
            trace.append(name)

        return proc

    for name in ["a", "b", "c"]:
        kernel.process(make(name)())
    kernel.run()
    assert trace == ["a", "b", "c"]


def test_waiting_on_already_processed_event():
    kernel = Kernel()
    done = kernel.event()
    done.succeed("early")
    kernel.run()

    def late():
        value = yield done
        return value

    assert kernel.run_process(late()) == "early"


def test_all_of_waits_for_all():
    kernel = Kernel()
    t1 = kernel.timeout(1.0, value="one")
    t2 = kernel.timeout(5.0, value="five")

    def proc():
        results = yield AllOf(kernel, [t1, t2])
        return (kernel.now, results[t1], results[t2])

    assert kernel.run_process(proc()) == (5.0, "one", "five")


def test_any_of_returns_on_first():
    kernel = Kernel()
    t1 = kernel.timeout(1.0, value="fast")
    t2 = kernel.timeout(5.0, value="slow")

    def proc():
        results = yield AnyOf(kernel, [t1, t2])
        return (kernel.now, list(results.values()))

    assert kernel.run_process(proc()) == (1.0, ["fast"])


def test_all_of_empty_triggers_immediately():
    kernel = Kernel()

    def proc():
        results = yield kernel.all_of([])
        return results

    assert kernel.run_process(proc()) == {}


def test_all_of_fails_when_member_fails():
    kernel = Kernel()
    bad = kernel.event()

    def failer():
        yield kernel.timeout(1.0)
        bad.fail(KeyError("nope"))

    def proc():
        try:
            yield kernel.all_of([bad, kernel.timeout(10.0)])
        except KeyError:
            return kernel.now

    kernel.process(failer())
    assert kernel.run_process(proc()) == 1.0


def test_interrupt_wakes_process_early():
    kernel = Kernel()

    def sleeper():
        try:
            yield kernel.timeout(100.0)
            return "slept"
        except Interrupt as intr:
            return f"interrupted:{intr.cause}@{kernel.now}"

    proc = kernel.process(sleeper())

    def interrupter():
        yield kernel.timeout(2.0)
        proc.interrupt("wakeup")

    kernel.process(interrupter())
    kernel.run()
    assert proc.value == "interrupted:wakeup@2.0"


def test_interrupt_after_completion_is_noop():
    kernel = Kernel()

    def quick():
        yield kernel.timeout(1.0)
        return "done"

    proc = kernel.process(quick())
    kernel.run()
    proc.interrupt("late")
    kernel.run()
    assert proc.value == "done"


def test_unhandled_interrupt_fails_process():
    kernel = Kernel()

    def sleeper():
        yield kernel.timeout(100.0)

    proc = kernel.process(sleeper())

    def interrupter():
        yield kernel.timeout(1.0)
        proc.interrupt()

    def watcher():
        try:
            yield proc
        except Interrupt:
            return "saw interrupt"

    kernel.process(interrupter())
    assert kernel.run_process(watcher()) == "saw interrupt"


def test_yielding_non_event_raises():
    kernel = Kernel()

    def bad():
        yield "not an event"

    kernel.process(bad())
    with pytest.raises(SimulationError, match="expected an Event"):
        kernel.run()


def test_yielding_bare_delay_sleeps():
    # Fast sleep path: `yield <float|int>` behaves like yielding a
    # kernel.timeout of the same delay.
    kernel = Kernel()
    wakes = []

    def sleeper():
        yield 1.5
        wakes.append(kernel.now)
        yield 2  # ints work too
        wakes.append(kernel.now)
        yield 0.0  # zero sleep resumes in the same instant
        wakes.append(kernel.now)

    kernel.run_process(sleeper())
    assert wakes == [1.5, 3.5, 3.5]


def test_bare_delay_orders_like_timeout():
    # A bare-delay sleep consumes the same schedule slot as the
    # equivalent timeout: same-instant wakes interleave identically.
    def run(variant):
        kernel = Kernel()
        order = []

        def a():
            if variant == "sleep":
                yield 1.0
            else:
                yield kernel.timeout(1.0)
            order.append("a")

        def b():
            yield kernel.timeout(1.0)
            order.append("b")

        kernel.process(a())
        kernel.process(b())
        kernel.run()
        return order

    assert run("sleep") == run("timeout") == ["a", "b"]


def test_negative_bare_delay_raises():
    kernel = Kernel()

    def bad():
        yield -1.0

    kernel.process(bad())
    with pytest.raises(SimulationError, match="negative sleep delay"):
        kernel.run()


def test_interrupted_sleep_drops_stale_wake():
    kernel = Kernel()
    log = []

    def sleeper():
        try:
            yield 10.0
            log.append(("woke", kernel.now))
        except Interrupt:
            log.append(("interrupted", kernel.now))
            yield 1.0
            log.append(("woke", kernel.now))

    proc = kernel.process(sleeper())

    def interrupter():
        yield kernel.timeout(3.0)
        proc.interrupt("stop")

    kernel.process(interrupter())
    kernel.run()
    # The original wake at t=10 must not fire a second resume.
    assert log == [("interrupted", 3.0), ("woke", 4.0)]


def test_deadlock_detection_in_run_process():
    kernel = Kernel()
    never = kernel.event()

    def stuck():
        yield never

    with pytest.raises(SimulationError, match="deadlock"):
        kernel.run_process(stuck())


def test_nested_processes():
    kernel = Kernel()

    def child(duration, value):
        yield kernel.timeout(duration)
        return value

    def parent():
        first = yield kernel.process(child(2.0, "a"))
        second = yield kernel.process(child(3.0, "b"))
        return (first, second, kernel.now)

    assert kernel.run_process(parent()) == ("a", "b", 5.0)


def test_event_value_before_trigger_raises():
    kernel = Kernel()
    event = kernel.event()
    with pytest.raises(SimulationError):
        _ = event.value
