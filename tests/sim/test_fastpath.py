"""Dispatch-order parity for the generated kernel fast path.

Every test drives the same seeded scenario through a kernel with the
generated dispatch installed and one forced onto the generic loop, and
requires the observable traces — (time, tag) logs, return values, final
clocks — to be *equal*, not approximately equal.  This is the
acceptance bar the bench-gate CI job enforces at system scale; here the
coverage is the kernel patterns themselves (sleep chains, same-instant
ties, zero delays, events, interrupts, run-until, limits, call_later).
"""

import pytest

from repro.sim import fastpath
from repro.sim.kernel import Interrupt, Kernel, SimulationError


@pytest.fixture
def both_kernels():
    """Yield a factory for (fast, generic) kernel pairs."""
    original = fastpath.enabled()
    fastpath.set_enabled(True)

    def make():
        fast = Kernel()
        assert fast._fast_run is not None, "fast path not installed"
        generic = Kernel()
        generic.use_generic_dispatch()
        return fast, generic

    yield make
    fastpath.set_enabled(original)


def _run_scenario(kernel, scenario):
    log = []
    scenario(kernel, log)
    return log


def _assert_parity(make, scenario, runner=None):
    traces = []
    for kernel in make():
        log = []
        result = scenario(kernel, log)
        if runner is not None:
            result = runner(kernel, result, log)
        traces.append((log, result, kernel.now))
    assert traces[0] == traces[1]
    return traces[0]


# -- scenarios --------------------------------------------------------------


def test_sleep_chain_parity(both_kernels):
    def scenario(k, log):
        def sleeper(name, delay, reps):
            for i in range(reps):
                yield delay
                log.append((k.now, name, i))

        for i, delay in enumerate([0.5, 0.75, 1.0, 1.25]):
            k.process(sleeper(f"s{i}", delay, 10))
        k.run()

    _assert_parity(both_kernels, scenario)


def test_same_instant_tie_order_parity(both_kernels):
    def scenario(k, log):
        def worker(name):
            yield 1.0  # all wake at the same instant: seq order decides
            log.append((k.now, name))
            yield 0.0  # zero-delay: FIFO at the same instant
            log.append((k.now, name, "z"))

        for i in range(6):
            k.process(worker(f"w{i}"))
        k.run()

    log = _assert_parity(both_kernels, scenario)[0]
    names = [entry[1] for entry in log if len(entry) == 2]
    assert names == [f"w{i}" for i in range(6)]  # spawn order preserved


def test_event_blocking_and_values_parity(both_kernels):
    def scenario(k, log):
        gate = k.event()

        def waiter(name):
            value = yield gate
            log.append((k.now, name, value))
            got = yield k.timeout(0.5, value=name)
            log.append((k.now, name, got))

        def opener():
            yield 2.0
            gate.succeed("open")

        for i in range(3):
            k.process(waiter(f"w{i}"))
        k.process(opener())
        k.run()

    _assert_parity(both_kernels, scenario)


def test_all_of_any_of_parity(both_kernels):
    def scenario(k, log):
        def combo():
            yield k.all_of([k.timeout(1.0), k.timeout(3.0)])
            log.append((k.now, "allof"))
            yield k.any_of([k.timeout(10.0), k.timeout(0.5)])
            log.append((k.now, "anyof"))

        def noise():
            for _ in range(20):
                yield 0.3
                log.append((k.now, "n"))

        k.process(combo())
        k.process(noise())
        k.run()

    _assert_parity(both_kernels, scenario)


def test_failed_event_single_waiter_parity(both_kernels):
    """The fused single-callback arm must deliver failures by throw()."""

    def scenario(k, log):
        gate = k.event()

        def waiter():
            try:
                yield gate
                log.append((k.now, "unreachable"))
            except RuntimeError as exc:
                log.append((k.now, "caught", str(exc)))
                yield 0.5
                log.append((k.now, "after"))

        def failer():
            yield 1.0
            gate.fail(RuntimeError("boom"))

        k.process(waiter())
        k.process(failer())
        k.run()

    _assert_parity(both_kernels, scenario)


def test_fan_in_with_failures_parity(both_kernels):
    """AllOf/AnyOf delivery (the list arm) with failing members."""

    def scenario(k, log):
        def fail_after(delay):
            yield delay
            raise ValueError(f"dead@{delay}")

        def combo():
            procs = [k.process(fail_after(2.0))]
            try:
                yield k.all_of([k.timeout(1.0), procs[0]])
            except ValueError as exc:
                log.append((k.now, "allof-failed", str(exc)))
            first = yield k.any_of([k.timeout(0.5), k.timeout(9.0)])
            log.append((k.now, "anyof", len(first)))

        def noise():
            for _ in range(12):
                yield 0.4
                log.append((k.now, "n"))

        k.process(combo())
        k.process(noise())
        k.run()

    _assert_parity(both_kernels, scenario)


def test_late_wait_redelivery_parity(both_kernels):
    """Waiting on an event that already fired (redelivery scheduling)."""

    def scenario(k, log):
        gate = k.event()

        def early():
            value = yield gate
            log.append((k.now, "early", value))

        def late():
            yield 3.0  # gate fired at t=1; wait on it afterwards
            value = yield gate
            log.append((k.now, "late", value))

        def opener():
            yield 1.0
            gate.succeed("open")

        k.process(early())
        k.process(late())
        k.process(opener())
        k.run()

    _assert_parity(both_kernels, scenario)


def test_run_until_awaited_event_delivery_parity(both_kernels):
    """run_until's target guard: delivery to the awaited event must
    stop the loop at the same instant with identical leftovers."""

    def scenario(k, log):
        gate = k.event()

        def opener():
            yield 2.5
            gate.succeed("done")

        def noise():
            for _ in range(10):
                yield 0.7
                log.append((k.now, "n"))

        k.process(opener())
        k.process(noise())
        value = k.run_until(gate)
        log.append((k.now, "until", value))
        k.run()  # drain leftovers identically

    _assert_parity(both_kernels, scenario)


def test_interrupt_mid_sleep_parity(both_kernels):
    def scenario(k, log):
        def sleeper():
            try:
                yield 100.0
                log.append((k.now, "overslept"))
            except Interrupt as exc:
                log.append((k.now, "interrupted", str(exc.cause)))
                yield 1.0
                log.append((k.now, "resumed"))

        target = k.process(sleeper())

        def interrupter():
            yield 2.0
            target.interrupt(cause="wake-up")

        k.process(interrupter())
        k.run()

    _assert_parity(both_kernels, scenario)


def test_process_join_and_return_value_parity(both_kernels):
    def scenario(k, log):
        def child(n):
            yield 0.25 * n
            return n * n

        def parent():
            total = 0
            for n in range(1, 5):
                total += yield k.process(child(n))
            log.append((k.now, "total", total))
            return total

        result = k.run_process(parent())
        log.append(("result", result))

    _assert_parity(both_kernels, scenario)


def test_run_until_limit_boundary_parity(both_kernels):
    def scenario(k, log):
        def ticker():
            while True:
                yield 1.0
                log.append(k.now)

        k.process(ticker())
        k.run(until=5.0)  # boundary: wake at exactly 5.0 must fire
        log.append(("clock", k.now))
        k.run(until=7.5)  # resume drains leftovers, then advances
        log.append(("clock", k.now))

    _assert_parity(both_kernels, scenario)


def test_run_until_event_parity(both_kernels):
    def scenario(k, log):
        def late():
            yield 4.0
            log.append((k.now, "late"))
            return "done"

        def noise():
            for _ in range(30):
                yield 0.9
                log.append((k.now, "n"))

        proc = k.process(late())
        k.process(noise())
        value = k.run_until(proc)
        log.append((value, k.now))
        k.run()  # drain the leftover noise identically

    _assert_parity(both_kernels, scenario)


def test_negative_delay_raises_on_both(both_kernels):
    for kernel in both_kernels():
        def bad():
            yield -1.0

        kernel.process(bad())
        with pytest.raises(SimulationError, match="negative sleep delay"):
            kernel.run()


def test_non_event_yield_raises_on_both(both_kernels):
    for kernel in both_kernels():
        def bad():
            yield "nonsense"

        kernel.process(bad(), name="bad")
        with pytest.raises(SimulationError, match="expected an Event"):
            kernel.run()


def test_deadlock_detection_parity(both_kernels):
    for kernel in both_kernels():
        def stuck():
            yield kernel.event()  # never succeeds

        with pytest.raises(SimulationError, match="deadlocked"):
            kernel.run_process(stuck())


def test_process_failure_propagates_on_both(both_kernels):
    for kernel in both_kernels():
        def boom():
            yield 1.0
            raise ValueError("kaboom")

        kernel.process(boom())
        with pytest.raises(ValueError, match="kaboom"):
            kernel.run()


def test_call_later_is_slot_identical_to_a_process(both_kernels):
    """call_later must reproduce the discarded-handle process schedule."""

    def scenario_process(k, log):
        def nap():
            yield 2.5
            log.append((k.now, "fired"))

        def tie():
            yield 2.5
            log.append((k.now, "tie"))

        k.process(nap())
        k.process(tie())
        k.run()

    def scenario_call_later(k, log):
        k.call_later(lambda: 2.5, lambda _e: log.append((k.now, "fired")))

        def tie():
            yield 2.5
            log.append((k.now, "tie"))

        k.process(tie())
        k.run()

    for make in (both_kernels,):
        fast, generic = make()
        a = _run_scenario(fast, scenario_call_later)
        b = _run_scenario(generic, scenario_process)
        assert a == b  # same instants, same tie order


def test_call_later_zero_delay_fires_this_instant(both_kernels):
    for kernel in both_kernels():
        log = []

        def spawner():
            yield 1.0
            kernel.call_later(lambda: 0.0, lambda _e: log.append(kernel.now))

        kernel.process(spawner())
        kernel.run()
        assert log == [1.0]


# -- variant selection ------------------------------------------------------


def test_knob_disables_install():
    original = fastpath.enabled()
    try:
        fastpath.set_enabled(False)
        k = Kernel()
        assert k._fast_run is None and k._fast_run_until is None
        fastpath.set_enabled(True)
        k = Kernel()
        assert k._fast_run is not None and k._fast_run_until is not None
    finally:
        fastpath.set_enabled(original)


def test_use_generic_dispatch_uninstalls():
    original = fastpath.enabled()
    try:
        fastpath.set_enabled(True)
        k = Kernel()
        assert k._fast_run is not None
        k.use_generic_dispatch()
        assert k._fast_run is None and k._fast_run_until is None
        # The generic loop still runs fine afterwards.
        ticks = []

        def ticker():
            for _ in range(3):
                yield 1.0
                ticks.append(k.now)

        k.run_process(ticker())
        assert ticks == [1.0, 2.0, 3.0]
    finally:
        fastpath.set_enabled(original)


def test_traced_kernels_fall_back_to_generic():
    from repro.obs import trace as trace_mod

    original = fastpath.enabled()
    was_enabled = trace_mod.tracing_enabled()
    try:
        fastpath.set_enabled(True)
        trace_mod.enable_tracing()
        k = Kernel()
        assert k._tracing
        assert k._fast_run is None, "traced kernel must use the generic loop"
    finally:
        if not was_enabled:
            trace_mod.disable_tracing()
        fastpath.set_enabled(original)


def test_fault_injector_keeps_faulted_fast_path():
    """Injecting faults swaps to the faulted codegen variant, not the
    generic loop (the pre-faulted-variant behavior downgraded every
    chaos cell to generic dispatch for its whole run)."""
    from repro.core.ofc import OFCPlatform
    from repro.faults.injector import FaultInjector
    from repro.faults.schedule import FaultSchedule

    original = fastpath.enabled()
    try:
        fastpath.set_enabled(True)
        ofc = OFCPlatform(seed=1)
        assert ofc.kernel.dispatch_variant == "fast"
        FaultInjector(ofc, FaultSchedule(events=[]))
        assert ofc.kernel.dispatch_variant == "fast-faulted"
        assert ofc.kernel._fast_run is not None
        assert ofc.kernel._fast_run_until is not None
    finally:
        fastpath.set_enabled(original)


def test_fault_injector_respects_global_opt_out():
    """With the fast path globally disabled (REPRO_SIM_FASTPATH=0 /
    set_enabled(False)), fault injection falls back to the generic loop."""
    from repro.core.ofc import OFCPlatform
    from repro.faults.injector import FaultInjector
    from repro.faults.schedule import FaultSchedule

    original = fastpath.enabled()
    try:
        fastpath.set_enabled(False)
        ofc = OFCPlatform(seed=1)
        FaultInjector(ofc, FaultSchedule(events=[]))
        assert ofc.kernel.dispatch_variant == "generic"
        assert ofc.kernel._fast_run is None
    finally:
        fastpath.set_enabled(original)


def test_faulted_variant_matches_standard_variant():
    """The faulted compile unit is the same semantics: a seeded mixed
    scenario (sleeps, events, interrupts, churn) must trace identically
    across standard fast, faulted fast, and generic dispatch."""

    def scenario(k, log):
        gate = k.event()

        def waiter(name):
            value = yield gate
            log.append((k.now, name, value))
            yield k.timeout(0.25)
            log.append((k.now, name, "done"))

        def sleeper():
            for i in range(8):
                yield 0.4
                log.append((k.now, "tick", i))

        def opener():
            yield 1.1
            gate.succeed("open")

        def child(n):
            yield 0.2 * n
            return n

        def parent():
            total = 0
            for n in range(1, 4):
                total += yield k.process(child(n))
            log.append((k.now, "total", total))

        for i in range(3):
            k.process(waiter(f"w{i}"))
        k.process(sleeper())
        k.process(opener())
        k.process(parent())
        k.run()

    original = fastpath.enabled()
    try:
        fastpath.set_enabled(True)
        traces = []
        for setup in (
            lambda k: None,
            lambda k: k.use_faulted_dispatch(),
            lambda k: k.use_generic_dispatch(),
        ):
            k = Kernel()
            setup(k)
            log = []
            scenario(k, log)
            traces.append((log, k.now))
        assert traces[0] == traces[1] == traces[2]
    finally:
        fastpath.set_enabled(original)


def test_generated_source_compiles_cleanly():
    import ast

    src = fastpath.dispatch_source()
    tree = ast.parse(src)
    names = [n.name for n in tree.body if isinstance(n, ast.FunctionDef)]
    assert names == ["make_run", "make_run_until"]
