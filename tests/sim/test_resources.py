"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Interrupt, Kernel, Resource, SimulationError, Store


def test_resource_grants_up_to_capacity():
    kernel = Kernel()
    res = Resource(kernel, capacity=2)
    grants = []

    def worker(name, hold):
        yield res.acquire()
        grants.append((name, kernel.now))
        yield kernel.timeout(hold)
        res.release()

    kernel.process(worker("a", 5.0))
    kernel.process(worker("b", 5.0))
    kernel.process(worker("c", 5.0))
    kernel.run()
    assert grants == [("a", 0.0), ("b", 0.0), ("c", 5.0)]


def test_resource_fifo_order():
    kernel = Kernel()
    res = Resource(kernel, capacity=1)
    order = []

    def worker(name):
        yield res.acquire()
        order.append(name)
        yield kernel.timeout(1.0)
        res.release()

    for name in "abcd":
        kernel.process(worker(name))
    kernel.run()
    assert order == list("abcd")


def test_resource_acquire_more_than_capacity_raises():
    kernel = Kernel()
    res = Resource(kernel, capacity=2)
    with pytest.raises(SimulationError):
        res.acquire(3)


def test_resource_over_release_raises():
    kernel = Kernel()
    res = Resource(kernel, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_resize_up_unblocks_waiters():
    kernel = Kernel()
    res = Resource(kernel, capacity=1)
    got = []

    def worker(name):
        yield res.acquire()
        got.append((name, kernel.now))

    kernel.process(worker("a"))
    kernel.process(worker("b"))

    def grower():
        yield kernel.timeout(3.0)
        res.resize(2)

    kernel.process(grower())
    kernel.run()
    assert got == [("a", 0.0), ("b", 3.0)]


def test_resource_resize_down_does_not_revoke():
    kernel = Kernel()
    res = Resource(kernel, capacity=2)

    def worker():
        yield res.acquire(2)

    kernel.process(worker())
    kernel.run()
    res.resize(1)
    assert res.in_use == 2
    assert res.available == -1


def test_resource_multi_unit_acquire_waits_for_enough():
    kernel = Kernel()
    res = Resource(kernel, capacity=3)
    events = []

    def small(name):
        yield res.acquire(1)
        events.append((name, kernel.now))
        yield kernel.timeout(2.0)
        res.release(1)

    def big():
        yield res.acquire(3)
        events.append(("big", kernel.now))

    kernel.process(small("s1"))
    kernel.process(small("s2"))
    kernel.process(big())
    kernel.run()
    assert ("big", 2.0) in events


def test_store_put_then_get():
    kernel = Kernel()
    store = Store(kernel)
    store.put("x")

    def getter():
        item = yield store.get()
        return item

    assert kernel.run_process(getter()) == "x"


def test_store_get_blocks_until_put():
    kernel = Kernel()
    store = Store(kernel)

    def getter():
        item = yield store.get()
        return (item, kernel.now)

    def putter():
        yield kernel.timeout(7.0)
        store.put("late")

    kernel.process(putter())
    assert kernel.run_process(getter()) == ("late", 7.0)


def test_store_is_fifo():
    kernel = Kernel()
    store = Store(kernel)
    for item in [1, 2, 3]:
        store.put(item)
    assert store.snapshot() == [1, 2, 3]

    def getter():
        a = yield store.get()
        b = yield store.get()
        c = yield store.get()
        return [a, b, c]

    assert kernel.run_process(getter()) == [1, 2, 3]


def test_store_len():
    kernel = Kernel()
    store = Store(kernel)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    assert len(store) == 2


def test_interrupted_queued_acquire_does_not_leak_capacity():
    # A process interrupted while waiting in the acquire queue must not
    # be granted capacity later (nobody would ever release it).
    kernel = Kernel()
    resource = Resource(kernel, capacity=1)
    grants = []

    def holder():
        yield resource.acquire()
        yield kernel.timeout(5.0)
        resource.release()

    def victim():
        try:
            yield resource.acquire()
            grants.append("victim")
            resource.release()
        except Interrupt:
            pass

    def bystander():
        yield kernel.timeout(2.0)  # queue behind victim
        yield resource.acquire()
        grants.append("bystander")
        resource.release()

    kernel.process(holder())
    victim_proc = kernel.process(victim())

    def interrupter():
        yield kernel.timeout(3.0)
        victim_proc.interrupt("cancelled")

    kernel.process(bystander())
    kernel.process(interrupter())
    kernel.run()
    assert grants == ["bystander"]
    assert resource.in_use == 0
    assert resource.available == resource.capacity


def test_interrupted_queued_getter_does_not_swallow_item():
    # A getter interrupted while queued must not consume the next put.
    kernel = Kernel()
    store = Store(kernel)
    received = []

    def victim():
        try:
            item = yield store.get()
            received.append(("victim", item))
        except Interrupt:
            pass

    def survivor():
        yield kernel.timeout(1.0)  # queue behind victim
        item = yield store.get()
        received.append(("survivor", item))

    victim_proc = kernel.process(victim())
    kernel.process(survivor())

    def driver():
        yield kernel.timeout(2.0)
        victim_proc.interrupt("cancelled")
        yield kernel.timeout(1.0)
        store.put("precious")

    kernel.process(driver())
    kernel.run()
    assert received == [("survivor", "precious")]
    assert len(store) == 0


def test_resize_below_queued_acquire_fails_waiter():
    # Shrinking capacity below a queued request must fail that waiter
    # instead of wedging the FIFO head forever.
    kernel = Kernel()
    resource = Resource(kernel, capacity=4)
    log = []

    def holder():
        yield resource.acquire(2)
        yield kernel.timeout(10.0)
        resource.release(2)

    def big_waiter():
        try:
            yield resource.acquire(3)
            log.append("big granted")
        except SimulationError as exc:
            log.append(f"big failed: {exc}")

    def small_waiter():
        yield kernel.timeout(1.0)  # queue behind big_waiter
        yield resource.acquire(1)
        log.append(("small granted", kernel.now))
        resource.release(1)

    kernel.process(holder())
    kernel.process(big_waiter())
    kernel.process(small_waiter())

    def resizer():
        yield kernel.timeout(2.0)
        resource.resize(2)

    kernel.process(resizer())
    kernel.run()
    assert log[0].startswith("big failed:")
    # The small request is granted as soon as the oversized head waiter
    # is cleared out of the way (holder still owns both units).
    assert ("small granted", 10.0) in log
    assert resource.capacity == 2
    assert resource.in_use == 0


def test_resize_up_drains_waiters():
    kernel = Kernel()
    resource = Resource(kernel, capacity=1)
    log = []

    def holder():
        yield resource.acquire()
        yield kernel.timeout(5.0)
        resource.release()

    def waiter():
        yield resource.acquire()
        log.append(kernel.now)
        resource.release()

    kernel.process(holder())
    kernel.process(waiter())

    def resizer():
        yield kernel.timeout(1.0)
        resource.resize(2)

    kernel.process(resizer())
    kernel.run()
    assert log == [1.0]
