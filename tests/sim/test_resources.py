"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Kernel, Resource, SimulationError, Store


def test_resource_grants_up_to_capacity():
    kernel = Kernel()
    res = Resource(kernel, capacity=2)
    grants = []

    def worker(name, hold):
        yield res.acquire()
        grants.append((name, kernel.now))
        yield kernel.timeout(hold)
        res.release()

    kernel.process(worker("a", 5.0))
    kernel.process(worker("b", 5.0))
    kernel.process(worker("c", 5.0))
    kernel.run()
    assert grants == [("a", 0.0), ("b", 0.0), ("c", 5.0)]


def test_resource_fifo_order():
    kernel = Kernel()
    res = Resource(kernel, capacity=1)
    order = []

    def worker(name):
        yield res.acquire()
        order.append(name)
        yield kernel.timeout(1.0)
        res.release()

    for name in "abcd":
        kernel.process(worker(name))
    kernel.run()
    assert order == list("abcd")


def test_resource_acquire_more_than_capacity_raises():
    kernel = Kernel()
    res = Resource(kernel, capacity=2)
    with pytest.raises(SimulationError):
        res.acquire(3)


def test_resource_over_release_raises():
    kernel = Kernel()
    res = Resource(kernel, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_resize_up_unblocks_waiters():
    kernel = Kernel()
    res = Resource(kernel, capacity=1)
    got = []

    def worker(name):
        yield res.acquire()
        got.append((name, kernel.now))

    kernel.process(worker("a"))
    kernel.process(worker("b"))

    def grower():
        yield kernel.timeout(3.0)
        res.resize(2)

    kernel.process(grower())
    kernel.run()
    assert got == [("a", 0.0), ("b", 3.0)]


def test_resource_resize_down_does_not_revoke():
    kernel = Kernel()
    res = Resource(kernel, capacity=2)

    def worker():
        yield res.acquire(2)

    kernel.process(worker())
    kernel.run()
    res.resize(1)
    assert res.in_use == 2
    assert res.available == -1


def test_resource_multi_unit_acquire_waits_for_enough():
    kernel = Kernel()
    res = Resource(kernel, capacity=3)
    events = []

    def small(name):
        yield res.acquire(1)
        events.append((name, kernel.now))
        yield kernel.timeout(2.0)
        res.release(1)

    def big():
        yield res.acquire(3)
        events.append(("big", kernel.now))

    kernel.process(small("s1"))
    kernel.process(small("s2"))
    kernel.process(big())
    kernel.run()
    assert ("big", 2.0) in events


def test_store_put_then_get():
    kernel = Kernel()
    store = Store(kernel)
    store.put("x")

    def getter():
        item = yield store.get()
        return item

    assert kernel.run_process(getter()) == "x"


def test_store_get_blocks_until_put():
    kernel = Kernel()
    store = Store(kernel)

    def getter():
        item = yield store.get()
        return (item, kernel.now)

    def putter():
        yield kernel.timeout(7.0)
        store.put("late")

    kernel.process(putter())
    assert kernel.run_process(getter()) == ("late", 7.0)


def test_store_is_fifo():
    kernel = Kernel()
    store = Store(kernel)
    for item in [1, 2, 3]:
        store.put(item)
    assert store.snapshot() == [1, 2, 3]

    def getter():
        a = yield store.get()
        b = yield store.get()
        c = yield store.get()
        return [a, b, c]

    assert kernel.run_process(getter()) == [1, 2, 3]


def test_store_len():
    kernel = Kernel()
    store = Store(kernel)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    assert len(store) == 2
