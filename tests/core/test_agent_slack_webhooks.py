"""Focused tests: slack estimation, webhook edge cases, metrics."""

import pytest

from repro.core.metrics import OFCMetrics
from repro.sim.latency import MB
from tests.core.conftest import deploy, invoke, seed_images


def test_slack_grows_with_churn(ofc):
    agent = ofc.agents["w0"]
    # Inject synthetic churn samples directly: mean |delta| = 400 MB.
    agent._churn_samples.extend([300.0, 500.0, 400.0])
    agent._last_committed_mb = 0.0
    # Drive the slack loop through one adjustment window.
    ofc.kernel.run(until=ofc.kernel.now + 130.0)
    assert agent.invoker.slack_mb >= 100.0


def test_slack_floor_is_initial_value(ofc):
    agent = ofc.agents["w0"]
    agent._churn_samples.extend([1.0, 2.0, 1.0])  # tiny churn
    ofc.kernel.run(until=ofc.kernel.now + 130.0)
    assert agent.invoker.slack_mb == 100.0  # never below the floor


def test_read_webhook_pushes_from_cache_when_no_persist_pending(ofc):
    """A stale RSDS shadow with a cached copy but no pending persistor:
    the webhook schedules the push itself (§6.2)."""
    ofc.store.ensure_bucket("b")

    def setup():
        yield from ofc.store.put("b", "o", None, 200, shadow=True, internal=True)
        yield from ofc.cluster.put(
            "b/o", "cached-data", 200, caller="w0", flags={"dirty": True}
        )

    ofc.kernel.run_until(ofc.kernel.process(setup()))
    assert ofc.persistor.pending_for("b/o") is None

    def external_get():
        obj = yield from ofc.store.get("b", "o")
        return obj

    obj = ofc.kernel.run_until(ofc.kernel.process(external_get()))
    assert obj.payload == "cached-data"
    assert not obj.meta.is_shadow


def test_read_webhook_with_lost_payload_returns_shadow(ofc):
    """If neither the cache nor a persistor holds the payload, the
    external reader sees the shadow (data lives nowhere else)."""
    ofc.store.ensure_bucket("b")

    def setup():
        yield from ofc.store.put("b", "o", None, 200, shadow=True, internal=True)

    ofc.kernel.run_until(ofc.kernel.process(setup()))

    def external_get():
        obj = yield from ofc.store.get("b", "o")
        return obj

    obj = ofc.kernel.run_until(ofc.kernel.process(external_get()))
    assert obj.payload is None
    assert obj.meta.is_shadow


def test_write_webhook_on_uncached_object_is_noop(ofc):
    ofc.store.ensure_bucket("b")

    def scenario():
        yield from ofc.store.put("b", "o", "v1", 100)
        yield from ofc.store.put("b", "o", "v2", 100)  # external overwrite

    ofc.kernel.run_until(ofc.kernel.process(scenario()))
    meta = ofc.store.peek_meta("b", "o")
    assert meta.version == 2


def test_metrics_snapshot_roundtrip():
    metrics = OFCMetrics()
    metrics.scale_ups = 3
    metrics.scale_up_time_s = 0.0123456
    metrics.record_cache_size(1.0, 100)
    metrics.record_cache_size(2.0, 200)
    snap = metrics.snapshot()
    assert snap["scale_ups"] == 3
    assert snap["scale_up_time_s"] == 0.012346  # rounded
    assert "cache_size_series" not in snap  # series is not a scalar
    assert metrics.cache_size_series == [(1.0, 100), (2.0, 200)]


def test_table2_snapshot_contains_all_rows(ofc):
    deploy(ofc)
    refs = seed_images(ofc, n=1)
    invoke(ofc, ref=refs[0])
    snap = ofc.table2_snapshot()
    for key in (
        "scale_ups",
        "scale_downs_plain",
        "scale_downs_migration",
        "scale_downs_eviction",
        "good_predictions",
        "bad_predictions",
        "failed_invocations",
        "cache_hit_ratio",
        "ephemeral_data_bytes",
    ):
        assert key in snap, key
