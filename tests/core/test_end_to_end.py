"""End-to-end integration stories for the full OFC system."""

import numpy as np
import pytest

from repro.bench.envs import build_ofc_env, build_owk_swift_env, pretrain_function
from repro.faas.records import InvocationRequest
from repro.sim.latency import KB, MB
from repro.workloads.functions import get_function_model
from repro.workloads.media import MediaCorpus


def deploy_and_seed(system, platform, store, kernel, fn_name="wand_sepia",
                    n_inputs=3, seed=13, booked=512.0):
    model = get_function_model(fn_name)
    platform.register_function(model.spec(tenant="t0", booked_mb=booked))
    corpus = MediaCorpus(np.random.default_rng(seed))
    descriptors = [corpus.image(64 * KB) for _ in range(n_inputs)]
    refs = []

    def upload():
        store.ensure_bucket("inputs")
        store.ensure_bucket("outputs")
        for i, media in enumerate(descriptors):
            name = f"in{i}"
            yield from store.put(
                "inputs", name, media, size=media.size,
                user_meta=media.features(),
            )
            refs.append(f"inputs/{name}")

    kernel.run_until(kernel.process(upload()))
    return model, refs, descriptors


def drive(kernel, platform, model, refs, n=30, seed=17):
    rng = np.random.default_rng(seed)
    records = []
    for _ in range(n):
        process = kernel.process(
            platform.invoke(
                InvocationRequest(
                    function=model.name,
                    tenant="t0",
                    args=model.sample_args(rng),
                    input_ref=refs[int(rng.integers(0, len(refs)))],
                )
            )
        )
        records.append(kernel.run_until(process))
    return records


def test_ofc_beats_swift_on_identical_workload():
    """The headline claim, end to end, same seed on both systems."""
    ofc = build_ofc_env(seed=31)
    model, refs, descriptors = deploy_and_seed(
        ofc, ofc.platform, ofc.store, ofc.kernel
    )
    pretrain_function(ofc, model, descriptors, tenant="t0", seed=31)
    ofc_records = drive(ofc.kernel, ofc.platform, model, refs)

    swift = build_owk_swift_env(seed=31)
    model2, refs2, _ = deploy_and_seed(
        swift, swift.platform, swift.store, swift.kernel
    )
    swift_records = drive(swift.kernel, swift.platform, model2, refs2)

    assert all(r.status == "ok" for r in ofc_records + swift_records)
    ofc_total = sum(r.execution_time for r in ofc_records)
    swift_total = sum(r.execution_time for r in swift_records)
    assert ofc_total < 0.6 * swift_total  # >40 % improvement
    assert ofc.rclib_stats.hit_ratio > 0.8


def test_cache_node_crash_mid_workload_is_transparent():
    """Fail-stop of one cache server: invocations keep succeeding."""
    ofc = build_ofc_env(seed=32)
    model, refs, _ = deploy_and_seed(ofc, ofc.platform, ofc.store, ofc.kernel)
    drive(ofc.kernel, ofc.platform, model, refs, n=10)
    victim = next(
        node
        for node in ("w0", "w1", "w2", "w3")
        if ofc.cluster.server(node).master_keys()
    )
    ofc.cluster.crash(victim)
    ofc.kernel.run_until(ofc.kernel.process(ofc.cluster.recover(victim)))
    records = drive(ofc.kernel, ofc.platform, model, refs, n=10, seed=18)
    assert all(r.status == "ok" for r in records)


def test_memory_pressure_forces_cache_to_yield():
    """Small nodes: sandboxes and cache fight for memory, invocations
    always win, and nothing fails."""
    ofc = build_ofc_env(nodes=2, node_mb=1400, seed=33)
    model, refs, descriptors = deploy_and_seed(
        ofc, ofc.platform, ofc.store, ofc.kernel, booked=1024.0
    )
    pretrain_function(ofc, model, descriptors, tenant="t0", seed=33)
    records = drive(ofc.kernel, ofc.platform, model, refs, n=20)
    assert all(r.status == "ok" for r in records)
    snap = ofc.table2_snapshot()
    assert snap["failed_invocations"] == 0
    # The cache had to give memory back at least once.
    assert (
        snap["scale_downs_plain"]
        + snap["scale_downs_migration"]
        + snap["scale_downs_eviction"]
    ) >= 1


def test_outputs_eventually_consistent_with_rsds():
    """Every final output ends up in the RSDS with its latest payload."""
    ofc = build_ofc_env(seed=34)
    model, refs, _ = deploy_and_seed(ofc, ofc.platform, ofc.store, ofc.kernel)
    records = drive(ofc.kernel, ofc.platform, model, refs, n=12)
    ofc.kernel.run(until=ofc.kernel.now + 10.0)  # drain persistors
    for record in records:
        for ref in record.output_refs:
            bucket, name = ref.split("/", 1)
            meta = ofc.store.peek_meta(bucket, name)
            assert not meta.is_shadow, ref


def test_pipeline_and_single_functions_share_the_cache():
    ofc = build_ofc_env(seed=35)
    model, refs, _ = deploy_and_seed(ofc, ofc.platform, ofc.store, ofc.kernel)
    from repro.workloads.pipelines import get_pipeline_app

    app = get_pipeline_app("image_processing")
    app.register(ofc.platform, tenant="t0")
    corpus = MediaCorpus(np.random.default_rng(6))
    p_refs = ofc.kernel.run_until(
        ofc.kernel.process(app.prepare_inputs(ofc.store, corpus, 256 * KB))
    )
    single = drive(ofc.kernel, ofc.platform, model, refs, n=5)
    prec = ofc.invoke_pipeline(app.pipeline, tenant="t0", input_refs=p_refs)
    assert prec.status == "ok"
    assert all(r.status == "ok" for r in single)
    assert ofc.rclib_stats.hits_local + ofc.rclib_stats.hits_remote > 0


def test_twenty_four_tenant_contention_never_fails():
    from repro.bench.macro import run_macro
    from repro.workloads.faasload import TenantProfile

    result = run_macro(
        "ofc",
        TenantProfile.NORMAL,
        duration_s=240.0,
        tenants_per_workload=3,
        node_mb=49152.0,
        seed=2,
    )
    assert result.failed_invocations == 0
    assert result.hit_ratio > 0.4
