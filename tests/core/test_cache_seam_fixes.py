"""Regression tests for the latent bugs fixed on the cache seam.

1. **Duplicate in-flight fill**: two concurrent read-misses on the same
   key each scheduled an async cache fill — double-counting cache
   writes and (with versioned backends) bumping the version on a read
   path.  ``_populate_async`` now dedupes per key, deployment-wide.
2. **Quota vs cache cap**: per-tenant quotas divided the *live* cache
   capacity, which can sit above a configured ``cache_cap_mb``; the
   entitlements then summed past the operator's cap.  Quota arithmetic
   now divides the clamped ``quota_capacity``.
"""

from repro.core import OFCPlatform
from repro.core.config import OFCConfig
from repro.faas.platform import PlatformConfig
from repro.faas.records import InvocationRecord, InvocationRequest
from repro.sim.latency import MB
from tests.core.conftest import seed_images


def build(config=None, node_mb=4096.0):
    system = OFCPlatform(
        config=config,
        platform_config=PlatformConfig(node_memory_mb=node_mb),
        seed=3,
    )
    system.store.create_bucket("inputs")
    system.store.create_bucket("outputs")
    system.start()
    return system


def client_on(ofc, node_id, tenant="t0"):
    invoker = next(
        i for i in ofc.platform.invokers if i.node_id == node_id
    )
    record = InvocationRecord(
        request=InvocationRequest(function="f", tenant=tenant)
    )
    return ofc._make_data_client(invoker, record)


# -- satellite 1: duplicate in-flight fill ----------------------------------


def test_concurrent_misses_fill_once():
    ofc = build()
    # Big enough that the async fill is still moving bytes when the
    # slower of the two RSDS reads comes back: the misses overlap.
    seed_images(ofc, n=1, size=8 * MB)
    c0 = client_on(ofc, "w0")
    c1 = client_on(ofc, "w1")
    puts_before = ofc.cluster.stats.puts

    def read(client):
        obj = yield from client.read("inputs", "img0")
        return obj

    # Two reads race on the same cold key: both miss (neither fill has
    # landed when the second checks), but only ONE fill may be queued.
    p0 = ofc.kernel.process(read(c0))
    p1 = ofc.kernel.process(read(c1))
    ofc.kernel.run_until(p0)
    ofc.kernel.run_until(p1)
    ofc.kernel.run(until=ofc.kernel.now + 5.0)  # let the fill land
    assert ofc.rclib_stats.misses == 2
    assert ofc.rclib_stats.fills_deduped == 1
    assert ofc.cluster.stats.puts - puts_before == 1
    cached = ofc.cluster.peek("inputs/img0")
    assert cached is not None
    assert cached.version == 1  # a duplicate fill would have bumped it


def test_fill_key_released_after_completion():
    ofc = build()
    seed_images(ofc, n=1)
    c0 = client_on(ofc, "w0")

    def read():
        yield from c0.read("inputs", "img0")

    ofc.kernel.run_until(ofc.kernel.process(read()))
    ofc.kernel.run(until=ofc.kernel.now + 5.0)
    assert ofc._inflight_fills == set()  # no leak: later fills proceed


def test_fill_key_released_when_cache_full():
    """A failed fill (no cache room) must still release the key, or the
    object can never be admitted later."""
    config = OFCConfig(cache_cap_mb=0.05)  # ~51 kB/node: nothing fits
    ofc = build(config=config)
    seed_images(ofc, n=1)
    c0 = client_on(ofc, "w0")

    def read():
        yield from c0.read("inputs", "img0")

    ofc.kernel.run_until(ofc.kernel.process(read()))
    ofc.kernel.run(until=ofc.kernel.now + 5.0)
    assert ofc._inflight_fills == set()


# -- satellite 2: quota arithmetic vs cache_cap_mb --------------------------


def test_static_quota_divides_clamped_capacity():
    """With the live pool above the configured cap, a tenant's static
    entitlement must come from the cap, not the inflated total."""
    config = OFCConfig(
        cache_cap_mb=32.0,
        tenant_quota_policy="static",
        tenant_static_fraction=0.5,
    )
    ofc = build(config=config)
    # Inflate the live pool well beyond the 4 x 32 MB cap (resizes can
    # legitimately exceed the cap: shrinks never drop below what the
    # backup log holds).
    def grow():
        for node in ("w0", "w1", "w2", "w3"):
            yield from ofc.cluster.scale_up(node, 256 * MB)

    ofc.kernel.run_until(ofc.kernel.process(grow()))
    assert ofc.cluster.total_capacity > ofc.cluster.quota_capacity
    assert ofc.cluster.quota_capacity == 4 * 32 * MB
    limit = ofc.tenancy.limit_for("t0", ofc.cluster.quota_capacity)
    # Half the pool each: two entitlements must not sum past the cap.
    assert 2 * limit <= 4 * 32 * MB
    c0 = client_on(ofc, "w0", tenant="t0")
    # Pre-fix, _admit divided total_capacity (1 GB+), so a 128 MB
    # request fit a tenant's "half": twice the operator's whole cap.
    # Post-fix the admission base is the clamped figure.
    assert c0._admit(int(limit * 0.9), tenant="t0") is True
    assert c0._admit(int(2 * limit), tenant="t0") is False
    assert ofc.tenancy.rejected["t0"] == 1


def test_quota_capacity_tracks_total_when_uncapped():
    ofc = build()  # no cache_cap_mb configured
    assert ofc.cluster.quota_cap_bytes is None
    assert ofc.cluster.quota_capacity == ofc.cluster.total_capacity
