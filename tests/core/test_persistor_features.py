"""Unit tests for PersistorService details and feature extraction."""

import pytest

from repro.core.features import extract_features
from repro.core.persistor import PersistorService
from repro.faas.records import InvocationRequest
from repro.faas.registry import FunctionSpec
from repro.kvcache import CacheCluster
from repro.sim import Kernel
from repro.sim.latency import MB
from repro.storage import ObjectStore, SWIFT_PROFILE


@pytest.fixture()
def env():
    kernel = Kernel()
    store = ObjectStore(kernel, profile=SWIFT_PROFILE)
    store.rng = None
    store.create_bucket("b")
    cluster = CacheCluster(kernel, ["w0", "w1"])
    for node in ("w0", "w1"):
        cluster.server(node).resize(64 * MB)
    persistor = PersistorService(kernel, store, cluster)
    return kernel, store, cluster, persistor


def test_persist_fills_shadow_and_clears_dirty(env):
    kernel, store, cluster, persistor = env

    def setup():
        meta = yield from store.put("b", "o", None, 100, shadow=True, internal=True)
        yield from cluster.put("b/o", "data", 100, caller="w0", flags={"dirty": True})
        return meta

    meta = kernel.run_until(kernel.process(setup()))
    done = persistor.schedule("b", "o", "data", meta.version, final=False)
    kernel.run_until(done)
    assert done.value is True
    assert not store.peek_meta("b", "o").is_shadow
    assert cluster.peek("b/o").flags["dirty"] is False
    assert persistor.stats.completed == 1
    assert persistor.stats.bytes_persisted == 100


def test_persist_deleted_object_counts_superseded(env):
    kernel, store, cluster, persistor = env
    done = persistor.schedule("b", "ghost", "data", 1, final=False)
    kernel.run_until(done)
    assert done.value is False
    assert persistor.stats.superseded == 1


def test_create_if_missing_performs_full_put(env):
    kernel, store, cluster, persistor = env
    done = persistor.schedule(
        "b", "lazy", "payload", 1, final=False, size=500, create_if_missing=True
    )
    kernel.run_until(done)
    assert done.value is True
    assert store.contains("b", "lazy")
    obj_meta = store.peek_meta("b", "lazy")
    assert obj_meta.size == 500


def test_on_persisted_callback_fires_for_finals(env):
    kernel, store, cluster, persistor = env
    seen = []
    persistor.on_persisted = lambda key, final, version: seen.append(
        (key, final, version)
    )

    def setup():
        meta = yield from store.put("b", "o", None, 10, shadow=True, internal=True)
        return meta

    meta = kernel.run_until(kernel.process(setup()))
    kernel.run_until(persistor.schedule("b", "o", "x", meta.version, final=True))
    assert seen == [("b/o", True, meta.version)]


def test_boost_waits_for_pending_persist(env):
    kernel, store, cluster, persistor = env

    def setup():
        meta = yield from store.put("b", "o", None, 10, shadow=True, internal=True)
        return meta

    meta = kernel.run_until(kernel.process(setup()))
    persistor.schedule("b", "o", "x", meta.version, final=False)
    assert persistor.pending_for("b/o") is not None

    def waiter():
        yield from persistor.boost("b/o")
        return store.peek_meta("b", "o").is_shadow

    still_shadow = kernel.run_until(kernel.process(waiter()))
    assert still_shadow is False
    assert persistor.stats.boosts == 1
    assert persistor.pending_for("b/o") is None


def test_boost_noop_without_pending(env):
    kernel, _store, _cluster, persistor = env

    def waiter():
        yield from persistor.boost("b/none")
        return "done"

    assert kernel.run_until(kernel.process(waiter())) == "done"
    assert persistor.stats.boosts == 0


# -- feature extraction (§5.1.2) ------------------------------------------------


def make_spec(**annotations):
    def body(ctx):
        return
        yield  # pragma: no cover

    return FunctionSpec(
        name="f", tenant="t", body=body, annotations=annotations
    )


def test_extract_features_merges_object_meta_and_args():
    kernel = Kernel()
    store = ObjectStore(kernel, profile=SWIFT_PROFILE)
    store.create_bucket("inputs")

    def seed():
        yield from store.put(
            "inputs", "img", None, 5000,
            user_meta={"width": 640.0, "format": "jpeg"},
        )

    kernel.run_process(seed())
    request = InvocationRequest(
        function="f",
        tenant="t",
        args={"sigma": 2.5, "mode": "fast"},
        input_ref="inputs/img",
    )
    features = extract_features(request, make_spec(), store)
    assert features["in_size"] == 5000.0
    assert features["width"] == 640.0
    assert features["format"] == "jpeg"
    assert features["arg_sigma"] == 2.5
    assert features["arg_mode"] == "fast"


def test_extract_features_without_store_uses_args_only():
    request = InvocationRequest(
        function="f", tenant="t", args={"x": 1.0}, input_ref="inputs/img"
    )
    features = extract_features(request, make_spec(), store=None)
    assert features == {"arg_x": 1.0}


def test_extract_features_skips_internal_and_ref_args():
    request = InvocationRequest(
        function="f",
        tenant="t",
        args={"refs": ["a", "b"], "_stage_index": 2, "obj_id": "x", "k": 3.0},
    )
    features = extract_features(
        request, make_spec(ref_args=["obj_id"]), store=None
    )
    assert features == {"arg_k": 3.0}


def test_extract_features_skips_opaque_values():
    request = InvocationRequest(
        function="f", tenant="t", args={"blob": [1, 2, 3], "n": 7}
    )
    features = extract_features(request, make_spec(), store=None)
    assert features == {"arg_n": 7.0}


def test_extract_features_missing_object_is_tolerated():
    kernel = Kernel()
    store = ObjectStore(kernel, profile=SWIFT_PROFILE)
    store.create_bucket("inputs")
    request = InvocationRequest(
        function="f", tenant="t", args={}, input_ref="inputs/ghost"
    )
    assert extract_features(request, make_spec(), store) == {}
