"""Tests for per-tenant cache accounting and quota policies."""

import pytest

from repro.core.tenancy import (
    NoQuotaPolicy,
    ProportionalSharePolicy,
    StaticQuotaPolicy,
    TenantCacheAccounting,
    jain_index,
    make_quota_policy,
)

GB = 1 << 30


# -- Jain's index ---------------------------------------------------------


def test_jain_index_equal_is_one():
    assert jain_index([0.5, 0.5, 0.5]) == pytest.approx(1.0)


def test_jain_index_single_winner_is_one_over_n():
    assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


def test_jain_index_empty_and_all_zero_are_fair():
    assert jain_index([]) == 1.0
    assert jain_index([0.0, 0.0]) == 1.0


def test_jain_index_bounds():
    values = [0.9, 0.1, 0.4, 0.0, 0.7]
    index = jain_index(values)
    assert 1.0 / len(values) <= index <= 1.0


# -- policies -------------------------------------------------------------


def test_policy_factory():
    assert isinstance(make_quota_policy("none"), NoQuotaPolicy)
    assert isinstance(make_quota_policy("static"), StaticQuotaPolicy)
    assert isinstance(make_quota_policy("proportional"), ProportionalSharePolicy)
    with pytest.raises(ValueError):
        make_quota_policy("lottery")


def test_none_policy_never_limits_or_rejects():
    acct = TenantCacheAccounting(NoQuotaPolicy())
    assert acct.limit_for("a", GB) is None
    assert acct.admit("a", 10 * GB, GB)
    assert not acct.over_quota("a", GB)
    assert acct.rejected == {}


def test_static_policy_enforces_fixed_fraction():
    acct = TenantCacheAccounting(StaticQuotaPolicy(0.1))
    assert acct.limit_for("a", GB) == pytest.approx(GB * 0.1)
    # Under the limit: admitted.
    assert acct.admit("a", int(GB * 0.05), GB)
    acct.on_object_admitted("a", int(GB * 0.09))
    # Would push past the limit: rejected and counted.
    assert not acct.admit("a", int(GB * 0.02), GB)
    assert acct.rejected["a"] == 1
    with pytest.raises(ValueError):
        StaticQuotaPolicy(0.0)


def test_proportional_policy_tracks_demand_with_floor():
    acct = TenantCacheAccounting(ProportionalSharePolicy(floor=0.5))
    # No demand yet: everybody gets the equal split.
    assert acct.limit_for("a", GB) == pytest.approx(GB)
    acct.record_miss("hot", 900)
    acct.record_miss("cold", 100)
    equal_share = GB / 2
    assert acct.limit_for("hot", GB) == pytest.approx(GB * 0.9)
    # The cold tenant's 10% share is floored at half the equal split.
    assert acct.limit_for("cold", GB) == pytest.approx(0.5 * equal_share)


# -- accounting lifecycle -------------------------------------------------


class _Obj:
    def __init__(self, tenant, size):
        self.flags = {"tenant": tenant} if tenant else {}
        self.size = size


def test_usage_hooks_and_hit_ratios():
    acct = TenantCacheAccounting()
    acct.on_object_admitted("a", 100)
    acct.on_object_admitted("a", 50)
    acct.on_object_removed("a", 100)
    assert acct.usage_bytes["a"] == 50
    acct.on_object_removed("a", 60)  # over-removal clamps to empty
    assert "a" not in acct.usage_bytes
    acct.on_object_admitted("", 10)  # untagged objects are ignored
    assert acct.usage_bytes == {}

    acct.record_hit("a", 10)
    acct.record_hit("a", 10)
    acct.record_miss("a", 10)
    acct.record_miss("b", 10)
    assert acct.hit_ratio("a") == pytest.approx(2 / 3)
    assert acct.hit_ratio("b") == 0.0
    assert acct.hit_ratio("never-seen") is None
    assert set(acct.hit_ratios()) == {"a", "b"}
    assert 0.0 < acct.fairness_index() <= 1.0


def test_reset_counters_keeps_usage_and_demand():
    acct = TenantCacheAccounting()
    acct.on_object_admitted("a", 100)
    acct.record_miss("a", 100)
    acct.reset_counters()
    assert acct.hits == {} and acct.misses == {}
    assert acct.usage_bytes["a"] == 100
    assert acct.demand_bytes["a"] == 100


def test_resync_recomputes_usage_and_decays_demand():
    acct = TenantCacheAccounting()
    acct.on_object_admitted("stale", 500)
    acct.record_miss("a", 100)
    acct.resync([_Obj("a", 40), _Obj("a", 10), _Obj(None, 99)])
    assert acct.usage_bytes == {"a": 50.0}
    assert acct.demand_bytes["a"] == pytest.approx(50.0)
    # decay=False leaves the demand untouched (only one node per
    # period applies the EWMA step).
    acct.resync([_Obj("a", 40)], decay=False)
    assert acct.demand_bytes["a"] == pytest.approx(50.0)
    # Repeated decay eventually drops the tenant entirely (< 1 byte).
    for _ in range(10):
        acct.resync([], decay=True)
    assert acct.demand_bytes == {}
    assert acct.total_demand_bytes == 0.0


def test_snapshot_is_flat_and_complete():
    acct = TenantCacheAccounting(StaticQuotaPolicy(0.5))
    acct.record_hit("a", 10)
    acct.record_miss("a", 10)
    acct.on_object_admitted("a", 10)
    snap = acct.snapshot()
    assert snap["policy"] == "static"
    assert snap["tenants_seen"] == 1
    assert snap["total_hits"] == 1
    assert snap["total_misses"] == 1
    assert snap["admissions"] == 1
    assert snap["usage_bytes"] == 10
    assert 0.0 <= snap["fairness_index"] <= 1.0
