"""Tests for the ModelTrainer maturation and the Predictor."""

import numpy as np
import pytest

from repro.core import OFCConfig
from repro.core.trainer import ModelTrainer, TrainingSample
from repro.faas.records import InvocationRecord, InvocationRequest, Phases
from repro.ml.intervals import MemoryIntervals
from tests.core.conftest import deploy, invoke, seed_images


def make_record(fn="f", peak_mb=100.0, features=None, predicted=None,
                transform_s=0.1, bytes_in=64_000, bytes_out=64_000):
    record = InvocationRecord(
        request=InvocationRequest(function=fn, tenant="t"),
        status="ok",
        peak_memory_mb=peak_mb,
        features=features or {"x": peak_mb / 10.0},
        predicted_interval=predicted,
    )
    record.phases = Phases(transform=transform_s)
    record.bytes_in = bytes_in
    record.bytes_out = bytes_out
    return record


def feed(trainer, n, fn="f", peak_fn=None):
    for i in range(n):
        peak = peak_fn(i) if peak_fn else 100.0 + (i % 5) * 16.0
        trainer.on_completion(
            make_record(fn=fn, peak_mb=peak, features={"x": peak / 10.0})
        )


def test_model_matures_on_learnable_function():
    trainer = ModelTrainer(OFCConfig())
    feed(trainer, 100)
    models = trainer.models_for("t/f")
    assert models.mature
    assert models.matured_after == 100
    assert models.memory_model is not None


def test_no_maturity_before_min_history():
    trainer = ModelTrainer(OFCConfig())
    feed(trainer, 99)
    assert not trainer.models_for("t/f").mature


def test_unpredictable_function_does_not_mature():
    rng = np.random.default_rng(0)
    trainer = ModelTrainer(OFCConfig())
    # Memory unrelated to features: pure noise over a wide range.
    for _ in range(150):
        trainer.on_completion(
            make_record(
                peak_mb=float(rng.uniform(64, 1500)),
                features={"x": float(rng.random())},
            )
        )
    assert not trainer.models_for("t/f").mature


def test_selective_retention_after_maturity():
    config = OFCConfig()
    trainer = ModelTrainer(config)
    feed(trainer, 100)
    models = trainer.models_for("t/f")
    assert models.mature
    before = len(models.samples)
    # Exact predictions are NOT added to the training set any more.
    intervals = trainer.intervals
    record = make_record(peak_mb=100.0, features={"x": 10.0})
    record.predicted_interval = intervals.label(100.0)
    trainer.on_completion(record)
    assert len(models.samples) == before
    # Underpredictions ARE added, with a higher weight.
    record = make_record(peak_mb=200.0, features={"x": 20.0})
    record.predicted_interval = intervals.label(200.0) - 3
    trainer.on_completion(record)
    assert len(models.samples) == before + 1
    assert models.samples[-1].weight == config.underprediction_weight
    # Extreme overpredictions ARE added too.
    record = make_record(peak_mb=100.0, features={"x": 10.0})
    record.predicted_interval = intervals.label(100.0) + 7
    trainer.on_completion(record)
    assert len(models.samples) == before + 2


def test_good_bad_prediction_accounting():
    trainer = ModelTrainer(OFCConfig())
    feed(trainer, 100)
    intervals = trainer.intervals
    over = make_record(peak_mb=100.0)
    over.predicted_interval = intervals.label(100.0) + 1
    trainer.on_completion(over)
    under = make_record(peak_mb=100.0)
    under.predicted_interval = intervals.label(100.0) - 1
    trainer.on_completion(under)
    assert trainer.good_predictions == 1
    assert trainer.bad_predictions == 1


def test_cache_benefit_label_depends_on_el_dominance():
    trainer = ModelTrainer(OFCConfig())
    # Tiny transform, significant transfers: E+L dominates -> 1.
    heavy_el = make_record(transform_s=0.01, bytes_in=1_000_000, bytes_out=500_000)
    assert trainer._cache_benefit_label(heavy_el) == 1
    # Long transform dwarfs the transfers -> 0.
    heavy_t = make_record(transform_s=30.0, bytes_in=1_000, bytes_out=1_000)
    assert trainer._cache_benefit_label(heavy_t) == 0


def test_failed_records_are_ignored():
    trainer = ModelTrainer(OFCConfig())
    record = make_record()
    record.status = "failed"
    trainer.on_completion(record)
    assert trainer.models_for("t/f").invocations_seen == 0


def test_maturity_report():
    trainer = ModelTrainer(OFCConfig())
    feed(trainer, 100, fn="a")
    feed(trainer, 10, fn="b")
    report = trainer.maturity_report()
    assert report["t/a"] == 100
    assert report["t/b"] is None


# -- Predictor integration ----------------------------------------------------


def test_predictor_uses_booked_until_mature(ofc):
    deploy(ofc)
    refs = seed_images(ofc, n=2)
    record = invoke(ofc, ref=refs[0])
    assert record.memory_limit_mb == 512.0
    assert record.predicted_interval is None


def test_predictor_shrinks_sandbox_after_maturity(ofc):
    """End-to-end learning: after ~100 invocations the sandbox gets the
    predicted (much smaller) size instead of the booked 512 MB."""
    deploy(ofc)
    refs = seed_images(ofc, n=4, size=64 * 1024)
    rng = np.random.default_rng(5)
    last = None
    for i in range(110):
        ref = refs[int(rng.integers(0, len(refs)))]
        last = invoke(
            ofc, ref=ref, args={"threshold": float(rng.uniform(0.5, 1.0))}
        )
        assert last.status == "ok"
    models = ofc.trainer.models_for("t0/wand_sepia")
    assert models.mature
    assert last.predicted_interval is not None
    # wand_sepia on 64 kB inputs needs ~85 MB; the prediction (plus the
    # conservative bump) should sit far below the 512 MB booking.
    assert last.memory_limit_mb <= 160.0
    assert last.memory_limit_mb >= last.peak_memory_mb


def test_no_failed_invocations_during_learning(ofc):
    deploy(ofc)
    refs = seed_images(ofc, n=4)
    rng = np.random.default_rng(9)
    for i in range(120):
        record = invoke(
            ofc,
            ref=refs[int(rng.integers(0, len(refs)))],
            args={"threshold": float(rng.uniform(0.5, 1.0))},
        )
        assert record.status == "ok"
    snap = ofc.table2_snapshot()
    assert snap["failed_invocations"] == 0
