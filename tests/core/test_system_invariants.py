"""System-wide invariants under randomized mixed workloads.

Drives OFC with a random mix of invocations, pipeline runs, external
store accesses and cache-node crashes, then checks the global
invariants the design promises:

* RSDS versioning: ``rsds_version <= version`` for every object;
* memory: every cache server's footprint fits its capacity (within one
  log segment of slack) and node accounting never goes negative beyond
  the float tolerance;
* no invocation fails while booked memory is sufficient;
* every *final* output is eventually persisted (after draining).
"""

import numpy as np
import pytest

from repro.bench.envs import build_ofc_env
from repro.faas.records import InvocationRequest
from repro.kvcache.log import SEGMENT_SIZE
from repro.sim.latency import KB
from repro.workloads.functions import get_function_model
from repro.workloads.media import MediaCorpus


def run_random_workload(seed: int, steps: int = 40):
    ofc = build_ofc_env(nodes=3, node_mb=4096, seed=seed)
    model = get_function_model("wand_sepia")
    ofc.platform.register_function(model.spec(tenant="t0", booked_mb=512))
    from repro.workloads.pipelines import get_pipeline_app

    app = get_pipeline_app("image_processing")
    app.register(ofc.platform, tenant="t0")
    corpus = MediaCorpus(np.random.default_rng(seed))
    refs = []

    def upload():
        for i in range(4):
            media = corpus.image(64 * KB)
            yield from ofc.store.put(
                "inputs", f"in{i}", media, size=media.size,
                user_meta=media.features(),
            )
            refs.append(f"inputs/in{i}")

    ofc.kernel.run_until(ofc.kernel.process(upload()))
    rng = np.random.default_rng(seed + 1)
    p_refs = None
    for _step in range(steps):
        action = rng.choice(
            ["invoke", "invoke", "invoke", "pipeline", "external_read",
             "external_write", "crash", "idle"]
        )
        if action == "invoke":
            record = ofc.invoke(
                InvocationRequest(
                    function="wand_sepia",
                    tenant="t0",
                    args=model.sample_args(rng),
                    input_ref=refs[int(rng.integers(0, len(refs)))],
                )
            )
            assert record.status == "ok"
        elif action == "pipeline":
            if p_refs is None:
                p_refs = ofc.kernel.run_until(
                    ofc.kernel.process(
                        app.prepare_inputs(ofc.store, corpus, 128 * KB)
                    )
                )
            prec = ofc.invoke_pipeline(
                app.pipeline, tenant="t0", input_refs=p_refs
            )
            assert prec.status == "ok"
        elif action == "external_read":
            ref = refs[int(rng.integers(0, len(refs)))]
            bucket, name = ref.split("/", 1)

            def reader(bucket=bucket, name=name):
                obj = yield from ofc.store.get(bucket, name)
                return obj

            obj = ofc.kernel.run_until(ofc.kernel.process(reader()))
            assert obj.payload is not None  # inputs are always whole
        elif action == "external_write":
            ref = refs[int(rng.integers(0, len(refs)))]
            bucket, name = ref.split("/", 1)
            media = corpus.image(64 * KB)

            def writer(bucket=bucket, name=name, media=media):
                yield from ofc.store.put(
                    bucket, name, media, size=media.size,
                    user_meta=media.features(),
                )

            ofc.kernel.run_until(ofc.kernel.process(writer()))
        elif action == "crash":
            node = f"w{int(rng.integers(0, 3))}"
            ofc.cluster.crash(node)
            ofc.kernel.run_until(ofc.kernel.process(ofc.cluster.recover(node)))
            ofc.cluster.server(node).restart()
        else:
            ofc.kernel.run(until=ofc.kernel.now + float(rng.uniform(1, 60)))
    ofc.kernel.run(until=ofc.kernel.now + 30.0)  # drain persistors
    return ofc


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_invariants_hold_under_random_workload(seed):
    ofc = run_random_workload(seed)

    # 1. Versioning invariant on every RSDS object.
    for bucket_name, bucket in ofc.store._buckets.items():
        for name, obj in bucket.objects.items():
            assert obj.meta.rsds_version <= obj.meta.version, (
                bucket_name, name,
            )

    # 2. Cache servers never exceed capacity beyond log granularity.
    for server in ofc.cluster.coordinator.servers.values():
        assert server.used_bytes <= server.capacity + SEGMENT_SIZE

    # 3. Node memory accounting stays sane.
    for invoker in ofc.platform.invokers:
        assert invoker.available_mb >= -1.0
        assert invoker.committed_mb >= 0.0

    # 4. Nothing failed.
    assert all(r.status == "ok" for r in ofc.platform.records)

    # 5. Every final output reached the RSDS (no stale shadow remains
    # for objects absent from the cache).
    for record in ofc.platform.records:
        for ref in record.output_refs:
            bucket, name = ref.split("/", 1)
            if not ofc.store.contains(bucket, name):
                continue  # removed by a pipeline cleanup
            meta = ofc.store.peek_meta(bucket, name)
            if meta.is_shadow:
                # Payload must still live in the cache, dirty.
                cached = ofc.cluster.peek(ref)
                assert cached is not None, ref
