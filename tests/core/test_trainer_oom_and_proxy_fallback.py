"""Focused tests: OOM-driven fast retraining and rclib fallbacks."""

import numpy as np
import pytest

from repro.core import OFCConfig
from repro.core.trainer import ModelTrainer
from repro.kvcache.errors import CapacityExceeded
from tests.core.conftest import deploy, invoke, seed_images
from tests.core.test_trainer_predictor import feed, make_record


def test_oom_correction_triggers_immediate_retrain():
    trainer = ModelTrainer(OFCConfig())
    feed(trainer, 100)
    models = trainer.models_for("t/f")
    assert models.mature
    retrains_before = models.retrains
    # An OOM-killed-then-retried invocation whose prediction was too low.
    record = make_record(peak_mb=400.0, features={"x": 40.0})
    record.predicted_interval = trainer.intervals.label(400.0) - 4
    record.oom_kills = 1
    trainer.on_completion(record)
    assert models.retrains == retrains_before + 1  # §5.3.1: corrected quickly


def test_underprediction_without_oom_waits_for_periodic_retrain():
    trainer = ModelTrainer(OFCConfig(retrain_every=25))
    feed(trainer, 100)
    models = trainer.models_for("t/f")
    retrains_before = models.retrains
    record = make_record(peak_mb=400.0, features={"x": 40.0})
    record.predicted_interval = trainer.intervals.label(400.0) - 2
    record.oom_kills = 0
    trainer.on_completion(record)  # invocation 101: not a retrain point
    assert models.retrains == retrains_before


def test_write_back_fallback_when_cache_is_full(ofc):
    """A full cache turns write-back into a synchronous persist; the
    invocation still succeeds and the RSDS holds the payload."""
    deploy(ofc)
    refs = seed_images(ofc, n=1)
    # Choke every cache server so no put can be admitted.
    for node in ("w0", "w1", "w2", "w3"):
        agent = ofc.agents[node]
        ofc.kernel.run_until(ofc.kernel.process(agent._shrink_to(0)))
        agent.invoker.cache_reserved_mb = 0.0
        agent.invoker.listeners.remove(agent._on_sandbox_event)
        agent.invoker.ensure_capacity = None
    record = invoke(ofc, ref=refs[0])
    assert record.status == "ok"
    assert ofc.rclib_stats.write_back_fallbacks >= 1
    out_bucket, out_name = record.output_refs[0].split("/", 1)
    meta = ofc.store.peek_meta(out_bucket, out_name)
    assert not meta.is_shadow  # payload persisted synchronously


def test_cache_fill_failure_is_silent(ofc):
    """Read-miss population failing for lack of room never surfaces."""
    deploy(ofc)
    refs = seed_images(ofc, n=1)
    for node in ("w0", "w1", "w2", "w3"):
        agent = ofc.agents[node]
        ofc.kernel.run_until(ofc.kernel.process(agent._shrink_to(0)))
        agent.invoker.listeners.remove(agent._on_sandbox_event)
        agent.invoker.ensure_capacity = None
        agent.invoker.cache_reserved_mb = 0.0
    record = invoke(ofc, ref=refs[0])
    assert record.status == "ok"
    assert not ofc.cluster.contains(refs[0])  # fill failed quietly
