"""Tests for strict vs relaxed consistency (§6.2)."""

import pytest

from repro.core import OFCConfig, OFCPlatform
from repro.faas.platform import PlatformConfig
from repro.sim.latency import KB
from tests.core.conftest import deploy, invoke, seed_images


@pytest.fixture()
def relaxed():
    """An OFC deployment with the §6.2 relaxation enabled."""
    system = OFCPlatform(
        config=OFCConfig(strict_consistency=False),
        platform_config=PlatformConfig(node_memory_mb=4096),
        seed=5,
    )
    system.store.create_bucket("inputs")
    system.store.create_bucket("outputs")
    system.start()
    return system


def test_relaxed_mode_writes_no_shadow(relaxed):
    deploy(relaxed)
    refs = seed_images(relaxed, n=1)
    record = invoke(relaxed, ref=refs[0])
    assert record.status == "ok"
    assert relaxed.rclib_stats.shadow_writes == 0
    # The output only exists in the cache, not in the RSDS.
    out_bucket, out_name = record.output_refs[0].split("/", 1)
    assert relaxed.cluster.contains(record.output_refs[0])
    assert not relaxed.store.contains(out_bucket, out_name)


def test_relaxed_mode_load_phase_is_faster_than_strict(relaxed, ofc):
    for system in (relaxed, ofc):
        deploy(system)
    refs_relaxed = seed_images(relaxed, n=1)
    refs_strict = seed_images(ofc, n=1)
    relaxed_record = invoke(relaxed, ref=refs_relaxed[0])
    strict_record = invoke(ofc, ref=refs_strict[0])
    # Strict pays the ~11 ms synchronous shadow write; relaxed does not.
    assert relaxed_record.phases.load < strict_record.phases.load / 3


def test_relaxed_mode_no_webhooks_registered(relaxed):
    assert relaxed.store._read_hooks == []
    assert relaxed.store._write_hooks == []


def test_relaxed_mode_persists_lazily_on_eviction(relaxed):
    """Writes propagate to the RSDS only on cache eviction decisions."""
    deploy(relaxed)
    refs = seed_images(relaxed, n=1)
    record = invoke(relaxed, ref=refs[0])
    key = record.output_refs[0]
    out_bucket, out_name = key.split("/", 1)
    agent = relaxed.agents[relaxed.cluster.location_of(key)]
    # Force a pressure shrink to zero: the dirty output must be written
    # back before being discarded.
    relaxed.kernel.run_until(relaxed.kernel.process(agent._shrink_to(0)))
    relaxed.kernel.run(until=relaxed.kernel.now + 5.0)
    assert relaxed.store.contains(out_bucket, out_name)


def test_relaxed_overwrite_versions_monotonic(relaxed):
    deploy(relaxed)
    refs = seed_images(relaxed, n=1)
    invoke(relaxed, ref=refs[0])
    first = relaxed.platform.records[-1]
    key = first.output_refs[0]
    v1 = relaxed.cluster.peek(key).version if relaxed.cluster.contains(key) else 0
    assert v1 >= 1


def test_strict_mode_output_visible_to_external_reader_immediately(ofc):
    """Strict mode: an external GET after the invocation returns the
    payload (webhook blocks until the persistor lands)."""
    deploy(ofc)
    refs = seed_images(ofc, n=1)
    record = invoke(ofc, ref=refs[0])
    out_bucket, out_name = record.output_refs[0].split("/", 1)

    def external_get():
        obj = yield from ofc.store.get(out_bucket, out_name)
        return obj

    obj = ofc.kernel.run_until(ofc.kernel.process(external_get()))
    assert obj.payload is not None
    assert not obj.meta.is_shadow
