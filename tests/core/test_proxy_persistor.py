"""Tests for rclib (proxy), shadow objects and the persistor."""

import pytest

from repro.sim.latency import MB
from tests.core.conftest import deploy, invoke, seed_images


def test_first_read_misses_then_hits(ofc):
    deploy(ofc)
    refs = seed_images(ofc, n=1)
    first = invoke(ofc, ref=refs[0])
    second = invoke(ofc, ref=refs[0])
    assert first.status == second.status == "ok"
    assert ofc.rclib_stats.misses == 1
    assert ofc.rclib_stats.hits_local + ofc.rclib_stats.hits_remote >= 1
    # The cache hit makes Extract collapse.
    assert second.phases.extract < first.phases.extract / 10


def test_write_creates_shadow_then_persists(ofc):
    deploy(ofc)
    refs = seed_images(ofc, n=1)
    record = invoke(ofc, ref=refs[0])
    out_bucket, out_name = record.output_refs[0].split("/", 1)
    meta = ofc.store.peek_meta(out_bucket, out_name)
    # Immediately after the invocation the RSDS holds a shadow…
    assert ofc.rclib_stats.shadow_writes >= 1
    # …and after the persistor runs, the payload is in the RSDS.
    ofc.kernel.run(until=ofc.kernel.now + 5.0)
    meta = ofc.store.peek_meta(out_bucket, out_name)
    assert not meta.is_shadow
    assert ofc.persistor.stats.completed >= 1


def test_final_output_discarded_from_cache_after_writeback(ofc):
    deploy(ofc)
    refs = seed_images(ofc, n=1)
    record = invoke(ofc, ref=refs[0])
    key = record.output_refs[0]
    ofc.kernel.run(until=ofc.kernel.now + 5.0)
    assert not ofc.cluster.contains(key)  # §6.3: finals leave the cache


def test_load_phase_is_fast_with_cache(ofc):
    """L = shadow write (~11 ms) + cache put, far below a Swift PUT."""
    deploy(ofc)
    refs = seed_images(ofc, n=1)
    record = invoke(ofc, ref=refs[0])
    assert record.phases.load < 0.03
    assert record.phases.load > 0.008


def test_oversized_object_bypasses_cache(ofc):
    deploy(ofc, fn_name="wand_resize", booked=2048.0)
    refs = seed_images(ofc, n=1, size=9 * MB)
    record = invoke(
        ofc, fn_name="wand_resize", ref=refs[0], args={"scale": 1.5}
    )
    # Output is ~20 MB: above the 10 MB cacheable limit -> direct write.
    assert record.status == "ok"
    assert ofc.rclib_stats.writes_direct >= 1
    out_bucket, out_name = record.output_refs[0].split("/", 1)
    assert not ofc.cluster.contains(record.output_refs[0])
    assert not ofc.store.peek_meta(out_bucket, out_name).is_shadow


def test_should_cache_false_skips_cache(ofc):
    deploy(ofc)
    refs = seed_images(ofc, n=1)

    def no_cache_policy(request, spec, record):
        from repro.faas.platform import SizingDecision

        return SizingDecision(
            memory_mb=spec.booked_memory_mb, should_cache=False
        )
        yield  # pragma: no cover

    ofc.platform.sizing_policy = no_cache_policy
    record = invoke(ofc, ref=refs[0])
    assert record.status == "ok"
    assert ofc.rclib_stats.uncached_reads == 1
    assert ofc.rclib_stats.misses == 0
    assert not ofc.cluster.contains(refs[0])


def test_external_read_blocks_until_persisted(ofc):
    """The §6.2 webhook: a non-FaaS GET sees the latest payload."""
    deploy(ofc)
    refs = seed_images(ofc, n=1)
    record = invoke(ofc, ref=refs[0])
    out_bucket, out_name = record.output_refs[0].split("/", 1)

    def external_get():
        obj = yield from ofc.store.get(out_bucket, out_name)  # external!
        return obj

    obj = ofc.kernel.run_until(ofc.kernel.process(external_get()))
    assert obj.payload is not None
    assert not obj.meta.is_shadow


def test_external_write_invalidates_cache(ofc):
    deploy(ofc)
    refs = seed_images(ofc, n=1)
    invoke(ofc, ref=refs[0])  # input now cached
    assert ofc.cluster.contains(refs[0])
    bucket, name = refs[0].split("/", 1)

    def external_put():
        yield from ofc.store.put(bucket, name, "new-content", size=1000)

    ofc.kernel.run_until(ofc.kernel.process(external_put()))
    assert not ofc.cluster.contains(refs[0])


def test_persistor_version_ordering(ofc):
    """An old persistor never overwrites a newer shadow version."""
    ofc.store.ensure_bucket("b")

    def scenario():
        m1 = yield from ofc.store.put(
            "b", "o", None, size=100, shadow=True, internal=True
        )
        m2 = yield from ofc.store.put(
            "b", "o", None, size=100, shadow=True, internal=True
        )
        e1 = ofc.persistor.schedule("b", "o", "v1-data", m1.version, final=False)
        e2 = ofc.persistor.schedule("b", "o", "v2-data", m2.version, final=False)
        yield e1
        yield e2

    ofc.kernel.run_until(ofc.kernel.process(scenario()))
    obj_meta = ofc.store.peek_meta("b", "o")
    assert obj_meta.rsds_version == 2
    assert ofc.persistor.stats.superseded + ofc.persistor.stats.completed == 2


def test_rclib_delete_removes_everywhere(ofc):
    deploy(ofc)
    refs = seed_images(ofc, n=1)
    invoke(ofc, ref=refs[0])
    assert ofc.cluster.contains(refs[0])
    bucket, name = refs[0].split("/", 1)
    client = ofc._make_data_client(
        ofc.platform.invokers[0], ofc.platform.records[-1]
    )
    ofc.kernel.run_until(ofc.kernel.process(client.delete(bucket, name)))
    assert not ofc.cluster.contains(refs[0])
    assert not ofc.store.contains(bucket, name)


def test_ephemeral_bytes_counted_for_intermediates(ofc):
    from repro.workloads.pipelines import get_pipeline_app
    from repro.workloads.media import MediaCorpus
    import numpy as np

    app = get_pipeline_app("map_reduce")
    app.register(ofc.platform, tenant="t0")
    corpus = MediaCorpus(np.random.default_rng(2))
    refs = ofc.kernel.run_until(
        ofc.kernel.process(
            app.prepare_inputs(ofc.store, corpus, 4 * MB)
        )
    )
    prec = ofc.invoke_pipeline(app.pipeline, tenant="t0", input_refs=refs)
    assert prec.status == "ok"
    assert ofc.rclib_stats.ephemeral_bytes > 0


def test_pipeline_intermediates_removed_at_end(ofc):
    from repro.workloads.pipelines import get_pipeline_app
    from repro.workloads.media import MediaCorpus
    import numpy as np

    app = get_pipeline_app("map_reduce")
    app.register(ofc.platform, tenant="t0")
    corpus = MediaCorpus(np.random.default_rng(2))
    refs = ofc.kernel.run_until(
        ofc.kernel.process(app.prepare_inputs(ofc.store, corpus, 4 * MB))
    )
    prec = ofc.invoke_pipeline(app.pipeline, tenant="t0", input_refs=refs)
    ofc.kernel.run(until=ofc.kernel.now + 5.0)
    # No cached object of this pipeline marked intermediate remains.
    for server in ofc.cluster.coordinator.servers.values():
        for obj in server.master_objects():
            assert not (
                obj.flags.get("pipeline_id") == prec.pipeline_id
                and obj.flags.get("intermediate")
            )
    assert ofc.metrics.pipeline_cleanups >= 1
    assert ofc.metrics.intermediate_objects_removed > 0
