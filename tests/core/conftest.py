"""Shared fixtures for OFC core tests."""

import numpy as np
import pytest

from repro.core import OFCPlatform
from repro.faas.platform import PlatformConfig
from repro.faas.records import InvocationRequest
from repro.sim.latency import KB, MB
from repro.workloads.functions import get_function_model
from repro.workloads.media import MediaCorpus


@pytest.fixture()
def ofc():
    """A started OFC deployment with 4 workers of 4 GB each."""
    system = OFCPlatform(
        platform_config=PlatformConfig(node_memory_mb=4096), seed=3
    )
    system.store.create_bucket("inputs")
    system.store.create_bucket("outputs")
    system.start()
    return system


def seed_images(ofc, n=4, size=64 * KB, prefix="img"):
    """Write n image inputs with extracted features; returns refs."""
    corpus = MediaCorpus(np.random.default_rng(11))
    refs = []

    def writer():
        for i in range(n):
            img = corpus.image(size)
            name = f"{prefix}{i}"
            yield from ofc.store.put(
                "inputs", name, img, size=img.size, user_meta=img.features()
            )
            refs.append(f"inputs/{name}")

    ofc.kernel.run_until(ofc.kernel.process(writer()))
    return refs


def deploy(ofc, fn_name="wand_sepia", tenant="t0", booked=512.0):
    model = get_function_model(fn_name)
    ofc.platform.register_function(model.spec(tenant=tenant, booked_mb=booked))
    return model


def invoke(ofc, fn_name="wand_sepia", tenant="t0", ref=None, args=None):
    request = InvocationRequest(
        function=fn_name,
        tenant=tenant,
        args=args or {"threshold": 0.8},
        input_ref=ref,
    )
    return ofc.invoke(request)
