"""Tests for the CacheAgent: sizing, reclamation, eviction, slack."""

import numpy as np
import pytest

from repro.sim.latency import KB, MB
from tests.core.conftest import deploy, invoke, seed_images


def total_cache_mb(ofc):
    return ofc.cluster.total_capacity / MB


def test_initial_cache_takes_free_memory(ofc):
    # 4 nodes x (4096 - 100 slack) MB and no sandboxes yet.
    assert total_cache_mb(ofc) == pytest.approx(4 * (4096 - 100), rel=0.01)


def test_sandbox_creation_shrinks_cache(ofc):
    deploy(ofc, booked=512.0)
    refs = seed_images(ofc, n=1)
    record = invoke(ofc, ref=refs[0])
    agent = ofc.agents[record.node]
    ofc.kernel.run(until=ofc.kernel.now + 1.0)  # let retarget land
    expected = (4096 - 100 - 512) * MB
    assert agent.server.capacity == pytest.approx(expected, rel=0.02)
    assert ofc.metrics.scale_downs_plain >= 1


def test_sandbox_reap_grows_cache_back(ofc):
    deploy(ofc, booked=512.0)
    refs = seed_images(ofc, n=1)
    record = invoke(ofc, ref=refs[0])
    agent = ofc.agents[record.node]
    before = agent.server.capacity
    ofc.kernel.run(until=ofc.kernel.now + 700.0)  # past keep-alive
    assert agent.server.capacity > before
    assert ofc.metrics.scale_ups >= 2  # initial + regrow


def test_ensure_capacity_reclaims_cache_memory(ofc):
    """A sandbox bigger than the node's free memory forces the agent to
    hand cache memory back (the §6.4 fast-reclaim path)."""
    deploy(ofc, fn_name="wand_sepia", booked=2048.0)
    refs = seed_images(ofc, n=1)
    # Commit most node memory to big sandboxes on every node first.
    for node in ofc.platform.invokers:
        node.total_memory_mb = 2400.0  # shrink nodes: 2048 + slack ~ tight
    record = invoke(ofc, ref=refs[0])
    assert record.status == "ok"
    agent = ofc.agents[record.node]
    # Cache gave back memory: capacity is now tiny.
    assert agent.server.capacity <= 300 * MB


def test_periodic_eviction_removes_cold_objects(ofc):
    deploy(ofc)
    refs = seed_images(ofc, n=3)
    for ref in refs:
        invoke(ofc, ref=ref)
    assert any(ofc.cluster.contains(ref) for ref in refs)
    # Objects have n_access <= 1 (< 5): the 300 s sweep evicts them once
    # they are older than one period.
    ofc.kernel.run(until=ofc.kernel.now + 700.0)
    assert not any(ofc.cluster.contains(ref) for ref in refs)
    assert ofc.metrics.evictions_periodic >= 3


def test_hot_objects_survive_periodic_eviction(ofc):
    deploy(ofc)
    refs = seed_images(ofc, n=1)
    rng = np.random.default_rng(3)
    # Read the input many times across 10 simulated minutes.
    for i in range(12):
        invoke(ofc, ref=refs[0], args={"threshold": float(rng.uniform(0.5, 1))})
        ofc.kernel.run(until=ofc.kernel.now + 55.0)
    assert ofc.cluster.contains(refs[0])  # n_access >= 5 and recently used


def test_migration_on_shrink_keeps_object_available(ofc):
    """Shrinking a node with cached inputs migrates masters instead of
    dropping them (the optimized hand-off, §6.4)."""
    deploy(ofc, booked=2048.0)
    refs = seed_images(ofc, n=2, size=256 * KB)
    record = invoke(ofc, ref=refs[0])
    node = record.node
    assert ofc.cluster.location_of(refs[0]) == node
    agent = ofc.agents[node]
    # Force a shrink to almost nothing.
    ofc.kernel.run_until(ofc.kernel.process(agent._shrink_to(0)))
    # The input survived on another node.
    new_location = ofc.cluster.location_of(refs[0])
    assert new_location is not None and new_location != node
    assert ofc.cluster.stats.migrations >= 1


def test_slack_pool_adjusts_with_churn(ofc):
    deploy(ofc)
    refs = seed_images(ofc, n=4)
    rng = np.random.default_rng(1)
    agent = ofc.agents[ofc.platform.invokers[0].node_id]
    assert agent.invoker.slack_mb == 100.0
    # Generate sandbox churn for a few minutes.
    for _ in range(6):
        invoke(ofc, ref=refs[int(rng.integers(0, 4))])
        ofc.kernel.run(until=ofc.kernel.now + 65.0)
    # Slack never drops below the initial 100 MB floor.
    for invoker in ofc.platform.invokers:
        assert invoker.slack_mb >= 100.0


def test_cache_size_series_recorded(ofc):
    deploy(ofc)
    refs = seed_images(ofc, n=1)
    invoke(ofc, ref=refs[0])
    ofc.kernel.run(until=ofc.kernel.now + 10.0)
    series = ofc.metrics.cache_size_series
    assert len(series) >= 2
    times = [t for t, _ in series]
    assert times == sorted(times)


def test_dirty_objects_survive_eviction_until_persisted(ofc):
    """Periodic eviction never drops a dirty object: it schedules a
    write-back instead."""
    deploy(ofc)
    agent = ofc.agents[ofc.platform.invokers[0].node_id]

    def seed_dirty():
        yield from ofc.cluster.put(
            "outputs/dirty-obj",
            "payload",
            64 * KB,
            caller=agent.node_id,
            flags={"dirty": True, "final": True},
        )

    ofc.kernel.run_until(ofc.kernel.process(seed_dirty()))
    ofc.store.ensure_bucket("outputs")

    def shadow():
        yield from ofc.store.put(
            "outputs", "dirty-obj", None, size=64 * KB, shadow=True, internal=True
        )

    ofc.kernel.run_until(ofc.kernel.process(shadow()))
    # Age the object past one eviction period and sweep.
    ofc.kernel.run(until=ofc.kernel.now + 301.0)
    ofc.kernel.run_until(ofc.kernel.process(agent.run_periodic_eviction()))
    # Still cached (dirty) but a persist is now scheduled/in flight.
    assert ofc.persistor.stats.scheduled >= 1
    ofc.kernel.run(until=ofc.kernel.now + 5.0)
    meta = ofc.store.peek_meta("outputs", "dirty-obj")
    assert not meta.is_shadow  # payload reached the RSDS
