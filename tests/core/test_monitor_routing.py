"""Tests for the Monitor (§5.3.1) and OFC routing (§6.5)."""

import numpy as np
import pytest

from repro.core import OFCConfig, OFCPlatform
from repro.core.monitor import Monitor
from repro.core.routing import OFCScheduler
from repro.faas.platform import SizingDecision
from repro.faas.records import InvocationRequest
from repro.faas.registry import FunctionSpec
from repro.sim.latency import KB
from tests.core.conftest import deploy, invoke, seed_images


def make_long_function(platform, footprint_mb=600.0, duration=6.0, booked=1024.0):
    """A function whose Transform runs long enough for the Monitor."""

    def body(ctx):
        yield from ctx.compute(duration, footprint_mb)

    platform.register_function(
        FunctionSpec(
            name="long_fn", tenant="t0", body=body, booked_memory_mb=booked
        )
    )


def undersized_policy(memory_mb):
    def policy(request, spec, record):
        return SizingDecision(memory_mb=memory_mb, predicted_mb=memory_mb)
        yield  # pragma: no cover

    return policy


def test_monitor_rescues_long_underpredicted_invocation(ofc):
    # The usage ramp crosses the 320 MB limit at ~3.8 s — past the 3 s
    # monitoring threshold, so the Monitor raises the cap in place.
    make_long_function(ofc.platform, footprint_mb=500.0, duration=6.0)
    ofc.platform.sizing_policy = undersized_policy(320.0)
    record = invoke(ofc, fn_name="long_fn", args={})
    assert record.status == "ok"
    assert record.oom_kills == 0
    assert record.retries == 0
    assert record.memory_limit_mb > 500.0  # cap was raised mid-flight


def test_short_invocations_are_not_rescued(ofc):
    """Under 3 s of runtime the Monitor stays out: OOM kill + retry."""
    make_long_function(ofc.platform, footprint_mb=600.0, duration=0.5)
    ofc.platform.sizing_policy = undersized_policy(256.0)
    record = invoke(ofc, fn_name="long_fn", args={})
    assert record.status == "ok"  # retried at the booked size
    assert record.oom_kills == 1
    assert record.retries == 1


def test_monitor_respects_min_runtime_config(ofc):
    ofc.config.monitor_min_runtime_s = 0.0  # rescue immediately
    make_long_function(ofc.platform, footprint_mb=600.0, duration=0.5)
    ofc.platform.sizing_policy = undersized_policy(256.0)
    record = invoke(ofc, fn_name="long_fn", args={})
    assert record.oom_kills == 0


def test_monitor_cap_bounded_by_booked_plus_headroom(ofc):
    config = OFCConfig()
    make_long_function(
        ofc.platform, footprint_mb=900.0, duration=6.0, booked=1024.0
    )
    ofc.platform.sizing_policy = undersized_policy(128.0)
    record = invoke(ofc, fn_name="long_fn", args={})
    assert record.status == "ok"
    assert record.memory_limit_mb <= 1024.0 + config.monitor_headroom_mb


# -- routing -------------------------------------------------------------------


def test_routing_prefers_cached_input_node(ofc):
    deploy(ofc)
    refs = seed_images(ofc, n=1)
    first = invoke(ofc, ref=refs[0])
    location = ofc.cluster.location_of(refs[0])
    assert location == first.node  # populated on the executing node
    # Kill the warm sandbox so a new one must be created.
    invoker = ofc.platform.invoker_by_id(first.node)
    for sandbox in list(invoker.sandboxes):
        invoker.destroy_sandbox(sandbox)
    second = invoke(ofc, ref=refs[0])
    assert second.node == location  # locality-aware placement
    assert ofc.rclib_stats.hits_local >= 1


def test_routing_prefers_warm_sandbox_over_locality(ofc):
    deploy(ofc)
    refs = seed_images(ofc, n=1)
    first = invoke(ofc, ref=refs[0])
    # Migrate the cached input away from the sandbox's node.
    new_master = ofc.kernel.run_until(
        ofc.kernel.process(ofc.cluster.migrate_master(refs[0]))
    )
    assert new_master != first.node
    second = invoke(ofc, ref=refs[0])
    # Warm sandbox wins over data locality (avoid cold start).
    assert second.node == first.node
    assert not second.cold_start
    assert ofc.rclib_stats.hits_remote >= 1


def test_routing_ranks_sandboxes_by_memory_distance(ofc):
    deploy(ofc)
    refs = seed_images(ofc, n=1)

    # Create two warm sandboxes with different limits via sizing.
    ofc.platform.sizing_policy = None
    sizes = iter([512.0, 1024.0])

    def two_sizes(request, spec, record):
        return SizingDecision(memory_mb=next(sizes))
        yield  # pragma: no cover

    ofc.platform.sizing_policy = two_sizes
    import itertools

    # Run two concurrent invocations to force two sandboxes.
    p1 = ofc.platform.submit(
        InvocationRequest(
            function="wand_sepia",
            tenant="t0",
            args={"threshold": 0.8},
            input_ref=refs[0],
        )
    )
    p2 = ofc.platform.submit(
        InvocationRequest(
            function="wand_sepia",
            tenant="t0",
            args={"threshold": 0.8},
            input_ref=refs[0],
        )
    )
    ofc.kernel.run_until(ofc.kernel.all_of([p1, p2]))
    by_limit = {
        sandbox.memory_limit_mb: sandbox.sandbox_id
        for invoker in ofc.platform.invokers
        for sandbox in invoker.sandboxes
    }
    assert set(by_limit) == {512.0, 1024.0}

    def close_to_1024(request, spec, record):
        return SizingDecision(memory_mb=1024.0)
        yield  # pragma: no cover

    ofc.platform.sizing_policy = close_to_1024
    record = invoke(ofc, ref=refs[0])
    # The 1024 MB sandbox is the closest to the predicted size.
    assert record.sandbox_id == by_limit[1024.0]


def test_routing_excludes_nodes(ofc):
    scheduler = ofc.platform.scheduler
    request = InvocationRequest(function="wand_sepia", tenant="t0")
    all_nodes = {inv.node_id for inv in ofc.platform.invokers}
    chosen = scheduler.choose_node(
        request, 256.0, ofc.platform.invokers, exclude=all_nodes
    )
    assert chosen is None
