"""Incremental retraining: no-op refits are skipped, dataset builds
are memoized on the sample-set fingerprint, and cached sort orders
carry across refits without changing what gets trained.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import OFCConfig
from repro.core.trainer import FunctionModels, ModelTrainer, TrainingSample
from repro.ml.dataset import Dataset


def _sample(i: int, weight: float = 1.0) -> TrainingSample:
    return TrainingSample(
        features={"in_size": float(i * 1024), "arg": "x" if i % 2 else "y"},
        memory_label=i % 4,
        cache_label=i % 2,
        weight=weight,
    )


def _models_with(n: int) -> FunctionModels:
    models = FunctionModels("fn")
    for i in range(n):
        models.add_sample(_sample(i))
    return models


def test_version_bumps_on_every_append():
    models = _models_with(5)
    assert models.samples_version == 5
    assert models.fitted_version == -1


def test_retrain_skips_when_samples_unchanged():
    trainer = ModelTrainer(OFCConfig())
    models = _models_with(12)
    trainer.retrain(models)
    assert models.retrains == 1
    assert models.fitted_version == models.samples_version
    fitted = models.memory_model
    # Nothing appended since the fit: the refit is skipped and the
    # model object is untouched.
    trainer.retrain(models)
    trainer.retrain(models)
    assert models.retrains == 1
    assert models.retrains_skipped == 2
    assert models.memory_model is fitted
    # A new sample invalidates the fingerprint.
    models.add_sample(_sample(99))
    trainer.retrain(models)
    assert models.retrains == 2
    assert models.memory_model is not fitted


def test_force_retrain_overrides_skip():
    trainer = ModelTrainer(OFCConfig())
    models = _models_with(12)
    trainer.retrain(models)
    before = models.memory_model
    trainer.retrain(models, force=True)
    assert models.retrains == 2
    assert models.memory_model is not before
    assert models.retrains_skipped == 0


def test_datasets_memoized_on_fingerprint():
    models = _models_with(10)
    d1 = models.memory_dataset()
    assert models.memory_dataset() is d1
    b1 = models.benefit_dataset()
    assert models.benefit_dataset() is b1
    models.add_sample(_sample(10))
    d2 = models.memory_dataset()
    assert d2 is not d1
    assert len(d2) == 11


def test_adopted_sort_orders_match_fresh_sort():
    """The append-merge path must produce the exact stable order a
    from-scratch mergesort would."""
    rng = np.random.default_rng(0)
    models = FunctionModels("fn")
    for i in range(40):
        models.add_sample(
            TrainingSample(
                features={
                    "a": float(rng.integers(0, 10)),  # heavy ties
                    "b": float(rng.normal()),
                },
                memory_label=int(rng.integers(0, 3)),
                cache_label=0,
            )
        )
    first = models.memory_dataset()
    for i in range(7):
        models.add_sample(
            TrainingSample(
                features={
                    "a": float(rng.integers(0, 10)),
                    "b": float(rng.normal()),
                },
                memory_label=int(rng.integers(0, 3)),
                cache_label=0,
            )
        )
    merged = models.memory_dataset()
    assert merged is not first
    fresh = Dataset(
        [s.features for s in models.samples],
        [s.memory_label for s in models.samples],
        weights=[s.weight for s in models.samples],
    )
    for feature in ("a", "b"):
        np.testing.assert_array_equal(
            merged.sort_order(feature), fresh.sort_order(feature)
        )


def test_retrained_models_identical_with_and_without_memoization():
    """Sort-order adoption and dataset reuse must not change the fitted
    trees: predictions agree with a cold trainer fed the same stream."""
    config = OFCConfig()
    warm = ModelTrainer(config)
    models = _models_with(30)
    warm.retrain(models)
    for i in range(30, 37):
        models.add_sample(_sample(i))
    warm.retrain(models)  # adopts cached sort orders

    cold_models = _models_with(37)
    cold = ModelTrainer(config)
    cold.retrain(cold_models)

    rows = [s.features for s in models.samples]
    assert list(models.memory_model.predict(rows)) == list(
        cold_models.memory_model.predict(rows)
    )
    assert list(models.benefit_model.predict(rows)) == list(
        cold_models.benefit_model.predict(rows)
    )
    assert models.memory_model.n_nodes == cold_models.memory_model.n_nodes


def test_getstate_drops_dataset_caches():
    import pickle

    models = _models_with(8)
    models.memory_dataset()
    models.benefit_dataset()
    clone = pickle.loads(pickle.dumps(models))
    assert clone._memory_cache is None
    assert clone._benefit_cache is None
    assert clone.samples_version == models.samples_version
    # Cache rebuilds transparently after the round trip.
    assert len(clone.memory_dataset()) == 8
