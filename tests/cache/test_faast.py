"""Faa$T backend specifics: per-app sharding, autoscaling, teardown."""

import pytest

from repro.cache.faast import FaaSTBackend, SHARED_APP
from repro.core.config import OFCConfig
from repro.kvcache.errors import CapacityExceeded, NoSuchKey
from repro.sim import Kernel
from repro.sim.latency import MB

NODES = ["w0", "w1", "w2"]


def build(**overrides):
    config = OFCConfig(
        faast_shard_mb=1.0,
        faast_max_shards_per_app=4,
        faast_scale_period_s=10.0,
        faast_ops_per_shard=50,
        faast_idle_periods=2,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    kernel = Kernel()
    backend = FaaSTBackend(kernel, NODES, config=config, rng=None)
    backend.start()
    return kernel, backend


def drive(kernel, gen):
    return kernel.run_until(kernel.process(gen))


def test_apps_get_isolated_caches():
    kernel, backend = build()

    def scenario():
        yield from backend.put(
            "a/k1", "v", 1000, caller="w0", flags={"tenant": "t1"}
        )
        yield from backend.put(
            "b/k2", "v", 1000, caller="w0", flags={"tenant": "t2"}
        )
        yield from backend.put("c/k3", "v", 1000, caller="w0")

    drive(kernel, scenario())
    assert set(backend._apps) == {"t1", "t2", SHARED_APP}
    assert backend.stats_snapshot()["apps"] == 3


def test_hot_app_scales_out():
    kernel, backend = build()

    def traffic():
        yield from backend.put(
            "a/k", "v", 1000, caller="w0", flags={"tenant": "t1"}
        )
        for _ in range(120):  # >> ops_per_shard in one window
            yield from backend.get("a/k", caller="w1")

    drive(kernel, traffic())
    kernel.run(until=kernel.now + 15.0)  # one scaling period
    assert backend.stats.scale_outs > 0
    assert len(backend._apps["t1"].shards) > 1


def test_idle_app_torn_down_after_hysteresis():
    kernel, backend = build()

    def scenario():
        yield from backend.put(
            "a/k", "v", 1000, caller="w0", flags={"tenant": "t1"}
        )
        yield from backend.delete("a/k", caller="w0")

    drive(kernel, scenario())
    assert "t1" in backend._apps
    kernel.run(until=kernel.now + 35.0)  # >= idle_periods scaling periods
    assert "t1" not in backend._apps
    assert backend.stats.apps_torn_down == 1
    assert backend.total_capacity == 0  # cost meter back to zero memory


def test_working_set_survives_rescale():
    """The stable key->shard index must keep every key readable while
    the fleet grows."""
    kernel, backend = build()
    keys = [f"a/k{i}" for i in range(20)]

    def traffic():
        for key in keys:
            yield from backend.put(
                key, key, 40_000, caller="w0", flags={"tenant": "t1"}
            )
        for _ in range(6):
            for key in keys:
                yield from backend.get(key, caller="w0")

    drive(kernel, traffic())
    kernel.run(until=kernel.now + 25.0)

    def readback():
        values = []
        for key in keys:
            obj = yield from backend.get(key, caller="w1")
            values.append(obj.value)
        return values

    assert drive(kernel, readback()) == keys


def test_dirty_objects_never_evicted():
    kernel, backend = build(faast_max_shards_per_app=1)

    def scenario():
        # Fill the single 1 MB shard with dirty data, then try more.
        for i in range(4):
            yield from backend.put(
                f"a/d{i}", "v", 250_000, caller="w0",
                flags={"tenant": "t1", "dirty": True},
            )
        yield from backend.put(
            "a/overflow", "v", 250_000, caller="w0",
            flags={"tenant": "t1", "dirty": True},
        )

    with pytest.raises(CapacityExceeded):
        drive(kernel, scenario())
    for i in range(4):
        assert backend.contains(f"a/d{i}")
    assert backend.stats.evictions == 0


def test_clean_lru_evicted_under_pressure():
    kernel, backend = build(faast_max_shards_per_app=1)

    def scenario():
        for i in range(5):  # 5 x 250 kB into a 1 MB shard
            yield from backend.put(
                f"a/c{i}", "v", 250_000, caller="w0",
                flags={"tenant": "t1"},
            )

    drive(kernel, scenario())
    assert backend.stats.evictions >= 1
    assert backend.total_used <= backend.total_capacity
    assert not backend.contains("a/c0")  # the LRU victim
    assert backend.contains("a/c4")


def test_crash_drops_shards_and_recover_reprovisions():
    """Pre-fix mode (replication off): a crash loses the shard."""
    kernel, backend = build(
        faast_max_shards_per_app=1, faast_replication=False
    )

    def seed():
        yield from backend.put(
            "a/k", "v", 1000, caller="w0", flags={"tenant": "t1"}
        )

    drive(kernel, seed())
    victim = backend.location_of("a/k")
    backend.crash(victim)
    assert backend.peek("a/k") is None  # no replication: contents gone
    assert backend.stats.shards_lost == 1
    assert backend.stats.objects_lost == 1

    def recover():
        recovered = yield from backend.recover(victim)
        return recovered

    assert drive(kernel, recover()) == 0  # nothing readable again
    shard = backend._apps["t1"].shards[0]  # but the bare app got a shard
    assert shard.node_id != victim  # victim still down

    def miss():
        yield from backend.get("a/k", caller="w0")

    with pytest.raises(NoSuchKey):
        drive(kernel, miss())
    backend.restart(victim)
    assert backend.stats_snapshot()["live_servers"] == len(NODES)


def test_crash_promotes_backup_shard():
    """With replication on, the mirror takes over and no object is
    lost; repair re-creates the missing mirror."""
    kernel, backend = build(faast_max_shards_per_app=1)

    def seed():
        yield from backend.put(
            "a/k", "v", 1000, caller="w0",
            flags={"tenant": "t1", "dirty": True},
        )

    drive(kernel, seed())
    assert backend.stats.backup_writes == 1
    victim = backend.location_of("a/k")
    shard = backend._apps["t1"].shards[0]
    backup = shard.backup_node
    assert backup is not None and backup != victim

    backend.crash(victim)
    assert backend.stats.shards_lost == 0
    assert backend.stats.objects_lost == 0
    assert backend.stats.shards_promoted == 1
    assert backend.location_of("a/k") == backup
    assert backend.peek("a/k").value == "v"
    assert backend.stats_snapshot()["under_replicated"] == 1

    def recover_repair():
        recovered = yield from backend.recover(victim)
        repaired = yield from backend.repair()
        return recovered, repaired

    recovered, repaired = drive(kernel, recover_repair())
    assert recovered == 1  # the promoted object
    assert repaired == 1  # mirror re-created on a surviving node
    assert backend.stats_snapshot()["under_replicated"] == 0
    assert shard.backup_node not in (None, backup and victim)

    def read():
        obj = yield from backend.get("a/k", caller="w2")
        return obj

    assert drive(kernel, read()).value == "v"
    backend.restart(victim)
    assert backend.stats_snapshot()["live_servers"] == len(NODES)


def test_backup_node_death_leaves_primary_and_repair_rehomes():
    kernel, backend = build(faast_max_shards_per_app=1)

    def seed():
        yield from backend.put(
            "a/k", "v", 1000, caller="w0", flags={"tenant": "t1"}
        )

    drive(kernel, seed())
    shard = backend._apps["t1"].shards[0]
    primary, backup = shard.node_id, shard.backup_node
    backend.crash(backup)
    # Primary unaffected, but the shard is now under-replicated.
    assert backend.location_of("a/k") == primary
    assert shard.backup_node is None
    assert backend.stats_snapshot()["under_replicated"] == 1

    def repair():
        return (yield from backend.repair())

    assert drive(kernel, repair()) == 1
    assert shard.backup_node is not None
    assert shard.backup_node not in (primary, backup)
    assert backend.stats_snapshot()["under_replicated"] == 0


def test_oversized_for_shard_rejected():
    kernel, backend = build()

    def scenario():
        yield from backend.put("a/k", "v", int(1.5 * MB), caller="w0")

    from repro.kvcache.errors import ObjectTooLarge

    with pytest.raises(ObjectTooLarge):
        drive(kernel, scenario())
