"""InfiniCache backend specifics: erasure coding, reclamation, backups."""

import pytest

from repro.cache.infinicache import InfiniCacheBackend
from repro.core.config import OFCConfig
from repro.kvcache.errors import CapacityExceeded, NoSuchKey
from repro.sim import Kernel
from repro.sim.latency import MB

NODES = ["w0", "w1", "w2"]


def build(**overrides):
    config = OFCConfig(
        infinicache_data_chunks=2,
        infinicache_parity_chunks=1,
        infinicache_lambda_mb=1.0,
        infinicache_lambdas_per_node=2,
        infinicache_lifetime_s=100.0,
        infinicache_reclaim_period_s=10.0,
        infinicache_backup_period_s=5.0,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    kernel = Kernel()
    backend = InfiniCacheBackend(kernel, NODES, config=config, rng=None)
    backend.start()
    return kernel, backend


def drive(kernel, gen):
    return kernel.run_until(kernel.process(gen))


def test_chunks_spread_over_distinct_sandboxes_and_nodes():
    kernel, backend = build()

    def scenario():
        yield from backend.put("a/k", "v", 600_000, caller="w0")

    drive(kernel, scenario())
    placement = backend._placement["a/k"]
    assert len(placement) == 3  # k + r
    assert len(set(placement)) == 3
    # Three chunks over three nodes: distinct-nodes-first placement.
    assert len({s.node_id for s in placement}) == 3
    # 600 kB over k=2 data chunks -> 300 kB per chunk, on k+r sandboxes.
    assert backend.total_used == 3 * 300_000


def test_sandbox_pool_priced_as_dedicated_lambda_memory():
    kernel, backend = build()
    assert backend.total_capacity == len(NODES) * 2 * MB
    kernel.run(until=10.0)
    snap = backend.cost_snapshot()
    assert snap["dedicated_mb_s"] > 0.0
    assert snap["harvested_mb_s"] == 0.0
    # The initial pool spawn is 6 lambda invocations.
    assert snap["lambda_invocations"] >= 6


def test_reclamation_warms_up_from_backup():
    """A backed-up object must survive losing > r chunks: the reclaim
    loop restores it from the store copy (a warm-up, not a miss)."""
    kernel, backend = build()

    def seed():
        yield from backend.put("a/k", "v", 100_000, caller="w0")

    drive(kernel, seed())
    # Let the backup loop copy it, then forcibly expire every sandbox.
    kernel.run(until=kernel.now + 6.0)
    assert backend.stats.backups == 1
    for sandbox in backend._sandboxes:
        sandbox.lifetime_s = 0.0
    kernel.run(until=kernel.now + 12.0)  # one reclaim period
    assert backend.stats.reclamations >= 6
    assert backend.stats.warmups >= 1
    assert backend.stats.lost_objects == 0

    def read():
        obj = yield from backend.get("a/k", caller="w1")
        return obj

    obj = drive(kernel, read())
    assert obj.value == "v"
    assert obj.version == 1


def test_unbacked_object_lost_when_chunks_fall_below_k():
    kernel, backend = build(infinicache_backup_period_s=10_000.0)

    def seed():
        yield from backend.put("a/k", "v", 100_000, caller="w0")

    drive(kernel, seed())
    for sandbox in backend._sandboxes:
        sandbox.lifetime_s = 0.0
    kernel.run(until=kernel.now + 12.0)
    assert backend.stats.lost_objects == 1
    assert backend.peek("a/k") is None


def test_partial_loss_reencodes_without_backup():
    """Losing <= r chunks is repaired from surviving chunks alone."""
    kernel, backend = build(infinicache_backup_period_s=10_000.0)

    def seed():
        yield from backend.put("a/k", "v", 100_000, caller="w0")

    drive(kernel, seed())
    victim = backend._placement["a/k"][2]  # one of k+r=3 chunks
    victim.lifetime_s = 0.0
    kernel.run(until=kernel.now + 12.0)
    assert backend.stats.reencodes == 1
    assert backend.stats.lost_objects == 0
    assert len(backend._placement["a/k"]) == 3  # redundancy restored


def test_restore_never_resurrects_stale_dirty_flag():
    kernel, backend = build()

    def seed():
        yield from backend.put(
            "a/k", "v", 100_000, caller="w0", flags={"dirty": True}
        )

    drive(kernel, seed())
    kernel.run(until=kernel.now + 6.0)  # backup copies dirty=True
    backend.set_flags("a/k", dirty=False)  # persist completed
    for sandbox in backend._sandboxes:
        sandbox.lifetime_s = 0.0
    kernel.run(until=kernel.now + 12.0)  # full warm-up from backup
    assert backend.stats.warmups >= 1
    obj = backend.peek("a/k")
    assert obj is not None
    assert obj.flags["dirty"] is False


def test_crash_degrades_then_recover_restores():
    kernel, backend = build()

    def seed():
        yield from backend.put("a/k", "v", 100_000, caller="w0")

    drive(kernel, seed())
    kernel.run(until=kernel.now + 6.0)  # backed up
    # Crash two of three nodes: at most one chunk survives (< k).
    backend.crash("w0")
    backend.crash("w1")
    assert "a/k" in backend._degraded
    assert backend.peek("a/k") is None  # unreadable while degraded

    def recover():
        a = yield from backend.recover("w0")
        b = yield from backend.recover("w1")
        return a + b

    # Only w2's sandboxes are up: recovery can place at most 2 distinct
    # chunks (k), enough to read but not to reach full k+r redundancy.
    recovered = drive(kernel, recover())
    assert recovered >= 1
    assert backend.peek("a/k") is not None
    backend.restart("w0")
    backend.restart("w1")

    def repair():
        return (yield from backend.repair())

    assert drive(kernel, repair()) == 1
    assert backend.stats_snapshot()["under_replicated"] == 0


def test_capacity_pressure_evicts_clean_lru_only():
    kernel, backend = build(infinicache_backup_period_s=10_000.0)

    def scenario():
        # Each put takes k+r x 500 kB = 1.5 MB of the 6 MB pool.
        yield from backend.put(
            "a/dirty", "v", 1_000_000, caller="w0", flags={"dirty": True}
        )
        for i in range(4):
            yield from backend.put(f"a/c{i}", "v", 1_000_000, caller="w0")

    drive(kernel, scenario())
    assert backend.stats.evictions >= 1
    assert backend.contains("a/dirty")  # dirty data never evicted
    assert not backend.contains("a/c0")  # clean LRU victim


def test_all_dirty_pool_rejects_new_writes():
    kernel, backend = build(infinicache_backup_period_s=10_000.0)

    def scenario():
        for i in range(4):
            yield from backend.put(
                f"a/d{i}", "v", 1_000_000, caller="w0",
                flags={"dirty": True},
            )
        yield from backend.put(
            "a/more", "v", 1_000_000, caller="w0", flags={"dirty": True}
        )

    with pytest.raises(CapacityExceeded):
        drive(kernel, scenario())


def test_get_requires_k_live_chunks():
    kernel, backend = build(infinicache_backup_period_s=10_000.0)

    def seed():
        yield from backend.put("a/k", "v", 100_000, caller="w0")

    drive(kernel, seed())
    placement = list(backend._placement["a/k"])
    backend._kill(placement[0])
    backend._kill(placement[1])  # 1 live chunk < k=2

    def read():
        yield from backend.get("a/k", caller="w0")

    with pytest.raises(NoSuchKey):
        drive(kernel, read())
    assert backend.stats.misses == 1


def test_dirty_put_backed_up_promptly():
    """Chaos-harness fix: a dirty (write-back) put is backed up to the
    store area immediately, not on the next periodic backup tick —
    otherwise losing chunks below k inside the 5 s window loses an
    acked write."""
    kernel, backend = build()

    def seed():
        yield from backend.put(
            "a/d", "v", 100_000, caller="w0", flags={"dirty": True}
        )

    drive(kernel, seed())
    # No backup period has elapsed; the prompt backup already exists.
    assert backend.stats.backups == 1
    assert "a/d" in backend._backup

    # Expire every sandbox before the first periodic backup would have
    # run: the reclaim warm-up restores from the prompt backup.
    for sandbox in backend._sandboxes:
        sandbox.lifetime_s = 0.0
    kernel.run(until=kernel.now + 12.0)
    assert backend.stats.lost_objects == 0
    assert backend.stats.warmups >= 1

    def read():
        obj = yield from backend.get("a/d", caller="w1")
        return obj

    obj = drive(kernel, read())
    assert obj.value == "v"
    assert obj.flags["dirty"] is True


def test_dirty_without_backup_retained_not_dropped():
    """Chaos-harness fix: when chunks fall below k and no usable backup
    exists, a dirty entry is retained (unreadable but tracked) instead
    of forgotten — the store has never seen the payload."""
    kernel, backend = build()

    def seed():
        yield from backend.put("a/k", "v", 100_000, caller="w0")

    drive(kernel, seed())
    backend.set_flags("a/k", dirty=True)  # dirtied before any backup tick
    assert "a/k" not in backend._backup
    # Two of three nodes down: one live chunk < k=2, no backup.
    backend.crash("w0")
    backend.crash("w1")

    def recover():
        a = yield from backend.recover("w0")
        b = yield from backend.recover("w1")
        return a + b

    drive(kernel, recover())
    assert backend.stats.dirty_retained >= 1
    assert backend.stats.lost_objects == 0
    assert "a/k" in backend._entries  # retained, not forgotten
    assert "a/k" in backend._degraded

    # Once the nodes return, the backup loop copies the retained entry
    # out and the next reclaim tick warms it back up: readable again.
    backend.restart("w0")
    backend.restart("w1")
    kernel.run(until=kernel.now + 20.0)

    def read():
        obj = yield from backend.get("a/k", caller="w2")
        return obj

    obj = drive(kernel, read())
    assert obj.value == "v"
    assert backend.stats.lost_objects == 0
