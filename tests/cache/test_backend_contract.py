"""Shared contract suite for every registered cache backend.

OFC's data plane, control plane and fault machinery only assume the
:class:`repro.cache.backend.CacheBackend` surface, so every backend —
the harvested OFC default, the Faa$T-style cachelets and the
InfiniCache-style erasure-coded lambdas — must satisfy the same
observable contract.  Parametrizing the whole module over the registry
means a new backend gets its conformance suite for free.
"""

import pytest

from repro.cache import BACKENDS, make_backend
from repro.core import OFCPlatform
from repro.core.config import OFCConfig
from repro.faas.platform import PlatformConfig
from repro.faults import FaultEvent, FaultInjector, FaultSchedule
from repro.kvcache.errors import NoSuchKey, ObjectTooLarge
from repro.sim import Kernel
from repro.sim.latency import MB

NODES = ["w0", "w1", "w2"]
MAX_OBJECT = 4 * MB

pytestmark = pytest.mark.parametrize(
    "backend_name", sorted(BACKENDS), ids=sorted(BACKENDS)
)


def _config() -> OFCConfig:
    # Small erasure-coding geometry so three nodes give full stripes,
    # and short periods so loops tick inside short test runs.
    return OFCConfig(
        infinicache_data_chunks=2,
        infinicache_parity_chunks=1,
        infinicache_lambdas_per_node=2,
        infinicache_backup_period_s=5.0,
        infinicache_reclaim_period_s=10.0,
        faast_scale_period_s=5.0,
    )


def build(backend_name):
    kernel = Kernel()
    backend = make_backend(
        backend_name,
        kernel,
        NODES,
        config=_config(),
        rng=None,
        max_object_size=MAX_OBJECT,
    )
    if backend_name == "ofc":
        # The harvested pool normally grows via CacheAgents; the raw
        # contract rig provisions it through the same resize path so
        # the cost meter's resize hook observes the capacity.
        def grow():
            for node in NODES:
                yield from backend.cluster.scale_up(node, 64 * MB)

        kernel.run_until(kernel.process(grow()))
    backend.start()
    return kernel, backend


def drive(kernel, gen):
    """Run one process to completion (periodic backend loops stay up)."""
    return kernel.run_until(kernel.process(gen))


# -- registry ---------------------------------------------------------------


def test_registry_constructs_named_backend(backend_name):
    kernel, backend = build(backend_name)
    assert backend.name == backend_name


def test_unknown_backend_rejected(backend_name):
    with pytest.raises(ValueError, match="unknown cache backend"):
        make_backend("no-such-arch", Kernel(), NODES)


# -- data plane -------------------------------------------------------------


def test_read_your_writes(backend_name):
    kernel, backend = build(backend_name)

    def scenario():
        yield from backend.put("a/k", "v1", 1000, caller="w0")
        obj = yield from backend.get("a/k", caller="w0")
        return obj

    obj = drive(kernel, scenario())
    assert obj.value == "v1"
    assert obj.size == 1000
    assert obj.version == 1


def test_overwrite_bumps_version(backend_name):
    kernel, backend = build(backend_name)

    def scenario():
        yield from backend.put("a/k", "v1", 1000, caller="w0")
        yield from backend.put("a/k", "v2", 2000, caller="w1")
        obj = yield from backend.get("a/k", caller="w0")
        return obj

    obj = drive(kernel, scenario())
    assert obj.value == "v2"
    assert obj.version == 2


def test_get_missing_raises(backend_name):
    kernel, backend = build(backend_name)

    def scenario():
        yield from backend.get("a/none", caller="w0")

    with pytest.raises(NoSuchKey):
        drive(kernel, scenario())


def test_oversize_rejected_without_state_change(backend_name):
    kernel, backend = build(backend_name)

    def scenario():
        yield from backend.put("a/huge", "v", MAX_OBJECT + 1, caller="w0")

    with pytest.raises(ObjectTooLarge):
        drive(kernel, scenario())
    assert not backend.contains("a/huge")
    assert backend.total_used == 0


def test_delete_then_miss(backend_name):
    kernel, backend = build(backend_name)

    def scenario():
        yield from backend.put("a/k", "v", 1000, caller="w0")
        yield from backend.delete("a/k", caller="w0")

    drive(kernel, scenario())
    assert backend.peek("a/k") is None
    assert not backend.contains("a/k")
    assert backend.location_of("a/k") is None


def test_peek_and_location_without_latency(backend_name):
    kernel, backend = build(backend_name)

    def scenario():
        yield from backend.put("a/k", "v", 1000, caller="w1")

    drive(kernel, scenario())
    t0 = kernel.now
    obj = backend.peek("a/k")
    location = backend.location_of("a/k")
    assert kernel.now == t0  # control plane: no simulated time
    assert obj is not None and obj.value == "v"
    assert location in NODES
    assert backend.contains("a/k")


def test_set_flags_visible_to_peek(backend_name):
    kernel, backend = build(backend_name)

    def scenario():
        yield from backend.put(
            "a/k", "v", 1000, caller="w0", flags={"dirty": True}
        )

    drive(kernel, scenario())
    backend.set_flags("a/k", dirty=False, final=True)
    obj = backend.peek("a/k")
    assert obj.flags["dirty"] is False
    assert obj.flags["final"] is True


def test_set_flags_missing_raises(backend_name):
    kernel, backend = build(backend_name)
    with pytest.raises(NoSuchKey):
        backend.set_flags("a/none", dirty=False)


def test_objects_enumerates_primaries(backend_name):
    kernel, backend = build(backend_name)

    def scenario():
        for i in range(4):
            yield from backend.put(f"a/k{i}", i, 1000 + i, caller="w0")

    drive(kernel, scenario())
    seen = {obj.key: node for node, obj in backend.objects()}
    assert set(seen) == {f"a/k{i}" for i in range(4)}
    for key, node in seen.items():
        assert backend.location_of(key) is not None
        assert node in NODES


# -- per-tenant accounting hooks --------------------------------------------


def test_admission_and_removal_hooks_fire(backend_name):
    kernel, backend = build(backend_name)
    admitted, removed = [], []
    backend.on_object_admitted = lambda obj: admitted.append(obj.key)
    backend.on_object_removed = lambda obj: removed.append(obj.key)

    def scenario():
        yield from backend.put(
            "a/k", "v", 1000, caller="w0", flags={"tenant": "t1"}
        )
        yield from backend.delete("a/k", caller="w0")

    drive(kernel, scenario())
    assert admitted == ["a/k"]
    assert removed == ["a/k"]


def test_overwrite_reports_removal_of_old_copy(backend_name):
    kernel, backend = build(backend_name)
    events = []
    backend.on_object_admitted = lambda obj: events.append(("+", obj.version))
    backend.on_object_removed = lambda obj: events.append(("-", obj.version))

    def scenario():
        yield from backend.put("a/k", "v1", 1000, caller="w0")
        yield from backend.put("a/k", "v2", 1000, caller="w0")

    drive(kernel, scenario())
    # Net accounting must balance: one live object after two puts.
    assert events.count(("+", 1)) == 1
    assert events.count(("+", 2)) == 1
    assert ("-", 1) in events


# -- capacity ---------------------------------------------------------------


def test_capacity_and_usage_track_contents(backend_name):
    kernel, backend = build(backend_name)
    assert backend.total_used == 0

    def scenario():
        yield from backend.put("a/k", "v", 100_000, caller="w0")

    drive(kernel, scenario())
    # Capacity may be provisioned lazily (Faa$T adds shards on first
    # admission) but must exist once an object is resident.
    assert backend.total_capacity > 0
    assert backend.quota_capacity <= backend.total_capacity
    # Usage reflects the object (erasure-coded layouts may round up to
    # chunk granularity, never down).
    assert backend.total_used >= 100_000
    assert backend.total_used <= backend.total_capacity


# -- crash/restart consistency ----------------------------------------------


def test_crash_recover_never_resurrects_stale_flags(backend_name):
    """After losing the hosting node, a backend may forget the object
    (it survives in the RSDS) — but a copy it *does* serve must carry
    the latest flags and version, or the write-back fires twice."""
    kernel, backend = build(backend_name)

    def seed():
        yield from backend.put(
            "a/k", "v", 1000, caller="w0", flags={"dirty": True}
        )

    drive(kernel, seed())
    # Give periodic loops (InfiniCache's backup pass) a chance to copy
    # the dirty version, then clear the flag — as the persistor does.
    kernel.run(until=kernel.now + 12.0)
    backend.set_flags("a/k", dirty=False)
    victim = backend.location_of("a/k")
    backend.crash(victim)

    def recover():
        recovered = yield from backend.recover(victim)
        repaired = yield from backend.repair()
        return recovered, repaired

    drive(kernel, recover())
    obj = backend.peek("a/k")
    if obj is not None:
        assert obj.version == 1
        assert obj.flags["dirty"] is False
    backend.restart(victim)
    snap = backend.stats_snapshot()
    assert snap["live_servers"] == len(NODES)


def test_crashed_node_not_reported_as_location(backend_name):
    kernel, backend = build(backend_name)

    def seed():
        for i in range(6):
            yield from backend.put(f"a/k{i}", i, 1000, caller="w0")

    drive(kernel, seed())
    backend.crash("w0")
    for i in range(6):
        location = backend.location_of(f"a/k{i}")
        assert location != "w0"


def test_fault_injector_end_to_end(backend_name):
    """The injector drives crash → detect → recover/repair → restart
    through the backend seam on a full deployment."""
    config = _config()
    config.cache_backend = backend_name
    system = OFCPlatform(
        config=config,
        platform_config=PlatformConfig(
            node_ids=list(NODES), node_memory_mb=4096
        ),
        seed=7,
    )
    system.store.create_bucket("inputs")
    system.store.create_bucket("outputs")
    system.start()
    backend = system.backend
    if backend_name == "ofc":
        for node in NODES:
            backend.cluster.server(node).resize(64 * MB)

    def seed():
        for i in range(4):
            yield from backend.put(
                f"inputs/k{i}", i, 50_000, caller="w0",
                flags={"tenant": "t0"},
            )

    system.kernel.run_until(system.kernel.process(seed()))
    injector = FaultInjector(
        system,
        FaultSchedule(
            [
                FaultEvent(at=5.0, kind="crash", node="w1"),
                FaultEvent(at=20.0, kind="restart", node="w1"),
            ]
        ),
    )
    assert injector.backend is backend
    assert backend.faults is injector.state
    injector.start()
    system.kernel.run(until=40.0)
    assert injector.stats.crashes == 1
    assert injector.stats.restarts == 1
    snap = backend.stats_snapshot()
    assert snap["live_servers"] == len(NODES)
    # Whatever survived must still be readable end-to-end.
    survivors = [key for key, _ in ((o.key, n) for n, o in backend.objects())]
    for key in survivors:
        def check(key=key):
            obj = yield from backend.get(key, caller="w2")
            return obj

        obj = system.kernel.run_until(system.kernel.process(check()))
        assert obj.value is not None


EPISODES = {
    "rsds_outage": FaultEvent(at=6.0, kind="rsds_outage", duration=10.0),
    "rsds_brownout": FaultEvent(
        at=6.0, kind="rsds_brownout", duration=10.0, scale=4.0
    ),
    "slow_network": FaultEvent(
        at=6.0, kind="slow_network", duration=10.0, scale=3.0
    ),
}


@pytest.mark.parametrize("episode", sorted(EPISODES), ids=sorted(EPISODES))
def test_episode_survival_keeps_acked_writes(backend_name, episode):
    """Every backend survives an RSDS outage / brownout / slow-network
    episode end-to-end: writes acked through the data-client seam while
    the episode is active must all read back with payload identity."""
    from repro.storage.errors import StoreUnavailable

    config = _config()
    config.cache_backend = backend_name
    system = OFCPlatform(
        config=config,
        platform_config=PlatformConfig(
            node_ids=list(NODES), node_memory_mb=4096
        ),
        seed=11,
    )
    system.store.create_bucket("inputs")
    system.store.create_bucket("outputs")
    system.start()
    if backend_name == "ofc":
        for node in NODES:
            system.backend.cluster.server(node).resize(64 * MB)

    injector = FaultInjector(system, FaultSchedule([EPISODES[episode]]))
    injector.start()
    record_stub = type("R", (), {"should_cache": True})()
    writer_client = system._make_data_client(
        system.platform.invokers[0], record_stub
    )
    acked = {}

    def writer():
        for i in range(12):
            payload = f"payload-{i}".encode()
            try:
                yield from writer_client.write(
                    "outputs", f"o{i}", payload, 50_000
                )
                acked[f"o{i}"] = payload
            except StoreUnavailable:
                pass  # unacked: the platform may legitimately drop it
            yield 2.0

    system.kernel.run_until(system.kernel.process(writer()))
    # The cache absorbs all three episode kinds: outage writes skip the
    # RSDS shadow and buffer write-back, brownouts/slow networks only
    # degrade latency.  Every write acks.
    assert len(acked) == 12
    # Settle well past the episode end and the persistor retry budget.
    system.kernel.run(until=system.kernel.now + 30.0)

    reader_client = system._make_data_client(
        system.platform.invokers[1], record_stub
    )
    for name in sorted(acked):
        def check(name=name):
            obj = yield from reader_client.read("outputs", name)
            return obj

        obj = system.kernel.run_until(system.kernel.process(check()))
        assert obj.payload is acked[name], f"acked write {name} lost"


# -- observability ----------------------------------------------------------


def test_stats_snapshot_shape(backend_name):
    kernel, backend = build(backend_name)
    snap = backend.stats_snapshot()
    assert isinstance(snap, dict)
    assert snap["live_servers"] == len(NODES)
    assert "under_replicated" in snap
    for value in snap.values():
        assert isinstance(value, (int, float))


def test_cost_snapshot_shape(backend_name):
    kernel, backend = build(backend_name)

    def scenario():
        yield from backend.put("a/k", "v", 1000, caller="w0")

    drive(kernel, scenario())
    kernel.run(until=kernel.now + 30.0)
    snap = backend.cost_snapshot()
    assert snap["backend"] == backend_name
    assert snap["cost_units"] >= 0.0
    for field in (
        "dedicated_mb_s",
        "harvested_mb_s",
        "lambda_invocations",
        "backup_ops",
    ):
        assert field in snap
    # Provisioned memory accrues cost over time for every architecture.
    assert snap["dedicated_mb_s"] + snap["harvested_mb_s"] > 0.0
