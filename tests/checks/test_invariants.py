"""Pure history invariants: synthetic OpRecord timelines, no deployment.

Payload identity is the fingerprint — each test builds distinct payload
objects and asserts the checker compares them with ``is``, never by
version counters.
"""

from repro.checks import OpRecord
from repro.checks.invariants import check_ops, count_by_invariant


def W(seq, t0, t1, payload, key="b/k", store_version=None, pipeline=None):
    return OpRecord(
        seq=seq, op="write", key=key, t_start=t0, t_ack=t1,
        payload=payload, size=100, store_version=store_version,
        pipeline_id=pipeline,
    )


def R(seq, t0, t1, payload=None, key="b/k", status="ok", size=100,
      pipeline=None, missing=False):
    return OpRecord(
        seq=seq, op="read", key=key, t_start=t0, t_ack=t1, status=status,
        payload=payload, size=size, payload_missing=missing,
        pipeline_id=pipeline,
    )


def D(seq, t0, t1, key="b/k"):
    return OpRecord(seq=seq, op="delete", key=key, t_start=t0, t_ack=t1)


def names(violations):
    return [v.invariant for v in violations]


def test_clean_history_has_no_violations():
    p = object()
    ops = [W(1, 0.0, 1.0, p), R(2, 2.0, 3.0, payload=p)]
    assert check_ops(ops) == []


def test_stale_read_detected_by_payload_identity():
    p1, p2 = object(), object()
    ops = [
        W(1, 0.0, 1.0, p1),
        W(2, 2.0, 3.0, p2),
        R(3, 4.0, 5.0, payload=p1),  # superseded payload served
    ]
    violations = check_ops(ops)
    assert names(violations) == ["stale-read"]
    assert violations[0].key == "b/k"
    assert violations[0].seq == 3


def test_concurrent_write_payload_is_admissible():
    p1, p2 = object(), object()
    ops = [
        W(1, 0.0, 1.0, p1),
        W(2, 4.0, 6.0, p2),
        R(3, 4.5, 5.0, payload=p2),  # racing write's payload is legal
    ]
    assert check_ops(ops) == []


def test_read_racing_delete_is_not_stale():
    p1 = object()
    ops = [
        W(1, 0.0, 1.0, p1),
        D(2, 4.0, 6.0),
        R(3, 4.5, 5.0, payload=object()),  # content undefined mid-delete
    ]
    assert check_ops(ops) == []


def test_shadow_read_flagged():
    ops = [R(1, 0.0, 1.0, payload=None, missing=True, size=4096)]
    assert names(check_ops(ops)) == ["shadow-read"]


def test_lost_write_on_miss_after_ack():
    p1 = object()
    ops = [
        W(1, 0.0, 1.0, p1),
        R(2, 2.0, 3.0, status="miss"),
    ]
    assert names(check_ops(ops)) == ["lost-write"]


def test_pipeline_ryw_when_same_pipeline():
    p1 = object()
    ops = [
        W(1, 0.0, 1.0, p1, pipeline="pl-7"),
        R(2, 2.0, 3.0, status="miss", pipeline="pl-7"),
    ]
    assert names(check_ops(ops)) == ["pipeline-ryw"]


def test_miss_after_acked_delete_is_legitimate():
    p1 = object()
    ops = [
        W(1, 0.0, 1.0, p1),
        D(2, 2.0, 3.0),
        R(3, 4.0, 5.0, status="miss"),
    ]
    assert check_ops(ops) == []


def test_version_order_regression_detected():
    p1, p2 = object(), object()
    ops = [
        W(1, 0.0, 1.0, p1, store_version=5),
        W(2, 2.0, 3.0, p2, store_version=4),  # counter went backwards
    ]
    assert names(check_ops(ops)) == ["version-order"]


def test_overlapping_writes_may_ack_out_of_order():
    p1, p2 = object(), object()
    ops = [
        W(1, 0.0, 5.0, p1, store_version=5),
        W(2, 1.0, 6.0, p2, store_version=4),  # overlapped: not a bug
    ]
    assert check_ops(ops) == []


def test_unavailable_reads_are_not_misses():
    p1 = object()
    ops = [
        W(1, 0.0, 1.0, p1),
        R(2, 2.0, 3.0, status="unavailable"),  # outage, not lost data
    ]
    assert check_ops(ops) == []


def test_count_by_invariant_sorted():
    p1 = object()
    ops = [
        W(1, 0.0, 1.0, p1),
        R(2, 2.0, 3.0, status="miss"),
        R(3, 4.0, 5.0, status="miss"),
        R(4, 6.0, 7.0, payload=None, missing=True, size=10),
    ]
    counts = count_by_invariant(check_ops(ops))
    assert counts == {"lost-write": 2, "shadow-read": 1}
    assert list(counts) == sorted(counts)
