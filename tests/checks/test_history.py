"""HistoryRecorder at the dataclient seam of a real deployment."""

import pytest

from repro.checks import HistoryRecorder
from repro.core import OFCPlatform
from repro.faas.platform import PlatformConfig
from repro.storage.errors import NoSuchObject


def make_ofc(seed=3):
    system = OFCPlatform(
        platform_config=PlatformConfig(node_memory_mb=4096), seed=seed
    )
    system.store.create_bucket("inputs")
    system.store.create_bucket("outputs")
    system.start()
    return system


def make_client(ofc, node_index=0):
    """A client through the *platform factory* — the seam the recorder
    wraps — exactly as ``platform.invoke`` builds them."""
    record_stub = type(
        "R", (), {"should_cache": True, "request": None}
    )()
    return ofc.platform.data_client_factory(
        ofc.platform.invokers[node_index], record_stub
    )


def drive(ofc, gen):
    return ofc.kernel.run_until(ofc.kernel.process(gen))


def test_recorder_captures_ops_with_payload_identity():
    ofc = make_ofc()
    recorder = HistoryRecorder(ofc)
    client = make_client(ofc)
    payload = b"the-bytes"

    def scenario():
        yield from client.write("outputs", "o", payload, 50_000)
        obj = yield from client.read("outputs", "o")
        return obj

    obj = drive(ofc, scenario())
    assert [op.op for op in recorder.ops] == ["write", "read"]
    write, read = recorder.ops
    assert write.key == "outputs/o"
    assert write.acked and write.t_ack >= write.t_start
    assert write.payload is payload
    assert write.store_version is not None  # strict mode: shadow landed
    assert read.payload is obj.payload
    assert read.status == "ok" and not read.payload_missing


def test_recorder_classifies_miss():
    ofc = make_ofc()
    recorder = HistoryRecorder(ofc)
    client = make_client(ofc)

    def scenario():
        yield from client.read("inputs", "missing")

    with pytest.raises(NoSuchObject):
        drive(ofc, scenario())
    (op,) = recorder.ops
    assert op.status == "miss"
    assert op.error == "NoSuchObject"
    assert op.t_ack is not None


def test_snapshot_and_checks_collector():
    ofc = make_ofc()
    assert ofc.obs.snapshot()["collected"]["checks"]["attached"] == 0
    recorder = HistoryRecorder(ofc)
    client = make_client(ofc)

    def scenario():
        yield from client.write("outputs", "o", b"p", 1000)
        yield from client.read("outputs", "o")
        yield from client.delete("outputs", "o")

    drive(ofc, scenario())
    collected = ofc.obs.snapshot()["collected"]["checks"]
    assert collected["attached"] == 1
    assert collected["ops"] == 3
    assert collected["reads"] == 1
    assert collected["writes"] == 1
    assert collected["deletes"] == 1
    assert collected["violations_total"] == 0


def test_detach_restores_factory():
    ofc = make_ofc()
    original = ofc.platform.data_client_factory
    recorder = HistoryRecorder(ofc)
    assert ofc.platform.data_client_factory is not original
    recorder.detach()
    assert ofc.platform.data_client_factory is original
    assert ofc.checks_recorder is None
    assert ofc.obs.snapshot()["collected"]["checks"]["attached"] == 0


def test_recorder_is_schedule_neutral():
    """A recorded run must be bit-identical to an unrecorded one (the
    recorder never yields and draws no randomness)."""

    def run_once(attach):
        ofc = make_ofc(seed=11)
        if attach:
            HistoryRecorder(ofc)
        client = make_client(ofc)

        def scenario():
            for i in range(5):
                yield from client.write("outputs", f"o{i}", b"p", 20_000)
                yield from client.read("outputs", f"o{i}")
            return ofc.kernel.now

        end = drive(ofc, scenario())
        return end, ofc.rclib_stats.hit_ratio

    assert run_once(False) == run_once(True)
