"""HistoryRecorder at the dataclient seam of a real deployment."""

import pytest

from repro.checks import HistoryRecorder
from repro.core import OFCPlatform
from repro.faas.platform import PlatformConfig
from repro.storage.errors import NoSuchObject


def make_ofc(seed=3):
    system = OFCPlatform(
        platform_config=PlatformConfig(node_memory_mb=4096), seed=seed
    )
    system.store.create_bucket("inputs")
    system.store.create_bucket("outputs")
    system.start()
    return system


def make_client(ofc, node_index=0):
    """A client through the *platform factory* — the seam the recorder
    wraps — exactly as ``platform.invoke`` builds them."""
    record_stub = type(
        "R", (), {"should_cache": True, "request": None}
    )()
    return ofc.platform.data_client_factory(
        ofc.platform.invokers[node_index], record_stub
    )


def drive(ofc, gen):
    return ofc.kernel.run_until(ofc.kernel.process(gen))


def test_recorder_captures_ops_with_payload_identity():
    ofc = make_ofc()
    recorder = HistoryRecorder(ofc)
    client = make_client(ofc)
    payload = b"the-bytes"

    def scenario():
        yield from client.write("outputs", "o", payload, 50_000)
        obj = yield from client.read("outputs", "o")
        return obj

    obj = drive(ofc, scenario())
    assert [op.op for op in recorder.ops] == ["write", "read"]
    write, read = recorder.ops
    assert write.key == "outputs/o"
    assert write.acked and write.t_ack >= write.t_start
    assert write.payload is payload
    assert write.store_version is not None  # strict mode: shadow landed
    assert read.payload is obj.payload
    assert read.status == "ok" and not read.payload_missing


def test_recorder_classifies_miss():
    ofc = make_ofc()
    recorder = HistoryRecorder(ofc)
    client = make_client(ofc)

    def scenario():
        yield from client.read("inputs", "missing")

    with pytest.raises(NoSuchObject):
        drive(ofc, scenario())
    (op,) = recorder.ops
    assert op.status == "miss"
    assert op.error == "NoSuchObject"
    assert op.t_ack is not None


def test_snapshot_and_checks_collector():
    ofc = make_ofc()
    assert ofc.obs.snapshot()["collected"]["checks"]["attached"] == 0
    recorder = HistoryRecorder(ofc)
    client = make_client(ofc)

    def scenario():
        yield from client.write("outputs", "o", b"p", 1000)
        yield from client.read("outputs", "o")
        yield from client.delete("outputs", "o")

    drive(ofc, scenario())
    collected = ofc.obs.snapshot()["collected"]["checks"]
    assert collected["attached"] == 1
    assert collected["ops"] == 3
    assert collected["reads"] == 1
    assert collected["writes"] == 1
    assert collected["deletes"] == 1
    assert collected["violations_total"] == 0


def test_detach_restores_factory():
    ofc = make_ofc()
    original = ofc.platform.data_client_factory
    recorder = HistoryRecorder(ofc)
    assert ofc.platform.data_client_factory is not original
    recorder.detach()
    assert ofc.platform.data_client_factory is original
    assert ofc.checks_recorder is None
    assert ofc.obs.snapshot()["collected"]["checks"]["attached"] == 0


def test_ring_mode_keeps_newest_and_reports_drops():
    """``ring_capacity`` bounds the kept history to the newest N records
    while the streamed counters keep the true totals."""
    ofc = make_ofc()
    recorder = HistoryRecorder(ofc, ring_capacity=4)
    client = make_client(ofc)

    def scenario():
        for i in range(6):
            yield from client.write("outputs", f"o{i}", b"p", 1000)

    drive(ofc, scenario())
    assert len(recorder.ops) == 4
    assert [op.key for op in recorder.ops] == [
        "outputs/o2", "outputs/o3", "outputs/o4", "outputs/o5"
    ]
    assert recorder.dropped == 2
    snap = recorder.snapshot()
    assert snap["ops"] == 6  # sequence keeps counting past the ring
    assert snap["writes"] == 6
    assert snap["dropped"] == 2


def test_unbounded_mode_has_no_dropped_key():
    """The default recorder keeps everything; ``dropped`` stays out of
    the snapshot so the checks collector's shape is unchanged."""
    ofc = make_ofc()
    recorder = HistoryRecorder(ofc)
    client = make_client(ofc)

    def scenario():
        yield from client.write("outputs", "o", b"p", 1000)

    drive(ofc, scenario())
    assert recorder.dropped == 0
    snap = recorder.snapshot()
    assert "dropped" not in snap
    assert snap["ops"] == len(recorder.ops) == 1


def test_streamed_counters_match_history():
    """Snapshot counters are streamed (O(1)), so they must agree with a
    scan of the kept records — including failed ops."""
    ofc = make_ofc()
    recorder = HistoryRecorder(ofc)
    client = make_client(ofc)

    def scenario():
        yield from client.write("outputs", "a", b"p", 1000)
        yield from client.read("outputs", "a")
        yield from client.delete("outputs", "a")

    drive(ofc, scenario())

    def failing():
        yield from client.read("inputs", "nope")

    with pytest.raises(NoSuchObject):
        drive(ofc, failing())
    snap = recorder.snapshot()
    ops = recorder.ops
    assert snap["reads"] == sum(1 for op in ops if op.op == "read") == 2
    assert snap["writes"] == sum(1 for op in ops if op.op == "write") == 1
    assert snap["deletes"] == sum(1 for op in ops if op.op == "delete") == 1
    assert snap["ops"] == len(ops) == 4


def test_recorder_is_schedule_neutral():
    """A recorded run must be bit-identical to an unrecorded one (the
    recorder never yields and draws no randomness)."""

    def run_once(attach):
        ofc = make_ofc(seed=11)
        if attach:
            HistoryRecorder(ofc)
        client = make_client(ofc)

        def scenario():
            for i in range(5):
                yield from client.write("outputs", f"o{i}", b"p", 20_000)
                yield from client.read("outputs", f"o{i}")
            return ofc.kernel.now

        end = drive(ofc, scenario())
        return end, ofc.rclib_stats.hit_ratio

    assert run_once(False) == run_once(True)
