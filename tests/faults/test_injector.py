"""FaultInjector behaviour: episodes, node events, zero-cost hooks."""

import pytest

from repro.core import OFCPlatform
from repro.faas.platform import PlatformConfig
from repro.faults import FaultEvent, FaultInjector, FaultSchedule
from repro.sim import Kernel
from repro.sim.faults import FaultState
from repro.sim.latency import MB
from repro.storage.errors import StoreUnavailable
from repro.storage.object_store import ObjectStore


@pytest.fixture()
def ofc():
    system = OFCPlatform(
        platform_config=PlatformConfig(node_memory_mb=4096), seed=3
    )
    system.store.create_bucket("inputs")
    system.store.create_bucket("outputs")
    system.start()
    return system


def schedule(*events):
    return FaultSchedule(list(events))


def drive(kernel, gen):
    """Run one process to completion without draining the queue (the
    started platform keeps periodic loops alive forever)."""
    return kernel.run_until(kernel.process(gen))


def test_unknown_node_rejected_at_construction(ofc):
    from repro.faults import ScheduleError

    with pytest.raises(ScheduleError, match="unknown node"):
        FaultInjector(
            ofc,
            schedule(
                FaultEvent(at=1.0, kind="crash", node="w99"),
                FaultEvent(at=5.0, kind="restart", node="w99"),
            ),
        )


def test_injector_wires_fault_state(ofc):
    injector = FaultInjector(ofc, schedule())
    assert ofc.store.faults is injector.state
    assert ofc.cluster.faults is injector.state
    assert not injector.state.any_active


def test_faults_collector_registered(ofc):
    FaultInjector(ofc, schedule())
    collected = ofc.obs.snapshot()["collected"]
    assert "faults" in collected
    assert collected["faults"]["crashes"] == 0
    assert collected["faults"]["rsds_down"] == 0


def test_second_injector_rebinds_faults_collector(ofc):
    """Last writer wins: the ``faults`` collector must report the
    *newest* injector's stats.  The old registration path swallowed the
    duplicate-name ValueError, leaving the first injector's snapshot
    bound forever and silently discarding every later injector's
    counters."""
    first = FaultInjector(ofc, schedule())
    second = FaultInjector(ofc, schedule())
    assert ofc.store.faults is second.state
    first.stats.crashes = 7
    second.stats.crashes = 2
    collected = ofc.obs.snapshot()["collected"]
    assert collected["faults"]["crashes"] == 2


def test_outage_episode_raises_store_unavailable(ofc):
    injector = FaultInjector(
        ofc, schedule(FaultEvent(at=10.0, kind="rsds_outage", duration=5.0))
    )
    injector.start()
    ofc.kernel.run(until=12.0)
    assert injector.state.rsds_down

    def attempt():
        yield from ofc.store.get("inputs", "nothing", internal=True)

    with pytest.raises(StoreUnavailable):
        drive(ofc.kernel, attempt())
    assert ofc.store.stats.unavailable_errors >= 1
    # Run past the episode end: knob flips back off.
    ofc.kernel.run(until=16.0)
    assert not injector.state.rsds_down
    assert injector.stats.outages == 1


def test_brownout_scales_store_latency():
    def timed_get(faults):
        kernel = Kernel()
        store = ObjectStore(kernel, rng=None)
        store.faults = faults
        store.create_bucket("b")

        def scenario():
            yield from store.put("b", "x", b"v", 100_000, internal=True)
            t0 = kernel.now
            yield from store.get("b", "x", internal=True)
            return kernel.now - t0

        return kernel.run_process(scenario())

    healthy = timed_get(None)
    slow_state = FaultState()
    slow_state.enter_brownout(4.0)
    slowed = timed_get(slow_state)
    assert slowed == pytest.approx(4.0 * healthy, rel=1e-9)


def test_slow_network_scales_remote_cache_ops(ofc):
    cluster = ofc.cluster
    cluster.rng = None

    def timed_remote_get():
        def scenario():
            t0 = ofc.kernel.now
            yield from cluster.get("inputs/k", caller="w1")
            return ofc.kernel.now - t0

        return drive(ofc.kernel, scenario())

    def put():
        yield from cluster.put("inputs/k", "v", 200_000, caller="w0")

    drive(ofc.kernel, put())
    healthy = timed_remote_get()
    state = FaultState()
    state.enter_slow_network(3.0)
    cluster.faults = state
    slowed = timed_remote_get()
    assert slowed == pytest.approx(3.0 * healthy, rel=1e-9)


def test_bypass_cache_skips_cluster(ofc):
    state = FaultState()
    state.enter_bypass()
    ofc.cluster.faults = state
    record_stub = type("R", (), {"should_cache": True})()
    client = ofc._make_data_client(ofc.platform.invokers[0], record_stub)

    def scenario():
        yield from client.write("outputs", "o", b"payload", 50_000)
        obj = yield from client.read("outputs", "o")
        return obj

    obj = drive(ofc.kernel, scenario())
    assert obj.payload == b"payload"
    assert ofc.rclib_stats.bypass_writes == 1
    assert ofc.rclib_stats.bypass_reads == 1
    # Nothing touched the cache.
    assert ofc.cluster.stats.puts == 0
    assert not ofc.cluster.contains("outputs/o")


def test_crash_event_recovers_masters(ofc):
    def seed():
        for i in range(3):
            yield from ofc.cluster.put(
                f"inputs/k{i}", b"v", 100_000, caller="w1"
            )

    drive(ofc.kernel, seed())
    assert ofc.cluster.location_of("inputs/k0") == "w1"

    injector = FaultInjector(
        ofc, schedule(FaultEvent(at=ofc.kernel.now + 5.0, kind="crash", node="w1"))
    )
    injector.start()
    ofc.kernel.run(until=ofc.kernel.now + 20.0)
    assert not ofc.cluster.server("w1").up
    assert injector.stats.crashes == 1
    assert injector.stats.recovered_objects == 3
    for i in range(3):
        key = f"inputs/k{i}"
        location = ofc.cluster.location_of(key)
        assert location is not None and location != "w1"


def test_restart_event_runs_repair(ofc):
    # Shrink the cluster's spare disk by crashing TWO nodes, so keys
    # replicated while they are down come up under-replicated (only one
    # backup candidate remains besides the master).
    def seed():
        yield from ofc.cluster.put("inputs/k", b"v", 100_000, caller="w0")

    injector = FaultInjector(
        ofc,
        schedule(
            FaultEvent(at=1.0, kind="crash", node="w2"),
            FaultEvent(at=1.0, kind="crash", node="w3"),
            FaultEvent(at=10.0, kind="restart", node="w2"),
            FaultEvent(at=10.0, kind="restart", node="w3"),
        ),
    )
    injector.start()
    ofc.kernel.run(until=5.0)
    drive(ofc.kernel, seed())
    # Replication factor is 2 but only one live backup candidate (w1).
    assert "inputs/k" in ofc.cluster.under_replicated_keys
    ofc.kernel.run(until=30.0)
    assert injector.stats.restarts == 2
    assert "inputs/k" not in ofc.cluster.under_replicated_keys
    assert len(ofc.cluster.coordinator.backups_of("inputs/k")) == 2


def test_inactive_fault_state_is_schedule_neutral():
    """Wiring a FaultState with no active episodes must not perturb the
    simulated schedule (zero-cost-when-disabled contract)."""

    def run_once(attach_state):
        kernel = Kernel()
        from repro.kvcache.cluster import CacheCluster
        from repro.sim.rng import RngRegistry

        rng = RngRegistry(17)
        cluster = CacheCluster(kernel, ["w0", "w1", "w2"], rng=rng.stream("c"))
        for node in ("w0", "w1", "w2"):
            cluster.server(node).resize(64 * MB)
        store = ObjectStore(kernel, rng=rng.stream("s"))
        store.create_bucket("b")
        if attach_state:
            state = FaultState()
            cluster.faults = state
            store.faults = state

        def scenario():
            for i in range(20):
                yield from cluster.put(f"b/k{i}", b"v", 10_000, caller="w0")
                yield from cluster.get(f"b/k{i}", caller="w1")
                yield from store.put("b", f"k{i}", b"v", 10_000, internal=True)
                yield from store.get("b", f"k{i}", internal=True)
            return kernel.now

        return kernel.run_process(scenario())

    assert run_once(False) == run_once(True)
