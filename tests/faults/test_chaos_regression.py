"""Minimized chaos reproducers as regression tests.

``examples/faults/chaos_faast-high-none_durability_seed0.json`` is the
ddmin-shrunk schedule the fuzzer found against the pre-fix Faa$T
backend (no shard replication) with the pre-fix persistor (no requeue
after the retry budget): a 25 s RSDS outage makes the persistor give
up, leaving acked writes only as dirty cache copies, and the following
node crash destroys some of those only copies — acked writes gone.

The same minimized schedule against today's defaults (shard mirroring
with backup promotion + persistor requeue) must produce zero
violations.  These runs replay the exact fuzzing cell, so they are the
slowest tests in the suite — but they are the acceptance evidence for
the chaos-harness fixes.
"""

import json
from pathlib import Path

import pytest

from repro.bench.chaos import ChaosCell, run_chaos_cell

REPRODUCER = (
    Path(__file__).resolve().parents[2]
    / "examples"
    / "faults"
    / "chaos_faast-high-none_durability_seed0.json"
)


def load_cell(config_overrides):
    doc = json.loads(REPRODUCER.read_text())
    meta = doc["chaos"]
    return ChaosCell(
        backend=meta["backend"],
        intensity=meta["intensity"],
        quota_policy=meta["quota_policy"],
        n_tenants=meta["n_tenants"],
        mean_interval_s=meta["mean_interval_s"],
        duration_s=meta["duration_s"],
        seed=meta["seed"],
        warmup_s=meta["warmup_s"],
        schedule={"events": doc["events"]},
        config_overrides=config_overrides,
    )


def test_reproducer_is_runnable_schedule():
    from repro.faults import FaultSchedule

    # The exported file is a plain runnable schedule: the extra "chaos"
    # metadata block must not break `repro run --faults <file>`.
    schedule = FaultSchedule.load(str(REPRODUCER))
    assert len(schedule) == 3
    kinds = sorted(e.kind for e in schedule)
    assert kinds == ["crash", "restart", "rsds_outage"]


@pytest.mark.slow
def test_minimized_schedule_loses_acked_writes_pre_fix():
    doc = json.loads(REPRODUCER.read_text())
    result = run_chaos_cell(load_cell(doc["chaos"]["config_overrides"]))
    # The pre-fix backend demonstrably loses acked writes: durability
    # violations (data in neither RSDS nor cache) plus stuck dirty
    # finals from the given-up persists.
    assert result.violations.get("durability", 0) > 0
    assert result.violations.get("dirty-final", 0) > 0


@pytest.mark.slow
def test_fixed_defaults_survive_minimized_schedule():
    result = run_chaos_cell(load_cell(None))
    assert result.violations_total == 0
