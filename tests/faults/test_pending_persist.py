"""Crash-during-pending-persist coverage (tentpole acceptance paths).

The dangerous window is between ``PersistorService.schedule`` and the
flush actually landing in the RSDS: the master holding the dirty copy
can die, the RSDS can be down, or an external reader can arrive and
boost the pending persist.  In every case the write-back must neither
be lost nor duplicated.
"""

from repro.core import OFCPlatform
from repro.core.config import OFCConfig
from repro.faas.platform import PlatformConfig
from repro.sim.faults import FaultState


def make_ofc(**config_kwargs):
    system = OFCPlatform(
        config=OFCConfig(**config_kwargs) if config_kwargs else None,
        platform_config=PlatformConfig(node_memory_mb=4096),
        seed=3,
    )
    system.store.create_bucket("inputs")
    system.store.create_bucket("outputs")
    system.start()
    return system


def make_client(ofc, node_index=0):
    record_stub = type("R", (), {"should_cache": True})()
    return ofc._make_data_client(ofc.platform.invokers[node_index], record_stub)


def drive(ofc, gen):
    """Run one process to completion without draining the queue (the
    started platform keeps periodic loops alive forever)."""
    return ofc.kernel.run_until(ofc.kernel.process(gen))


def write_only(ofc, client, payload=b"payload", size=50_000):
    """Run the rclib write and stop — the persistor stays pending."""

    def writer():
        yield from client.write("outputs", "o", payload, size)

    drive(ofc, writer())


def test_master_crash_between_schedule_and_flush():
    ofc = make_ofc()
    client = make_client(ofc)
    write_only(ofc, client)
    key = "outputs/o"
    pending = ofc.persistor.pending_for(key)
    assert pending is not None
    location = ofc.cluster.location_of(key)
    ofc.cluster.crash(location)
    # The flush still runs (the payload travels with the persistor) and
    # its dirty-clear lands on the surviving replicas.
    ofc.kernel.run_until(pending)
    meta = ofc.store.peek_meta("outputs", "o")
    assert meta.rsds_version == meta.version  # payload persisted
    assert ofc.persistor.stats.completed == 1
    recovered = drive(ofc, ofc.cluster.recover(location))
    assert recovered == 1
    promoted = ofc.cluster.peek(key)
    # The promotion must not resurrect dirty=True for the persisted
    # version — that would re-run the write-back.
    assert promoted is None or promoted.flags.get("dirty") is False


def test_external_read_boosts_pending_persist_of_crashed_master():
    ofc = make_ofc()
    client = make_client(ofc)
    payload = b"fresh-bytes"
    write_only(ofc, client, payload=payload)
    key = "outputs/o"
    ofc.cluster.crash(ofc.cluster.location_of(key))

    def external_reader():
        obj = yield from ofc.store.get("outputs", "o")  # external: hooks on
        return obj

    obj = drive(ofc, external_reader())
    # The read waited for the pending persist and saw the new payload.
    assert obj.payload == payload
    assert ofc.persistor.stats.boosts == 1


def test_persistor_retries_through_rsds_outage():
    ofc = make_ofc()
    client = make_client(ofc)
    state = FaultState()
    ofc.store.faults = state
    ofc.cluster.faults = state
    write_only(ofc, client)
    pending = ofc.persistor.pending_for("outputs/o")
    state.enter_outage()

    def heal():
        yield 1.0
        state.exit_outage()

    ofc.kernel.process(heal(), name="heal")
    ofc.kernel.run_until(pending)
    assert ofc.persistor.stats.retries >= 1
    assert ofc.persistor.stats.gave_up == 0
    assert ofc.persistor.stats.completed == 1
    meta = ofc.store.peek_meta("outputs", "o")
    assert meta.rsds_version == meta.version


def test_persistor_gives_up_but_keeps_copy_dirty():
    ofc = make_ofc()
    client = make_client(ofc)
    state = FaultState()
    ofc.store.faults = state
    ofc.cluster.faults = state
    write_only(ofc, client)
    pending = ofc.persistor.pending_for("outputs/o")
    state.enter_outage()  # never healed
    ofc.kernel.run_until(pending)
    assert ofc.persistor.stats.gave_up == 1
    assert ofc.persistor.stats.completed == 0
    # The dirty copy survives in the cache: eviction/shrink re-schedules
    # the persist after the outage, so the update is not lost.
    cached = ofc.cluster.peek("outputs/o")
    assert cached is not None
    assert cached.flags["dirty"] is True


def test_recovered_dirty_object_written_back_by_agent():
    """End-to-end: relaxed-mode write → master crash → recovery promotes
    the dirty copy → the cache agent's eviction sweep writes it back."""
    ofc = make_ofc(strict_consistency=False)
    client = make_client(ofc)
    payload = b"dirty-bytes"
    write_only(ofc, client, payload=payload)
    key = "outputs/o"
    assert ofc.cluster.peek(key).flags["dirty"] is True
    assert not ofc.store.contains("outputs", "o")  # relaxed: no shadow

    location = ofc.cluster.location_of(key)
    ofc.cluster.crash(location)
    recovered = drive(ofc, ofc.cluster.recover(location))
    assert recovered == 1
    new_location = ofc.cluster.location_of(key)
    assert new_location is not None and new_location != location
    assert ofc.cluster.peek(key).flags["dirty"] is True

    # Make the object cold, then run the new master's eviction sweep
    # (the background loops may have written it back already; the
    # explicit sweep makes the test independent of their phase).
    ofc.kernel.run(until=ofc.kernel.now + 3 * ofc.config.eviction_period_s)
    agent = ofc.agents[new_location]
    drive(ofc, agent.run_periodic_eviction())
    pending = ofc.persistor.pending_for(key)
    if pending is not None:
        ofc.kernel.run_until(pending)
    stored = ofc.store.peek_meta("outputs", "o")
    assert stored is not None
    assert ofc.store._object("outputs", "o").payload == payload
    cached = ofc.cluster.peek(key)
    assert cached is None or cached.flags["dirty"] is False


def test_persistor_requeues_past_retry_budget():
    """Chaos-harness fix: an outage longer than the in-line retry
    budget must requeue the flush instead of giving up (the give-up
    left the acked write as a dirty cache copy one crash away from
    being lost)."""
    ofc = make_ofc()
    client = make_client(ofc)
    state = FaultState()
    ofc.store.faults = state
    ofc.cluster.faults = state
    write_only(ofc, client)
    pending = ofc.persistor.pending_for("outputs/o")
    state.enter_outage()

    def heal():
        yield 20.0  # longer than the ~11 s exponential-backoff budget
        state.exit_outage()

    ofc.kernel.process(heal(), name="heal")
    ofc.kernel.run_until(pending)
    assert ofc.persistor.stats.requeues >= 1
    assert ofc.persistor.stats.gave_up == 0
    assert ofc.persistor.stats.completed == 1
    meta = ofc.store.peek_meta("outputs", "o")
    assert meta.rsds_version == meta.version


def test_requeue_disabled_restores_pre_fix_give_up():
    ofc = make_ofc(persistor_requeue=False)
    client = make_client(ofc)
    state = FaultState()
    ofc.store.faults = state
    ofc.cluster.faults = state
    write_only(ofc, client)
    pending = ofc.persistor.pending_for("outputs/o")
    state.enter_outage()

    def heal():
        yield 20.0
        state.exit_outage()

    ofc.kernel.process(heal(), name="heal")
    ofc.kernel.run_until(pending)
    # Pre-fix mode: one retry budget, then terminal give-up — even
    # though the outage heals 9 s later.
    assert ofc.persistor.stats.gave_up == 1
    assert ofc.persistor.stats.requeues == 0
    assert ofc.persistor.stats.completed == 0
    cached = ofc.cluster.peek("outputs/o")
    assert cached is not None and cached.flags["dirty"] is True


def test_bypass_read_boosts_pending_persist():
    """Degraded (bypass-cache) reads go straight to the RSDS — they
    must first boost a pending persist or they read a stale shadow."""
    ofc = make_ofc()
    client = make_client(ofc)
    payload = b"bypass-bytes"
    write_only(ofc, client, payload=payload)
    assert ofc.persistor.pending_for("outputs/o") is not None
    state = FaultState()
    ofc.cluster.faults = state
    ofc.store.faults = state
    state.enter_bypass()

    def reader():
        obj = yield from client.read("outputs", "o")
        return obj

    obj = drive(ofc, reader())
    assert obj.payload == payload
    assert ofc.rclib_stats.bypass_reads == 1
    assert ofc.rclib_stats.pending_boosts >= 1


def test_bypass_write_invalidates_cached_copy():
    """A bypass write updates the RSDS behind the cache; the write
    webhook must drop the now-stale cached copy."""
    ofc = make_ofc()
    client = make_client(ofc)
    old, new = b"old-bytes", b"new-bytes"
    write_only(ofc, client, payload=old)
    pending = ofc.persistor.pending_for("outputs/o")
    ofc.kernel.run_until(pending)  # flush lands; final output discarded

    def warm_read():
        obj = yield from client.read("outputs", "o")
        return obj

    # Re-fill the cache from the RSDS so a clean cached copy exists
    # (the miss fill is asynchronous — give it a beat to land).
    assert drive(ofc, warm_read()).payload == old
    ofc.kernel.run(until=ofc.kernel.now + 1.0)
    assert ofc.cluster.peek("outputs/o") is not None
    state = FaultState()
    ofc.cluster.faults = state
    ofc.store.faults = state
    state.enter_bypass()

    def writer():
        yield from client.write("outputs", "o", new, 50_000)

    drive(ofc, writer())
    assert ofc.rclib_stats.bypass_writes == 1
    assert ofc.cluster.peek("outputs/o") is None  # stale copy dropped
    state.exit_bypass()

    def reader():
        obj = yield from client.read("outputs", "o")
        return obj

    assert drive(ofc, reader()).payload == new


def test_store_unavailable_not_raised_when_no_faults():
    ofc = make_ofc()
    client = make_client(ofc)
    write_only(ofc, client)
    pending = ofc.persistor.pending_for("outputs/o")
    assert pending is not None
    ofc.kernel.run_until(pending)
    assert ofc.store.stats.unavailable_errors == 0
    assert ofc.persistor.stats.retries == 0