"""Fault-schedule parsing, validation and stochastic generation."""

import json

import pytest

from repro.faults import FaultEvent, FaultSchedule, ScheduleError


def test_events_sorted_by_time():
    schedule = FaultSchedule(
        [
            FaultEvent(at=100.0, kind="restart", node="w1"),
            FaultEvent(at=10.0, kind="crash", node="w1"),
        ]
    )
    assert [e.kind for e in schedule] == ["crash", "restart"]
    assert schedule.duration == 100.0
    assert schedule.nodes() == ["w1"]


def test_episode_end_counts_toward_duration():
    schedule = FaultSchedule(
        [FaultEvent(at=50.0, kind="rsds_outage", duration=30.0)]
    )
    assert schedule.duration == 80.0


@pytest.mark.parametrize(
    "payload",
    [
        {"at": 1.0, "kind": "nonsense"},
        {"at": -1.0, "kind": "crash", "node": "w0"},
        {"at": 1.0, "kind": "crash"},  # node events need a node
        {"at": 1.0, "kind": "rsds_outage"},  # episodes need duration
        {"at": 1.0, "kind": "rsds_brownout", "duration": 5.0, "scale": 0.0},
        {"at": 1.0, "kind": "crash", "node": "w0", "bogus": 1},
    ],
)
def test_invalid_events_rejected(payload):
    with pytest.raises(ScheduleError):
        FaultEvent.from_dict(payload)


def test_dict_round_trip():
    schedule = FaultSchedule(
        [
            FaultEvent(at=5.0, kind="crash", node="w2"),
            FaultEvent(at=9.0, kind="slow_network", duration=4.0, scale=3.0),
        ]
    )
    clone = FaultSchedule.from_dict(schedule.to_dict())
    assert clone.to_dict() == schedule.to_dict()


def test_json_file_round_trip(tmp_path):
    path = tmp_path / "sched.json"
    schedule = FaultSchedule(
        [
            FaultEvent(at=1.0, kind="crash", node="w0"),
            FaultEvent(at=2.0, kind="rsds_brownout", duration=1.0, scale=2.0),
        ]
    )
    schedule.save(str(path))
    loaded = FaultSchedule.load(str(path))
    assert loaded.to_dict() == schedule.to_dict()
    # The file itself is the documented format.
    payload = json.loads(path.read_text())
    assert payload["events"][0]["kind"] == "crash"


def test_from_dict_requires_events_key():
    with pytest.raises(ScheduleError):
        FaultSchedule.from_dict({"things": []})


def test_overlapping_crash_windows_rejected():
    with pytest.raises(ScheduleError, match="already down"):
        FaultSchedule(
            [
                FaultEvent(at=1.0, kind="crash", node="w1"),
                FaultEvent(at=2.0, kind="crash", node="w1"),
                FaultEvent(at=3.0, kind="restart", node="w1"),
            ]
        )


def test_restart_of_up_node_rejected():
    with pytest.raises(ScheduleError, match="not down"):
        FaultSchedule([FaultEvent(at=1.0, kind="restart", node="w1")])


def test_crash_after_restart_is_fine():
    schedule = FaultSchedule(
        [
            FaultEvent(at=1.0, kind="crash", node="w1"),
            FaultEvent(at=5.0, kind="restart", node="w1"),
            FaultEvent(at=9.0, kind="crash", node="w1"),
            FaultEvent(at=12.0, kind="restart", node="w1"),
        ]
    )
    assert len(schedule) == 4


def test_random_schedule_is_deterministic():
    a = FaultSchedule.random(seed=7, duration_s=600.0, nodes=["w0", "w1"])
    b = FaultSchedule.random(seed=7, duration_s=600.0, nodes=["w0", "w1"])
    assert a.to_dict() == b.to_dict()
    c = FaultSchedule.random(seed=8, duration_s=600.0, nodes=["w0", "w1"])
    assert a.to_dict() != c.to_dict()


def test_random_schedule_never_crashes_a_down_node():
    schedule = FaultSchedule.random(
        seed=3,
        duration_s=3000.0,
        nodes=["w0", "w1"],
        mean_crash_interval_s=40.0,
        mean_downtime_s=200.0,
    )
    down = set()
    for event in schedule:
        if event.kind == "crash":
            assert event.node not in down
            down.add(event.node)
        elif event.kind == "restart":
            assert event.node in down
            down.discard(event.node)


def test_random_schedule_episodes():
    schedule = FaultSchedule.random(
        seed=5,
        duration_s=2000.0,
        nodes=[],
        mean_episode_interval_s=100.0,
    )
    kinds = {event.kind for event in schedule}
    assert kinds  # episodes were generated
    for event in schedule:
        assert event.duration > 0
