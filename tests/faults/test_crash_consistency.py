"""Regression tests for the cache failure-path consistency fixes.

Each test pins one of the crash-consistency bugs fixed alongside the
fault-injection subsystem:

1. ``set_flags`` only mutated the master copy — a post-crash promotion
   resurrected stale flags (a cleared ``dirty`` re-triggered the
   write-back, a set ``dirty`` was lost entirely);
2. a ``put`` to a key whose master died restarted the version at 1,
   making ``persist_payload``'s ordering treat newer data as stale;
3. ``restart()`` kept stale disk backups for keys re-placed while the
   node was down — a promotion could resurrect deleted/old data;
4. ``put`` silently dropped down backups and nothing ever restored the
   replication factor.
"""

import pytest

from repro.kvcache import CacheCluster, NoSuchKey
from repro.kvcache.errors import ServerDown
from repro.sim import Kernel
from repro.sim.latency import MB

NODES = ["w0", "w1", "w2", "w3"]


@pytest.fixture()
def env():
    kernel = Kernel()
    cluster = CacheCluster(kernel, NODES, replication_factor=2)
    for node in NODES:
        cluster.server(node).resize(64 * MB)
    return kernel, cluster


def run(kernel, gen):
    return kernel.run_process(gen)


# -- satellite 1: flag propagation ----------------------------------------


def test_set_flags_propagates_to_backups(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 1000, caller="w0", flags={"dirty": True})

    run(kernel, scenario())
    cluster.set_flags("k", dirty=False)
    for backup_id in cluster.coordinator.backups_of("k"):
        copy = cluster.server(backup_id).backup_peek("k")
        assert copy.flags["dirty"] is False


def test_promoted_copy_sees_cleared_dirty_flag(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 1000, caller="w0", flags={"dirty": True})

    run(kernel, scenario())
    cluster.set_flags("k", dirty=False)  # the persist completed
    cluster.crash("w0")
    run(kernel, cluster.recover("w0"))
    promoted = cluster.peek("k")
    assert promoted is not None
    # Without propagation the promotion resurrects dirty=True and the
    # (already completed) write-back fires again.
    assert promoted.flags["dirty"] is False


def test_set_flags_lands_on_backups_after_master_crash(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 1000, caller="w0", flags={"dirty": True})

    run(kernel, scenario())
    cluster.crash("w0")
    # The persistor finishing between crash and recovery must not lose
    # its completion: it lands on the surviving replicas.
    cluster.set_flags("k", dirty=False)
    run(kernel, cluster.recover("w0"))
    assert cluster.peek("k").flags["dirty"] is False


def test_set_flags_unknown_key_still_raises(env):
    kernel, cluster = env
    with pytest.raises(NoSuchKey):
        cluster.set_flags("ghost", dirty=False)


# -- satellite 2: version seeding after master loss -----------------------


def test_put_after_master_crash_continues_version_sequence(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v1", 1000, caller="w0")
        yield from cluster.put("k", "v2", 1000, caller="w0")  # version 2
        cluster.crash("w0")
        # Re-put before any recovery ran: the master copy is gone but
        # the version sequence must continue past the surviving copies.
        yield from cluster.put("k", "v3", 1000, caller="w3")
        return cluster.peek("k").version

    assert run(kernel, scenario()) == 3


def test_put_version_survives_total_copy_loss(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v1", 1000, caller="w0")
        yield from cluster.put("k", "v2", 1000, caller="w0")
        cluster.crash("w0")
        for backup_id in list(cluster.coordinator.backups_of("k")):
            cluster.crash(backup_id)
        # Every copy is gone; only the coordinator's version record
        # survives, and it must still seed the next version.
        yield from cluster.put("k", "v3", 1000, caller="w3")
        return cluster.peek("k").version

    assert run(kernel, scenario()) == 3


def test_put_to_master_with_stale_disk_backup_drops_it(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v1", 1000, caller="w0")
        cluster.crash("w0")
        backup_id = sorted(cluster.coordinator.backups_of("k"))[0]
        # The backup node becomes the new master via a plain re-put: its
        # stale disk copy must be dropped, not kept for promotion.
        yield from cluster.put("k", "v2", 1000, caller=backup_id)
        return backup_id

    backup_id = run(kernel, scenario())
    assert cluster.location_of("k") == backup_id
    assert not cluster.server(backup_id).backup_has("k")
    assert cluster.peek("k").version == 2


# -- satellite 3: restart purges stale backups ----------------------------


def test_restart_purges_backups_of_deleted_keys(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 1000, caller="w0")
        backup_id = sorted(cluster.coordinator.backups_of("k"))[0]
        cluster.crash(backup_id)
        yield from cluster.delete("k", caller="w0")  # down node keeps its copy
        return backup_id

    backup_id = run(kernel, scenario())
    assert cluster.server(backup_id)._backup  # the stale copy survived
    purged = cluster.restart(backup_id)
    assert purged == 1
    assert not cluster.server(backup_id).backup_has("k")
    assert cluster.stats.backups_purged == 1
    assert cluster.stats.restarts == 1


def test_restart_purges_backups_of_replaced_keys(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v1", 1000, caller="w0")
        backup_id = sorted(cluster.coordinator.backups_of("k"))[0]
        cluster.crash(backup_id)
        # Update while the backup node is down, then repair: the
        # placement moves to other nodes.
        yield from cluster.put("k", "v2", 1000, caller="w0")
        yield from cluster.repair()
        return backup_id

    backup_id = run(kernel, scenario())
    assert backup_id not in cluster.coordinator.backups_of("k")
    cluster.restart(backup_id)
    # The stale v1 disk copy is gone; it can never be promoted.
    assert not cluster.server(backup_id).backup_has("k")


def test_restart_keeps_backups_still_referenced(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 1000, caller="w0")

    run(kernel, scenario())
    backup_id = sorted(cluster.coordinator.backups_of("k"))[0]
    cluster.crash(backup_id)
    purged = cluster.restart(backup_id)
    # The placement still lists this node: the copy stays.
    assert purged == 0
    assert cluster.server(backup_id).backup_has("k")


# -- satellite 4: under-replication tracking + repair ---------------------


def test_put_with_down_backup_marks_under_replicated(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v1", 1000, caller="w0")
        for backup_id in list(cluster.coordinator.backups_of("k")):
            cluster.crash(backup_id)
        yield from cluster.put("k", "v2", 1000, caller="w0")

    run(kernel, scenario())
    assert "k" in cluster.under_replicated_keys
    assert cluster.stats.under_replication_events >= 1
    snap = cluster.stats_snapshot()
    assert snap["under_replicated"] == 1
    assert snap["live_servers"] == 2


def test_crash_marks_backed_keys_under_replicated(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 1000, caller="w0")

    run(kernel, scenario())
    backup_id = sorted(cluster.coordinator.backups_of("k"))[0]
    cluster.crash(backup_id)
    assert "k" in cluster.under_replicated_keys


def test_repair_restores_replication_factor(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 1000, caller="w0")
        backup_id = sorted(cluster.coordinator.backups_of("k"))[0]
        cluster.crash(backup_id)
        repaired = yield from cluster.repair()
        return repaired

    repaired = run(kernel, scenario())
    assert repaired == 1
    assert "k" not in cluster.under_replicated_keys
    backups = cluster.coordinator.backups_of("k")
    assert len(backups) == 2
    for backup_id in backups:
        assert cluster.server(backup_id).backup_has("k")
    assert cluster.stats.repaired_objects == 1


def test_repair_waits_until_capacity_returns(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 1000, caller="w0")
        # Lose BOTH spare nodes: no candidate can take the replica.
        backups = sorted(cluster.coordinator.backups_of("k"))
        cluster.crash(backups[0])
        spare = next(
            n for n in NODES if n != "w0" and n not in backups
        )
        cluster.crash(spare)
        repaired_now = yield from cluster.repair()
        cluster.restart(spare)
        repaired_later = yield from cluster.repair()
        return repaired_now, repaired_later

    repaired_now, repaired_later = run(kernel, scenario())
    assert repaired_now == 0
    assert repaired_later == 1
    assert len(cluster.coordinator.backups_of("k")) == 2


# -- failure-path hardening ------------------------------------------------


def test_migrate_master_of_crashed_master_raises_nosuchkey(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 1000, caller="w0")
        cluster.crash("w0")
        yield from cluster.migrate_master("k")

    # ServerDown must never leak out of the migration path.
    with pytest.raises(NoSuchKey):
        run(kernel, scenario())


def test_recover_promotes_highest_surviving_version(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v1", 1000, caller="w0")
        yield from cluster.put("k", "v2", 1000, caller="w0")

    run(kernel, scenario())
    backups = sorted(cluster.coordinator.backups_of("k"))
    # Regress one replica to simulate a copy that missed an update.
    cluster.server(backups[0])._backup["k"].version = 1
    cluster.crash("w0")
    run(kernel, cluster.recover("w0"))
    assert cluster.peek("k").version == 2


def test_recover_tolerates_second_crash_mid_recovery(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 1000, caller="w0")
        backups = sorted(cluster.coordinator.backups_of("k"))
        cluster.crash("w0")
        recovery = kernel.process(cluster.recover("w0"))
        # Let the recovery pass its candidate check and start the disk
        # read, then fail the survivors while the read is in flight (no
        # ServerDown may escape; the key is simply lost).
        yield 1e-9
        for backup_id in backups:
            cluster.crash(backup_id)
        yield recovery
        return recovery.value

    recovered = run(kernel, scenario())
    assert recovered == 0
    assert cluster.stats.lost_objects == 1
    assert not cluster.contains("k")


def test_server_down_still_raised_for_direct_access(env):
    kernel, cluster = env
    cluster.crash("w0")
    with pytest.raises(ServerDown):
        cluster.server("w0").master_get("anything")
