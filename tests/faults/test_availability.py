"""End-to-end availability experiment under a crash/restart schedule.

This is the acceptance test for the fault-injection tentpole: a macro
workload must run to completion across a node crash + restart with no
unhandled ``ServerDown``/``NoSuchKey`` and zero lost dirty write-backs.
"""

from repro.bench.faults import crash_restart_schedule, run_availability


def test_crash_restart_schedule_shape():
    schedule = crash_restart_schedule(90.0, node="w1")
    kinds = [(event.kind, event.node) for event in schedule]
    assert kinds == [("crash", "w1"), ("restart", "w1")]
    assert schedule.events[0].at == 30.0
    assert schedule.events[1].at == 60.0


def test_availability_run_survives_crash_restart():
    schedule = crash_restart_schedule(90.0, node="w1")
    result = run_availability(
        "crash_restart", schedule=schedule, duration_s=90.0, seed=11
    )
    # The workload made progress and nothing escaped the failure path.
    assert result.completed > 0
    assert result.failed == 0
    # Zero lost dirty write-backs at the end of the run.
    assert result.dirty_final_at_end == 0
    snap = result.injector_snapshot
    assert snap["crashes"] == 1
    assert snap["restarts"] == 1
    # The sampler recorded the hit-ratio trajectory.
    assert len(result.points) >= 3
    assert result.final_hit_ratio is not None


def test_availability_baseline_has_no_faults():
    result = run_availability("baseline", schedule=None, duration_s=60.0, seed=11)
    assert result.completed > 0
    assert result.failed == 0
    assert result.injector_snapshot is None
    assert result.lost_objects == 0
