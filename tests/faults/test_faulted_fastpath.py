"""Bit-identical parity for the faulted fast-path dispatch variant.

The :class:`~repro.faults.injector.FaultInjector` now keeps the codegen
dispatch loop live (the ``fast-faulted`` compile unit) instead of
downgrading to the generic interpreter.  These tests are the acceptance
evidence: the checked-in minimized chaos reproducers and a fixed-seed
chaos cell must produce *equal* results — every recorded data-plane op,
every counter, zero divergence — with the fast path on and off.
"""

import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.bench.chaos import ChaosCell, run_chaos_cell
from repro.sim import fastpath

FAULT_DIR = Path(__file__).resolve().parents[2] / "examples" / "faults"

REPRODUCERS = sorted(FAULT_DIR.glob("chaos_*.json"))


@pytest.fixture
def restore_fastpath():
    original = fastpath.enabled()
    yield
    fastpath.set_enabled(original)


def _cell_from_reproducer(path: Path) -> ChaosCell:
    doc = json.loads(path.read_text())
    meta = doc["chaos"]
    return ChaosCell(
        backend=meta["backend"],
        intensity=meta["intensity"],
        quota_policy=meta["quota_policy"],
        n_tenants=meta["n_tenants"],
        mean_interval_s=meta["mean_interval_s"],
        duration_s=meta["duration_s"],
        seed=meta["seed"],
        warmup_s=meta["warmup_s"],
        schedule={"events": doc["events"]},
        config_overrides=meta.get("config_overrides"),
    )


def _run_both(cell: ChaosCell):
    results = []
    for enabled in (True, False):
        fastpath.set_enabled(enabled)
        results.append(asdict(run_chaos_cell(cell)))
    return results


@pytest.mark.slow
@pytest.mark.parametrize(
    "reproducer", REPRODUCERS, ids=[p.stem for p in REPRODUCERS]
)
def test_reproducer_replay_parity(reproducer, restore_fastpath):
    """Replaying a minimized reproducer is bit-identical on/off."""
    assert REPRODUCERS, "no checked-in reproducers found"
    fast, generic = _run_both(_cell_from_reproducer(reproducer))
    assert fast == generic


@pytest.mark.slow
def test_fixed_seed_chaos_cell_history_parity(restore_fastpath):
    """A fixed-seed chaos cell (generated schedule, crashes + episodes)
    produces an identical per-op history under both dispatchers — not
    just equal summary counters."""
    from repro.bench import chaos as chaos_mod
    from repro.bench.envs import build_ofc_env
    from repro.checks import HistoryRecorder, check_history
    from repro.core.config import OFCConfig
    from repro.faas import reset_id_counters
    from repro.faults import FaultInjector
    from repro.faults.chaos import chaos_schedule, chaos_targets
    from repro.workloads.tenants import TenantLoadEngine, TenantWorkloadConfig

    def run_once(enabled):
        fastpath.set_enabled(enabled)
        reset_id_counters()
        config = OFCConfig(cache_backend="ofc", tenant_quota_policy="none")
        ofc = build_ofc_env(
            nodes=chaos_mod.CELL_NODES,
            node_mb=chaos_mod.CELL_NODE_MB,
            seed=11,
            config=config,
            keepalive_s=chaos_mod.CELL_KEEPALIVE_S,
        )
        recorder = HistoryRecorder(ofc)
        workload = TenantWorkloadConfig(
            n_tenants=24, mean_interval_s=6.0, seed=11
        )
        engine = TenantLoadEngine(ofc.kernel, ofc.platform, ofc.store, workload)
        engine.run(10.0)  # warmup so chaos_targets sees placements
        schedule = chaos_schedule(
            11,
            30.0,
            ofc.backend.node_ids,
            intensity="medium",
            targets=chaos_targets(ofc.backend),
            start_at=ofc.kernel.now,
        )
        injector = FaultInjector(ofc, schedule)
        assert ofc.kernel.dispatch_variant == (
            "fast-faulted" if enabled else "generic"
        )
        injector.start()
        stats = engine.run(30.0)
        settle = max(ofc.kernel.now, schedule.duration) + 20.0
        ofc.kernel.run(until=settle)
        ofc.kernel.run_until(ofc.kernel.process(ofc.backend.repair()))
        violations = check_history(recorder.ops, ofc)
        # Everything observable except payload object identity (payload
        # references are per-run Python objects).
        history = [
            (
                op.seq,
                op.op,
                op.key,
                op.t_start,
                op.t_ack,
                op.status,
                op.error,
                op.size,
                op.version,
                op.store_version,
                op.payload_missing,
                op.tenant,
                op.request_id,
                op.pipeline_id,
                op.final_stage,
                op.intermediate,
            )
            for op in recorder.ops
        ]
        return {
            "history": history,
            "snapshot": recorder.snapshot(),
            "violations": len(violations),
            "submitted": stats.submitted,
            "completed": stats.completed,
            "failed": stats.failed,
            "injector": injector.snapshot(),
            "final_now": ofc.kernel.now,
        }

    fast = run_once(True)
    generic = run_once(False)
    assert fast == generic
    assert fast["history"], "cell recorded no data-plane ops"
    assert fast["violations"] == 0
