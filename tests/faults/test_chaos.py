"""Chaos generator: determinism, validity discipline, targeting, ddmin."""

import pytest

from repro.faults import FaultSchedule
from repro.faults.chaos import (
    INTENSITIES,
    TARGET_WEIGHT,
    atomic_units,
    chaos_schedule,
    chaos_targets,
    shrink_schedule,
)

NODES = ["w0", "w1", "w2", "w3"]


def test_schedule_deterministic_in_seed():
    a = chaos_schedule(7, 300.0, NODES, intensity="medium")
    b = chaos_schedule(7, 300.0, NODES, intensity="medium")
    assert a.to_dict() == b.to_dict()
    c = chaos_schedule(8, 300.0, NODES, intensity="medium")
    assert a.to_dict() != c.to_dict()


def test_unknown_intensity_rejected():
    with pytest.raises(ValueError, match="unknown chaos intensity"):
        chaos_schedule(0, 100.0, NODES, intensity="extreme")


@pytest.mark.parametrize("intensity", sorted(INTENSITIES))
def test_generated_schedules_valid_and_disciplined(intensity):
    spec = INTENSITIES[intensity]
    for seed in range(10):
        # FaultSchedule.__post_init__ validates crash-window pairing;
        # constructing at all proves validity.
        schedule = chaos_schedule(seed, 400.0, NODES, intensity=intensity)
        down = set()
        last_restart = None
        for event in schedule:
            if event.kind == "crash":
                # Single-failure discipline: never a second node down.
                assert not down
                if last_restart is not None:
                    assert event.at >= last_restart + spec.min_crash_gap_s
                down.add(event.node)
            elif event.kind == "restart":
                assert event.node in down
                down.discard(event.node)
                last_restart = event.at
            else:
                assert event.kind in spec.episode_kinds
                assert 0 < event.duration <= spec.max_episode_s


def test_low_intensity_stays_under_persistor_budget():
    # Only "high" may emit outages; low episodes are brownout/slow-net
    # and short enough that the persistor's retry budget always covers
    # them — zero violations must be a meaningful verdict at every tier.
    spec = INTENSITIES["low"]
    assert "rsds_outage" not in spec.episode_kinds
    assert spec.max_episode_s < 11.0
    assert "rsds_outage" in INTENSITIES["high"].episode_kinds
    assert INTENSITIES["high"].max_episode_s > 12.0


def test_start_at_offsets_every_event():
    schedule = chaos_schedule(3, 200.0, NODES, intensity="high", start_at=500.0)
    assert len(schedule) > 0
    for event in schedule:
        assert 500.0 <= event.at < 700.0


def test_targets_bias_crash_selection():
    hits = {node: 0 for node in NODES}
    for seed in range(40):
        schedule = chaos_schedule(
            seed, 600.0, NODES, intensity="high", targets=["w0"]
        )
        for event in schedule:
            if event.kind == "crash":
                hits[event.node] += 1
    total = sum(hits.values())
    assert total > 0
    # w0 holds TARGET_WEIGHT of the TARGET_WEIGHT+3 pool slots.
    expected = TARGET_WEIGHT / (TARGET_WEIGHT + len(NODES) - 1)
    assert hits["w0"] / total > 0.6 * expected
    assert hits["w0"] / total > max(hits[n] for n in NODES[1:]) / total


def test_chaos_targets_reads_backend_placements():
    class FakeBackend:
        node_ids = ["w0", "w1", "w2"]

        def objects(self):
            obj = object()
            yield "w2", obj
            yield "w0", obj
            yield "external", obj  # not a node: ignored

    assert chaos_targets(FakeBackend()) == ["w0", "w2"]


def test_atomic_units_pair_crash_with_restart():
    schedule = chaos_schedule(5, 400.0, NODES, intensity="medium")
    units = atomic_units(schedule)
    assert sum(len(u) for u in units) == len(schedule)
    for unit in units:
        kinds = [e.kind for e in unit]
        if "crash" in kinds:
            assert kinds == ["crash", "restart"]
            assert unit[0].node == unit[1].node
        else:
            assert len(unit) == 1


def test_shrink_converges_to_failing_unit():
    schedule = chaos_schedule(2, 600.0, NODES, intensity="high")
    crashes = [e for e in schedule if e.kind == "crash"]
    assert len(crashes) >= 2  # something to shrink away
    culprit = crashes[-1].at

    def still_fails(candidate: FaultSchedule) -> bool:
        return any(
            e.kind == "crash" and e.at == culprit for e in candidate
        )

    minimal = shrink_schedule(schedule, still_fails, max_probes=40)
    assert still_fails(minimal)
    assert len(minimal) == 2  # the culprit crash + its paired restart
    assert [e.kind for e in minimal] == ["crash", "restart"]


def test_shrink_respects_probe_budget():
    schedule = chaos_schedule(2, 600.0, NODES, intensity="high")
    probes = []

    def still_fails(candidate: FaultSchedule) -> bool:
        probes.append(len(candidate))
        return True  # everything "fails": worst case for the budget

    shrink_schedule(schedule, still_fails, max_probes=5)
    assert len(probes) <= 5


def test_shrunk_schedules_stay_valid():
    schedule = chaos_schedule(4, 600.0, NODES, intensity="high")

    def still_fails(candidate: FaultSchedule) -> bool:
        # Round-trip through validation: an invalid candidate raises.
        FaultSchedule.from_dict(candidate.to_dict())
        return len(candidate) >= 2

    minimal = shrink_schedule(schedule, still_fails, max_probes=30)
    FaultSchedule.from_dict(minimal.to_dict())
