"""Unit tests for the per-node cache server."""

import pytest

from repro.kvcache.errors import CapacityExceeded, NoSuchKey, ServerDown
from repro.kvcache.log import SEGMENT_SIZE
from repro.kvcache.objects import CacheObject
from repro.kvcache.server import CacheServer


def obj(key, size, value=None):
    return CacheObject(key=key, value=value or key, size=size)


def test_master_put_get_roundtrip():
    server = CacheServer("n0", capacity=SEGMENT_SIZE)
    server.master_put(obj("a", 100, value="data"))
    assert server.master_get("a").value == "data"
    assert server.live_bytes == 100


def test_master_get_missing_raises():
    server = CacheServer("n0", capacity=SEGMENT_SIZE)
    with pytest.raises(NoSuchKey):
        server.master_get("ghost")


def test_master_put_beyond_capacity_raises():
    server = CacheServer("n0", capacity=SEGMENT_SIZE)
    with pytest.raises(CapacityExceeded):
        server.master_put(obj("big", SEGMENT_SIZE + 1))


def test_zero_capacity_server_accepts_nothing():
    server = CacheServer("n0", capacity=0)
    with pytest.raises(CapacityExceeded):
        server.master_put(obj("a", 1))


def test_master_delete_frees_memory():
    server = CacheServer("n0", capacity=SEGMENT_SIZE)
    server.master_put(obj("a", 100))
    server.master_delete("a")
    assert server.live_bytes == 0
    assert not server.master_has("a")


def test_resize_up_then_fit_larger():
    server = CacheServer("n0", capacity=0)
    server.resize(2 * SEGMENT_SIZE)
    server.master_put(obj("a", SEGMENT_SIZE))
    assert server.master_has("a")


def test_resize_below_footprint_raises():
    server = CacheServer("n0", capacity=2 * SEGMENT_SIZE)
    server.master_put(obj("a", SEGMENT_SIZE // 2))
    with pytest.raises(CapacityExceeded):
        server.resize(0)


def test_resize_triggers_clean_first():
    server = CacheServer("n0", capacity=4 * SEGMENT_SIZE)
    # Two sparse segments; live data fits in one after cleaning.
    server.master_put(obj("a", SEGMENT_SIZE - 10))
    server.master_put(obj("b", SEGMENT_SIZE // 4))
    server.master_delete("a")
    server.resize(SEGMENT_SIZE)
    assert server.capacity == SEGMENT_SIZE
    assert server.master_has("b")


def test_backup_roundtrip():
    server = CacheServer("n0", capacity=0)
    server.backup_put(obj("a", 100))
    assert server.backup_has("a")
    assert server.backup_get("a").size == 100
    assert server.disk_used_bytes == 100
    server.backup_delete("a")
    assert not server.backup_has("a")


def test_backup_disk_capacity_enforced():
    server = CacheServer("n0", capacity=0, disk_capacity=150)
    server.backup_put(obj("a", 100))
    with pytest.raises(CapacityExceeded):
        server.backup_put(obj("b", 100))


def test_promote_moves_backup_to_master():
    server = CacheServer("n0", capacity=SEGMENT_SIZE)
    server.backup_put(obj("a", 100))
    server.promote("a")
    assert server.master_has("a")
    assert not server.backup_has("a")


def test_demote_moves_master_to_backup():
    server = CacheServer("n0", capacity=SEGMENT_SIZE)
    server.master_put(obj("a", 100))
    server.demote("a")
    assert not server.master_has("a")
    assert server.backup_has("a")
    assert server.live_bytes == 0


def test_crash_wipes_ram_keeps_disk():
    server = CacheServer("n0", capacity=SEGMENT_SIZE)
    server.master_put(obj("a", 100))
    server.backup_put(obj("b", 200))
    server.crash()
    assert not server.up
    with pytest.raises(ServerDown):
        server.master_get("a")
    server.restart()
    assert not server.master_has("a")
    assert server.backup_has("b")
    assert server.live_bytes == 0


def test_operations_on_down_server_raise():
    server = CacheServer("n0", capacity=SEGMENT_SIZE)
    server.crash()
    with pytest.raises(ServerDown):
        server.master_put(obj("a", 1))
    with pytest.raises(ServerDown):
        server.backup_put(obj("a", 1))


def test_can_fit_accounts_for_cleanable_space():
    server = CacheServer("n0", capacity=2 * SEGMENT_SIZE)
    server.master_put(obj("a", SEGMENT_SIZE - 10))
    server.master_put(obj("b", SEGMENT_SIZE // 2))
    server.master_delete("a")
    # Footprint is 2 segments but live data is small: fits after clean.
    assert server.can_fit(SEGMENT_SIZE)
