"""Integration tests for the distributed cache cluster."""

import pytest

from repro.kvcache import CacheCluster, CapacityExceeded, NoSuchKey, ObjectTooLarge
from repro.kvcache.log import SEGMENT_SIZE
from repro.sim import Kernel
from repro.sim.latency import MB


NODES = ["w0", "w1", "w2", "w3"]


@pytest.fixture()
def env():
    kernel = Kernel()
    cluster = CacheCluster(kernel, NODES, replication_factor=2)
    for node in NODES:
        cluster.server(node).resize(64 * MB)
    return kernel, cluster


def run(kernel, gen):
    return kernel.run_process(gen)


def test_put_prefers_caller_node(env):
    kernel, cluster = env

    def scenario():
        master = yield from cluster.put("k", "v", 1000, caller="w2")
        return master

    assert run(kernel, scenario()) == "w2"
    assert cluster.location_of("k") == "w2"


def test_put_replicates_to_backups(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 1000, caller="w0")

    run(kernel, scenario())
    backups = cluster.coordinator.backups_of("k")
    assert len(backups) == 2
    assert "w0" not in backups
    for backup_id in backups:
        assert cluster.server(backup_id).backup_has("k")


def test_get_local_faster_than_remote(env):
    kernel, cluster = env
    cluster.rng = None

    def scenario():
        yield from cluster.put("k", "v", 100_000, caller="w0")
        t0 = kernel.now
        yield from cluster.get("k", caller="w0")
        local = kernel.now - t0
        t1 = kernel.now
        yield from cluster.get("k", caller="w1")
        remote = kernel.now - t1
        return local, remote

    local, remote = run(kernel, scenario())
    assert remote > 10 * local
    assert cluster.stats.gets_local == 1
    assert cluster.stats.gets_remote == 1


def test_get_missing_raises_and_counts_miss(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.get("ghost", caller="w0")

    with pytest.raises(NoSuchKey):
        run(kernel, scenario())
    assert cluster.stats.misses == 1


def test_get_updates_access_tracking(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 100, caller="w0")
        yield from cluster.get("k", caller="w0")
        yield from cluster.get("k", caller="w1")

    run(kernel, scenario())
    obj = cluster.peek("k")
    assert obj.n_access == 2
    assert obj.t_access == pytest.approx(kernel.now, abs=1.0)


def test_overwrite_bumps_version(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v1", 100, caller="w0")
        yield from cluster.put("k", "v2", 150, caller="w0")

    run(kernel, scenario())
    obj = cluster.peek("k")
    assert obj.version == 2
    assert obj.value == "v2"
    assert obj.size == 150


def test_object_too_large_rejected(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 11 * MB, caller="w0")

    with pytest.raises(ObjectTooLarge):
        run(kernel, scenario())


def test_capacity_exhausted_raises(env):
    kernel, cluster = env
    for node in NODES:
        cluster.server(node).resize(0)

    def scenario():
        yield from cluster.put("k", "v", 1000, caller="w0")

    with pytest.raises(CapacityExceeded):
        run(kernel, scenario())


def test_put_spills_to_other_node_when_caller_full(env):
    kernel, cluster = env
    cluster.server("w0").resize(0)

    def scenario():
        master = yield from cluster.put("k", "v", 1000, caller="w0")
        return master

    master = run(kernel, scenario())
    assert master != "w0"


def test_delete_removes_all_copies(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 1000, caller="w0")
        backups = cluster.coordinator.backups_of("k")
        yield from cluster.delete("k", caller="w0")
        return backups

    backups = run(kernel, scenario())
    assert not cluster.contains("k")
    for node in NODES:
        assert not cluster.server(node).master_has("k")
        assert not cluster.server(node).backup_has("k")
    assert backups  # sanity: there were backups before the delete


def test_set_flags(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 100, caller="w0")

    run(kernel, scenario())
    cluster.set_flags("k", dirty=True)
    assert cluster.peek("k").flags["dirty"] is True
    with pytest.raises(NoSuchKey):
        cluster.set_flags("ghost", dirty=True)


def test_migrate_master_hands_off_to_backup(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 1000, caller="w0")
        old_backups = cluster.coordinator.backups_of("k")
        new_master = yield from cluster.migrate_master("k")
        return old_backups, new_master

    old_backups, new_master = run(kernel, scenario())
    assert new_master in old_backups
    assert cluster.location_of("k") == new_master
    # Old master keeps an on-disk copy (it became a backup).
    assert cluster.server("w0").backup_has("k")
    assert not cluster.server("w0").master_has("k")
    # Value survived the hand-off.
    assert cluster.peek("k").value == "v"
    assert cluster.stats.migrations == 1


def test_migrate_master_with_no_viable_backup_returns_none(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 1000, caller="w0")
        for node in NODES[1:]:
            cluster.server(node).crash()
        result = yield from cluster.migrate_master("k")
        return result

    assert run(kernel, scenario()) is None


def test_migration_preserves_access_stats(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 1000, caller="w0")
        yield from cluster.get("k", caller="w0")
        yield from cluster.get("k", caller="w0")
        yield from cluster.migrate_master("k")

    run(kernel, scenario())
    assert cluster.peek("k").n_access == 2


def test_recovery_promotes_backups(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k1", "v1", 1000, caller="w0")
        yield from cluster.put("k2", "v2", 2000, caller="w0")
        cluster.crash("w0")
        recovered = yield from cluster.recover("w0")
        return recovered

    assert run(kernel, scenario()) == 2
    for key in ("k1", "k2"):
        location = cluster.location_of(key)
        assert location is not None and location != "w0"
    assert cluster.stats.recovered_objects == 2


def test_recovery_restores_replication_factor(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 1000, caller="w0")
        cluster.crash("w0")
        yield from cluster.recover("w0")

    run(kernel, scenario())
    backups = cluster.coordinator.backups_of("k")
    master = cluster.location_of(key="k")
    assert master not in backups
    assert len(backups) == 2
    for backup_id in backups:
        assert cluster.server(backup_id).backup_has("k")


def test_object_lost_when_all_replicas_down(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 1000, caller="w0")
        for backup_id in cluster.coordinator.backups_of("k"):
            cluster.crash(backup_id)
        cluster.crash("w0")
        recovered = yield from cluster.recover("w0")
        return recovered

    assert run(kernel, scenario()) == 0
    assert not cluster.contains("k")


def test_scale_up_and_down(env):
    kernel, cluster = env

    def scenario():
        cap = yield from cluster.scale_up("w0", 32 * MB)
        assert cap == 96 * MB
        cap = yield from cluster.scale_down("w0", 16 * MB)
        return cap

    assert run(kernel, scenario()) == 16 * MB
    assert cluster.stats.resizes == 2


def test_total_capacity_and_used(env):
    kernel, cluster = env
    assert cluster.total_capacity == 4 * 64 * MB

    def scenario():
        yield from cluster.put("k", "v", 1000, caller="w0")

    run(kernel, scenario())
    assert cluster.total_used >= SEGMENT_SIZE


def test_replication_factor_clamped_to_cluster_size():
    kernel = Kernel()
    cluster = CacheCluster(kernel, ["a", "b"], replication_factor=5)
    assert cluster.coordinator.replication_factor == 1
