"""Unit tests for the cache coordinator."""

import pytest

from repro.kvcache.coordinator import Coordinator
from repro.kvcache.errors import CacheError, NoSuchKey
from repro.kvcache.server import CacheServer
from repro.sim.latency import MB


def make_coordinator(n=4, capacity=64 * MB, rf=2):
    coordinator = Coordinator(replication_factor=rf)
    for i in range(n):
        coordinator.register(CacheServer(f"w{i}", capacity=capacity))
    return coordinator


def test_register_rejects_duplicates():
    coordinator = make_coordinator()
    with pytest.raises(CacheError):
        coordinator.register(CacheServer("w0"))


def test_unknown_server_raises():
    coordinator = make_coordinator()
    with pytest.raises(CacheError):
        coordinator.server("nope")


def test_negative_replication_factor_rejected():
    with pytest.raises(CacheError):
        Coordinator(replication_factor=-1)


def test_choose_master_prefers_requested_node():
    coordinator = make_coordinator()
    assert coordinator.choose_master(1000, preferred="w2") == "w2"


def test_choose_master_skips_full_preferred():
    coordinator = make_coordinator()
    coordinator.server("w2").capacity = 0
    chosen = coordinator.choose_master(1000, preferred="w2")
    assert chosen is not None and chosen != "w2"


def test_choose_master_picks_most_free():
    coordinator = make_coordinator()
    coordinator.server("w1").capacity = 256 * MB
    assert coordinator.choose_master(1000) == "w1"


def test_choose_master_none_when_all_full():
    coordinator = make_coordinator(capacity=0)
    assert coordinator.choose_master(1000) is None


def test_choose_backups_excludes_master_and_respects_factor():
    coordinator = make_coordinator(rf=2)
    backups = coordinator.choose_backups("k", "w0")
    assert len(backups) == 2
    assert "w0" not in backups


def test_choose_backups_spreads_by_disk_usage():
    coordinator = make_coordinator(rf=1)
    from repro.kvcache.objects import CacheObject

    coordinator.server("w1").backup_put(CacheObject("x", None, 10 * MB))
    backups = coordinator.choose_backups("k", "w0")
    assert backups == ["w2"] or backups == ["w3"]


def test_placement_bookkeeping_roundtrip():
    coordinator = make_coordinator()
    coordinator.record_placement("k", "w0", ["w1", "w2"])
    assert coordinator.master_of("k") == "w0"
    assert coordinator.backups_of("k") == {"w1", "w2"}
    assert coordinator.holds("k")
    assert coordinator.keys_mastered_by("w0") == ["k"]
    coordinator.forget("k")
    assert coordinator.master_of("k") is None
    assert not coordinator.holds("k")


def test_record_master_change_swaps_roles():
    coordinator = make_coordinator()
    coordinator.record_placement("k", "w0", ["w1", "w2"])
    coordinator.record_master_change("k", "w1")
    assert coordinator.master_of("k") == "w1"
    assert coordinator.backups_of("k") == {"w0", "w2"}


def test_record_master_change_unknown_key_raises():
    coordinator = make_coordinator()
    with pytest.raises(NoSuchKey):
        coordinator.record_master_change("ghost", "w1")


def test_live_servers_excludes_crashed():
    coordinator = make_coordinator()
    coordinator.server("w3").crash()
    live = {s.server_id for s in coordinator.live_servers()}
    assert live == {"w0", "w1", "w2"}
