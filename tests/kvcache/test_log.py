"""Unit and property tests for the log-structured memory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvcache.errors import CacheError
from repro.kvcache.log import ObjectLog, SEGMENT_SIZE


def test_append_and_contains():
    log = ObjectLog()
    log.append("a", 100)
    assert "a" in log
    assert len(log) == 1
    assert log.live_bytes == 100


def test_footprint_is_segment_granular():
    log = ObjectLog()
    log.append("a", 100)
    assert log.footprint_bytes == SEGMENT_SIZE


def test_append_overflows_to_new_segment():
    log = ObjectLog()
    log.append("a", SEGMENT_SIZE - 10)
    log.append("b", 100)
    assert log.segment_count == 2


def test_jumbo_entry_gets_dedicated_segment():
    log = ObjectLog()
    log.append("big", SEGMENT_SIZE * 2)
    # The dedicated jumbo segment is charged; the untouched head is not.
    assert log.footprint_bytes == SEGMENT_SIZE * 2
    assert log.live_bytes == SEGMENT_SIZE * 2
    assert log.segment_count == 2


def test_delete_marks_dead_and_returns_size():
    log = ObjectLog()
    log.append("a", 500)
    assert log.delete("a") == 500
    assert "a" not in log
    assert log.live_bytes == 0
    # Head segment is retained even when fully dead.
    assert log.footprint_bytes == SEGMENT_SIZE


def test_delete_missing_raises():
    log = ObjectLog()
    with pytest.raises(CacheError):
        log.delete("ghost")


def test_reappend_same_key_replaces():
    log = ObjectLog()
    log.append("a", 100)
    log.append("a", 300)
    assert log.live_bytes == 300
    assert len(log) == 1


def test_fully_dead_closed_segment_freed_immediately():
    log = ObjectLog()
    log.append("a", SEGMENT_SIZE - 10)  # fills segment 1
    log.append("b", 100)  # opens segment 2 (head)
    assert log.segment_count == 2
    log.delete("a")
    assert log.segment_count == 1
    assert log.stats.segments_freed == 1


def test_clean_compacts_sparse_segments():
    log = ObjectLog()
    # Fill two closed segments each with many entries, then kill most.
    keys = []
    for i in range(40):
        key = f"k{i}"
        log.append(key, SEGMENT_SIZE // 10)
        keys.append(key)
    before = log.footprint_bytes
    for key in keys[::2]:
        log.delete(key)
    freed, relocated = log.clean(max_utilization=0.75)
    assert freed > 0
    assert relocated > 0
    assert log.footprint_bytes < before
    # All surviving keys still present.
    for key in keys[1::2]:
        assert key in log


def test_clean_ignores_head_segment():
    log = ObjectLog()
    log.append("a", 10)
    freed, relocated = log.clean(max_utilization=1.0)
    assert freed == 0
    assert relocated == 0
    assert "a" in log


def test_negative_size_rejected():
    log = ObjectLog()
    with pytest.raises(CacheError):
        log.append("a", -1)


def test_invalid_segment_size_rejected():
    with pytest.raises(CacheError):
        ObjectLog(segment_size=0)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["put", "del"]),
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=1, max_value=SEGMENT_SIZE * 2),
        ),
        max_size=80,
    )
)
def test_log_invariants_under_random_ops(ops):
    """live_bytes always equals the sum of present entries; footprint is
    always >= live bytes; cleaning never loses an entry."""
    log = ObjectLog()
    model = {}
    for op, key_id, size in ops:
        key = f"k{key_id}"
        if op == "put":
            log.append(key, size)
            model[key] = size
        elif key in model:
            assert log.delete(key) == model.pop(key)
    assert log.live_bytes == sum(model.values())
    assert log.footprint_bytes >= log.live_bytes
    log.clean()
    assert set(log.keys()) == set(model)
    assert log.live_bytes == sum(model.values())


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.integers(min_value=1, max_value=SEGMENT_SIZE // 4),
        min_size=1,
        max_size=60,
    )
)
def test_clean_after_mass_delete_reclaims_everything(sizes):
    log = ObjectLog()
    for i, size in enumerate(sizes):
        log.append(f"k{i}", size)
    for i in range(len(sizes)):
        log.delete(f"k{i}")
    log.clean(max_utilization=1.0)
    assert log.live_bytes == 0
    # Only the head segment may remain allocated.
    assert log.footprint_bytes <= SEGMENT_SIZE
