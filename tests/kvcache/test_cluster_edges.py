"""Edge-case tests for the cache cluster."""

import pytest

from repro.kvcache import CacheCluster, CacheError, NoSuchKey
from repro.kvcache.errors import CapacityExceeded
from repro.sim import Kernel
from repro.sim.latency import MB


@pytest.fixture()
def env():
    kernel = Kernel()
    cluster = CacheCluster(kernel, ["w0", "w1", "w2"], replication_factor=1)
    for node in ("w0", "w1", "w2"):
        cluster.server(node).resize(64 * MB)
    return kernel, cluster


def run(kernel, gen):
    return kernel.run_process(gen)


def test_empty_cluster_rejected():
    with pytest.raises(CacheError):
        CacheCluster(Kernel(), [])


def test_single_node_cluster_has_no_backups():
    kernel = Kernel()
    cluster = CacheCluster(kernel, ["solo"])
    cluster.server("solo").resize(64 * MB)

    def scenario():
        yield from cluster.put("k", "v", 100, caller="solo")

    run(kernel, scenario())
    assert cluster.coordinator.backups_of("k") == set()
    assert cluster.contains("k")


def test_migrate_on_single_node_returns_none():
    kernel = Kernel()
    cluster = CacheCluster(kernel, ["solo"])
    cluster.server("solo").resize(64 * MB)

    def scenario():
        yield from cluster.put("k", "v", 100, caller="solo")
        return (yield from cluster.migrate_master("k"))

    assert run(kernel, scenario()) is None


def test_migrate_unknown_key_raises(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.migrate_master("ghost")

    with pytest.raises(NoSuchKey):
        run(kernel, scenario())


def test_delete_unknown_key_raises(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.delete("ghost", caller="w0")

    with pytest.raises(NoSuchKey):
        run(kernel, scenario())


def test_scale_up_negative_rejected(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.scale_up("w0", -1)

    with pytest.raises(CacheError):
        run(kernel, scenario())


def test_put_to_down_node_uses_other_master(env):
    kernel, cluster = env
    cluster.crash("w0")

    def scenario():
        master = yield from cluster.put("k", "v", 100, caller="w0")
        return master

    assert run(kernel, scenario()) != "w0"


def test_backups_skip_down_nodes(env):
    kernel, cluster = env
    cluster.crash("w2")

    def scenario():
        yield from cluster.put("k", "v", 100, caller="w0")

    run(kernel, scenario())
    assert cluster.coordinator.backups_of("k") == {"w1"}


def test_get_after_master_crash_without_recovery_is_miss(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 100, caller="w0")
        cluster.crash("w0")
        yield from cluster.get("k", caller="w1")

    with pytest.raises(NoSuchKey):
        run(kernel, scenario())
    assert cluster.location_of("k") is None


def test_overwrite_grows_object_beyond_capacity_raises(env):
    kernel, cluster = env
    cluster.server("w0").resize(1 * MB)
    cluster.server("w1").resize(0)
    cluster.server("w2").resize(0)

    def scenario():
        yield from cluster.put("k", "v", 100, caller="w0")
        yield from cluster.put("k", "v2", 2 * MB, caller="w0")

    with pytest.raises(CapacityExceeded):
        run(kernel, scenario())


def test_stats_snapshot_keys(env):
    kernel, cluster = env

    def scenario():
        yield from cluster.put("k", "v", 100, caller="w0")
        yield from cluster.get("k", caller="w0")

    run(kernel, scenario())
    snap = cluster.stats.snapshot()
    assert snap["puts"] == 1
    assert snap["gets_local"] == 1
    assert "migrations" in snap and "recoveries" in snap


def test_recover_idempotent_for_empty_node(env):
    kernel, cluster = env
    cluster.crash("w2")

    def scenario():
        return (yield from cluster.recover("w2"))

    assert run(kernel, scenario()) == 0
