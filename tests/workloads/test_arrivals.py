"""Tests for FaaSLoad arrival processes."""

import numpy as np
import pytest

from repro.faas import FaaSPlatform, PlatformConfig
from repro.sim import Kernel
from repro.sim.latency import KB
from repro.storage import ObjectStore, SWIFT_PROFILE
from repro.workloads import FaaSLoad, TenantSpec
from repro.workloads.faasload import TenantRuntime


def make_injector():
    kernel = Kernel()
    store = ObjectStore(kernel, profile=SWIFT_PROFILE)
    store.rng = None
    store.create_bucket("inputs")
    store.create_bucket("outputs")
    platform = FaaSPlatform(kernel, store, PlatformConfig(node_memory_mb=8192))
    return FaaSLoad(kernel, platform, store, rng=np.random.default_rng(0))


def sample_intervals(spec, n=3000):
    injector = make_injector()
    runtime = TenantRuntime(spec=spec, rng=np.random.default_rng(1))
    return np.array([injector._next_interval(runtime) for _ in range(n)])


def test_periodic_intervals_are_constant():
    spec = TenantSpec(tenant_id="t", workload="wand_sepia",
                      arrival="periodic", mean_interval_s=30.0)
    intervals = sample_intervals(spec, n=50)
    assert np.all(intervals == 30.0)


def test_exponential_intervals_match_mean():
    spec = TenantSpec(tenant_id="t", workload="wand_sepia",
                      arrival="exponential", mean_interval_s=60.0)
    intervals = sample_intervals(spec)
    assert np.mean(intervals) == pytest.approx(60.0, rel=0.1)
    # Exponential: high coefficient of variation (~1).
    assert np.std(intervals) / np.mean(intervals) > 0.8


def test_bursty_intervals_are_bimodal_with_matching_mean():
    spec = TenantSpec(tenant_id="t", workload="wand_sepia",
                      arrival="bursty", mean_interval_s=60.0,
                      burst_size=5.0, burst_gap_s=0.5)
    intervals = sample_intervals(spec, n=20000)
    short = intervals[intervals <= 0.5]
    long = intervals[intervals > 0.5]
    # Most gaps are intra-burst, a minority are long idle periods.
    assert len(short) > 2 * len(long)
    assert np.mean(long) > 50.0
    # Long-run rate matches the requested mean within tolerance.
    assert np.mean(intervals) == pytest.approx(60.0, rel=0.2)


def test_bursty_injection_end_to_end():
    injector = make_injector()
    injector.prepare(
        [
            TenantSpec(
                tenant_id="t-burst",
                workload="wand_sepia",
                arrival="bursty",
                mean_interval_s=20.0,
                burst_size=4.0,
                burst_gap_s=0.2,
                input_sizes=[16 * KB],
                n_inputs=2,
            )
        ]
    )
    results = injector.run(duration_s=400.0)
    runtime = results["t-burst"]
    assert runtime.invocations_fired > 3
    assert all(r.status == "ok" for r in runtime.records)
    # Bursts reuse warm sandboxes: warm starts dominate cold starts.
    warm = sum(1 for r in runtime.records if not r.cold_start)
    assert warm >= len(runtime.records) / 2
