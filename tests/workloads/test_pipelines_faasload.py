"""Tests for pipeline apps and the FaaSLoad injector."""

import numpy as np
import pytest

from repro.faas import FaaSPlatform, PlatformConfig
from repro.sim import Kernel
from repro.sim.latency import KB, MB
from repro.storage import ObjectStore, SWIFT_PROFILE
from repro.workloads import FaaSLoad, MediaCorpus, TenantProfile, TenantSpec
from repro.workloads.faasload import booked_memory_for, estimate_max_footprint_mb
from repro.workloads.functions import get_function_model
from repro.workloads.pipelines import ALL_PIPELINES, get_pipeline_app


@pytest.fixture()
def env():
    kernel = Kernel()
    store = ObjectStore(kernel, profile=SWIFT_PROFILE)
    store.rng = None
    store.create_bucket("inputs")
    store.create_bucket("outputs")
    platform = FaaSPlatform(
        kernel, store, PlatformConfig(node_memory_mb=16384)
    )
    return kernel, store, platform


def run_app(kernel, store, platform, app_name, total_size):
    app = get_pipeline_app(app_name)
    app.register(platform, tenant="t0")
    corpus = MediaCorpus(np.random.default_rng(5))
    refs = kernel.run_until(
        kernel.process(app.prepare_inputs(store, corpus, total_size))
    )
    process = kernel.process(
        platform.invoke_pipeline(app.pipeline, tenant="t0", input_refs=refs)
    )
    return kernel.run_until(process)


@pytest.mark.parametrize("app_name", sorted(ALL_PIPELINES))
def test_all_pipelines_run_to_completion(env, app_name):
    kernel, store, platform = env
    record = run_app(kernel, store, platform, app_name, 8 * MB)
    assert record.status == "ok"
    assert record.duration > 0
    split = record.phase_split()
    assert split.total == pytest.approx(
        sum(s.wall_time for s in record.stage_records), rel=0.01
    )


def test_map_reduce_fans_out_per_chunk(env):
    kernel, store, platform = env
    record = run_app(kernel, store, platform, "map_reduce", 10 * MB)
    split_stage, map_stage, reduce_stage = record.stage_records
    assert len(split_stage.records) == 1
    assert len(map_stage.records) == 5  # 10 MB / 2 MB chunks
    assert len(reduce_stage.records) == 1


def test_this_fans_out_per_segment(env):
    kernel, store, platform = env
    record = run_app(kernel, store, platform, "THIS", 16 * MB)
    decode_stage = record.stage_records[0]
    assert len(decode_stage.records) == 4  # 16 MB / 4 MB segments


def test_imad_is_sequential(env):
    kernel, store, platform = env
    record = run_app(kernel, store, platform, "IMAD", 2 * MB)
    assert [len(s.records) for s in record.stage_records] == [1, 1, 1, 1]


def test_pipeline_writes_final_output(env):
    kernel, store, platform = env
    record = run_app(kernel, store, platform, "image_processing", 512 * KB)
    final_refs = record.stage_records[-1].records[0].output_refs
    assert len(final_refs) == 1
    bucket, name = final_refs[0].split("/", 1)
    assert store.contains(bucket, name)


# -- FaaSLoad ----------------------------------------------------------------


def test_booked_memory_profiles():
    assert booked_memory_for(TenantProfile.NAIVE, 300.0) == 2048.0
    assert booked_memory_for(TenantProfile.ADVANCED, 300.0) == 300.0
    assert booked_memory_for(TenantProfile.NORMAL, 300.0) == pytest.approx(510.0)
    assert booked_memory_for(TenantProfile.NORMAL, 1500.0) == 2048.0  # clamp


def test_estimate_max_footprint_is_an_upper_envelope():
    model = get_function_model("wand_sepia")
    corpus = MediaCorpus(np.random.default_rng(0))
    descriptors = [corpus.image(256 * KB) for _ in range(5)]
    rng = np.random.default_rng(1)
    estimate = estimate_max_footprint_mb(model, descriptors, rng, samples=100)
    typical = model.footprint_mb(descriptors[0], {"threshold": 0.8})
    assert estimate >= typical * 0.95


def test_faasload_injects_and_collects(env):
    kernel, store, platform = env
    load = FaaSLoad(kernel, platform, store, rng=np.random.default_rng(4))
    load.prepare(
        [
            TenantSpec(
                tenant_id="tenant-a",
                workload="wand_sepia",
                profile=TenantProfile.NORMAL,
                mean_interval_s=10.0,
                input_sizes=[16 * KB, 64 * KB],
                n_inputs=4,
            ),
            TenantSpec(
                tenant_id="tenant-b",
                workload="wand_edge",
                profile=TenantProfile.NAIVE,
                mean_interval_s=10.0,
                arrival="periodic",
                n_inputs=4,
            ),
        ]
    )
    results = load.run(duration_s=120.0)
    a, b = results["tenant-a"], results["tenant-b"]
    assert a.invocations_fired > 0
    assert b.invocations_fired == 12  # periodic every 10 s in (0, 120]
    assert len(a.records) == a.invocations_fired
    assert all(r.status == "ok" for r in a.records + b.records)
    assert a.booked_mb < 2048.0
    assert b.booked_mb == 2048.0


def test_faasload_pipeline_tenant(env):
    kernel, store, platform = env
    load = FaaSLoad(kernel, platform, store, rng=np.random.default_rng(4))
    load.prepare(
        [
            TenantSpec(
                tenant_id="tenant-p",
                workload="map_reduce",
                mean_interval_s=20.0,
                arrival="periodic",
                input_sizes=[4 * MB],
            )
        ]
    )
    results = load.run(duration_s=100.0)
    runtime = results["tenant-p"]
    assert runtime.invocations_fired == 5  # every 20 s in (0, 100]
    assert len(runtime.pipeline_records) == 5
    assert all(p.status == "ok" for p in runtime.pipeline_records)
