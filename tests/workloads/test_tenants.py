"""Tests for the streaming multi-tenant workload layer.

Covers the CI-gated generator properties: Zipf sampling is
deterministic under a fixed seed, the diurnal envelope's analytic
integral matches a numeric one, and a 100k-invocation merged stream
never holds more than O(tenants) pending events.
"""

import numpy as np
import pytest

from repro.workloads.tenants import (
    DiurnalEnvelope,
    MergedArrivalStream,
    TenantWorkloadConfig,
    ZipfSampler,
    synthesize_tenants,
)


# -- Zipf sampler ---------------------------------------------------------


def test_zipf_pmf_sums_to_one_and_decreases():
    sampler = ZipfSampler(19, 1.1)
    pmf = sampler.pmf()
    assert pmf.shape == (19,)
    assert pmf.sum() == pytest.approx(1.0)
    assert all(pmf[i] > pmf[i + 1] for i in range(18))


def test_zipf_sampler_deterministic_under_fixed_seed():
    sampler = ZipfSampler(19, 1.1)
    a = sampler.sample(np.random.default_rng(42), size=5000)
    b = sampler.sample(np.random.default_rng(42), size=5000)
    assert np.array_equal(a, b)
    c = sampler.sample(np.random.default_rng(43), size=5000)
    assert not np.array_equal(a, c)


def test_zipf_skew_concentrates_mass_on_head():
    rng = np.random.default_rng(0)
    flat = ZipfSampler(19, 0.5).sample(rng, size=20_000)
    rng = np.random.default_rng(0)
    steep = ZipfSampler(19, 1.8).sample(rng, size=20_000)
    assert (steep == 0).mean() > (flat == 0).mean()
    # Ranks stay in bounds.
    assert steep.min() >= 0 and steep.max() < 19


def test_zipf_rejects_empty_universe():
    with pytest.raises(ValueError):
        ZipfSampler(0, 1.1)


# -- diurnal envelope -----------------------------------------------------


def test_envelope_rate_bounds_and_peak():
    env = DiurnalEnvelope(period_s=86_400.0, amplitude=0.6)
    times = np.linspace(0.0, 86_400.0, 1001)
    rates = [env.rate(t) for t in times]
    assert min(rates) >= 0.4 - 1e-9
    assert max(rates) <= env.peak + 1e-9
    assert env.peak == pytest.approx(1.6)


def test_envelope_full_period_integrates_to_period():
    env = DiurnalEnvelope(period_s=3600.0, amplitude=0.5, phase_s=123.0)
    assert env.integrate(0.0, 3600.0) == pytest.approx(3600.0)


def test_envelope_analytic_integral_matches_numeric():
    env = DiurnalEnvelope(period_s=3600.0, amplitude=0.6, phase_s=200.0)
    t0, t1 = 450.0, 2750.0
    grid = np.linspace(t0, t1, 20_001)
    rates = np.array([env.rate(t) for t in grid])
    # Trapezoid rule by hand: np.trapz was removed in numpy 2.
    numeric = float(((rates[:-1] + rates[1:]) / 2.0 * np.diff(grid)).sum())
    assert env.integrate(t0, t1) == pytest.approx(numeric, rel=1e-6)


def test_envelope_validates_amplitude():
    with pytest.raises(ValueError):
        DiurnalEnvelope(amplitude=1.0)
    with pytest.raises(ValueError):
        DiurnalEnvelope(period_s=0.0)


# -- tenant synthesis and arrivals ----------------------------------------


def _small_config(**overrides):
    defaults = dict(n_tenants=50, mean_interval_s=10.0, seed=7)
    defaults.update(overrides)
    return TenantWorkloadConfig(**defaults)


def test_synthesize_tenants_is_deterministic():
    config = _small_config()
    a = synthesize_tenants(config)
    b = synthesize_tenants(config)
    assert [t.app for t in a] == [t.app for t in b]
    assert [t.rate_hz for t in a] == [t.rate_hz for t in b]
    assert [t.tenant_id for t in a] == [t.tenant_id for t in b]
    # Population-mean inter-arrival matches the config exactly.
    mean_rate = np.mean([t.rate_hz for t in a])
    assert 1.0 / mean_rate == pytest.approx(config.mean_interval_s)


def test_arrival_stream_deterministic_and_ordered():
    config = _small_config()
    first = list(synthesize_tenants(config)[0].arrivals(2000.0))
    again = list(synthesize_tenants(config)[0].arrivals(2000.0))
    assert first == again
    assert all(b > a for a, b in zip(first, first[1:]))
    assert all(0.0 <= t < 2000.0 for t in first)


def test_arrival_stream_respects_start():
    config = _small_config()
    tenant = synthesize_tenants(config)[0]
    times = list(tenant.arrivals(900.0, start=300.0))
    assert times, "a 10s-mean tenant should arrive within 600s"
    assert all(300.0 <= t < 900.0 for t in times)


def test_merged_stream_is_globally_ordered():
    config = _small_config()
    tenants = synthesize_tenants(config)
    merged = list(MergedArrivalStream(tenants, 300.0))
    times = [when for when, _ in merged]
    assert times == sorted(times)
    # Every yielded tenant is one of ours.
    ids = {t.tenant_id for t in tenants}
    assert all(tenant.tenant_id in ids for _, tenant in merged)


def test_100k_invocation_stream_stays_memory_flat():
    """The merged stream must hold O(tenants) pending events, never

    O(invocations): 200 tenants streamed for 100k arrivals keep the
    pending count bounded by the tenant count throughout.
    """
    config = _small_config(n_tenants=200, mean_interval_s=1.0)
    tenants = synthesize_tenants(config)
    stream = MergedArrivalStream(tenants, deadline=1e9)
    assert stream.pending_count <= config.n_tenants

    produced = 0
    max_pending = 0
    last = -1.0
    for when, _tenant in stream:
        assert when >= last
        last = when
        max_pending = max(max_pending, stream.pending_count)
        produced += 1
        if produced >= 100_000:
            break
    assert produced == 100_000
    assert max_pending <= config.n_tenants
