"""Tests for the media corpus and function models."""

import numpy as np
import pytest

from repro.sim.latency import KB, MB
from repro.workloads import MediaCorpus
from repro.workloads.functions import (
    ALL_FUNCTIONS,
    EVALUATION_FUNCTIONS,
    FIGURE7_FUNCTIONS,
    get_function_model,
)


@pytest.fixture()
def corpus():
    return MediaCorpus(np.random.default_rng(7))


def test_corpus_respects_target_size(corpus):
    image = corpus.image(64 * KB)
    assert image.size == 64 * KB
    audio = corpus.audio(1 * MB)
    assert audio.size == 1 * MB


def test_corpus_is_reproducible():
    a = MediaCorpus(np.random.default_rng(3)).image(100 * KB)
    b = MediaCorpus(np.random.default_rng(3)).image(100 * KB)
    assert (a.width, a.height, a.format) == (b.width, b.height, b.format)


def test_image_features_contain_dimensions(corpus):
    image = corpus.image(64 * KB)
    features = image.features()
    assert features["width"] == image.width
    assert features["in_size"] == image.size
    assert isinstance(features["format"], str)


def test_same_byte_size_different_memory(corpus):
    """Figure 2 (top): byte size alone does not determine memory."""
    model = get_function_model("wand_blur")
    footprints = []
    for _ in range(30):
        image = corpus.image(2 * MB)
        footprints.append(model.footprint_mb(image, {"sigma": 2.0}))
    assert max(footprints) - min(footprints) > 20.0  # wide spread at fixed size


def test_sigma_alone_does_not_determine_memory(corpus):
    """Figure 2 (bottom): the function argument alone is not enough."""
    model = get_function_model("wand_blur")
    footprints = [
        model.footprint_mb(corpus.image(), {"sigma": 3.0}) for _ in range(30)
    ]
    assert max(footprints) - min(footprints) > 20.0


def test_footprint_is_deterministic_without_rng(corpus):
    image = corpus.image(256 * KB)
    model = get_function_model("wand_sepia")
    assert model.footprint_mb(image, {"threshold": 0.8}) == model.footprint_mb(
        image, {"threshold": 0.8}
    )


def test_footprint_noise_is_bounded(corpus):
    image = corpus.image(256 * KB)
    model = get_function_model("wand_sepia")
    clean = model.footprint_mb(image, {"threshold": 0.8})
    rng = np.random.default_rng(0)
    noisy = [
        model.footprint_mb(image, {"threshold": 0.8}, rng) for _ in range(100)
    ]
    assert np.std(noisy) < 8.0
    assert abs(np.mean(noisy) - clean) < 4.0


def test_wand_sepia_footprint_calibration(corpus):
    """§7.2.1: inputs of 1 kB..3072 kB give ~84..152 MB footprints."""
    model = get_function_model("wand_sepia")
    small = model.footprint_mb(corpus.image(1 * KB), {"threshold": 0.8})
    bigs = [
        model.footprint_mb(corpus.image(3072 * KB), {"threshold": 0.8})
        for _ in range(10)
    ]
    assert 70 <= small <= 100
    assert 100 <= max(bigs) <= 260


def test_transform_time_grows_with_input(corpus):
    for name in FIGURE7_FUNCTIONS:
        model = get_function_model(name)
        args = model.sample_args(np.random.default_rng(0))
        small = model.transform_time(corpus.image(4 * KB), args)
        large = model.transform_time(corpus.image(2 * MB), args)
        assert large > small, name


def test_nineteen_evaluation_functions():
    assert len(EVALUATION_FUNCTIONS) == 19
    for name in EVALUATION_FUNCTIONS:
        assert name in ALL_FUNCTIONS


def test_all_models_produce_valid_outputs(corpus):
    rng = np.random.default_rng(1)
    for name, model in ALL_FUNCTIONS.items():
        media = corpus.generate(model.input_kind)
        args = model.sample_args(rng)
        footprint = model.footprint_mb(media, args, rng)
        duration = model.transform_time(media, args)
        out_size = model.output_size(media, args)
        assert footprint > 0, name
        assert duration > 0, name
        assert out_size > 0, name


def test_sample_args_cover_declared_names():
    rng = np.random.default_rng(2)
    for name, model in ALL_FUNCTIONS.items():
        args = model.sample_args(rng)
        assert set(args) == set(model.arg_names), name


def test_unknown_function_raises():
    with pytest.raises(KeyError):
        get_function_model("wand_nonexistent")


def test_unknown_media_kind_raises(corpus):
    with pytest.raises(ValueError):
        corpus.generate("hologram")


def test_nominal_argument_affects_memory(corpus):
    """img_format_convert: target format (nominal) drives memory."""
    model = get_function_model("img_format_convert")
    image = corpus.image(512 * KB)
    jpeg = model.footprint_mb(image, {"target_format": "jpeg"})
    bmp = model.footprint_mb(image, {"target_format": "bmp"})
    assert bmp > jpeg
