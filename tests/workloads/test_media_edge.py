"""Edge tests for media descriptors and corpus batching."""

import numpy as np
import pytest

from repro.sim.latency import KB, MB
from repro.workloads import MediaCorpus


@pytest.fixture()
def corpus():
    return MediaCorpus(np.random.default_rng(3))


def test_batch_cycles_through_sizes(corpus):
    sizes = [16 * KB, 64 * KB]
    batch = corpus.batch("image", 5, sizes=sizes)
    assert [m.size for m in batch] == [
        16 * KB, 64 * KB, 16 * KB, 64 * KB, 16 * KB,
    ]


def test_batch_without_sizes(corpus):
    batch = corpus.batch("audio", 3)
    assert len(batch) == 3
    assert all(m.kind == "audio" for m in batch)


def test_video_features_include_derived_fields(corpus):
    video = corpus.video(8 * MB)
    features = video.features()
    assert features["frame_pixels"] == video.width * video.height
    assert features["frames"] == pytest.approx(video.frames)
    assert isinstance(features["codec"], str)


def test_audio_features_include_sample_count(corpus):
    audio = corpus.audio(1 * MB)
    features = audio.features()
    expected = audio.duration_s * audio.sample_rate * audio.channels
    assert features["samples"] == pytest.approx(expected)


def test_text_descriptor_word_counts(corpus):
    text = corpus.text(1 * MB)
    assert text.n_words > 100
    assert text.n_lines >= 1
    assert text.features()["n_words"] == float(text.n_words)


def test_tiny_image_has_minimum_dimensions(corpus):
    image = corpus.image(64)  # 64 bytes
    assert image.width >= 8
    assert image.height >= 8
    assert image.pixels >= 64


def test_decoded_sizes_positive_for_all_kinds(corpus):
    assert corpus.image(64 * KB).decoded_mb > 0
    assert corpus.audio(64 * KB).decoded_mb > 0
    assert corpus.video(1 * MB).frame_mb > 0
