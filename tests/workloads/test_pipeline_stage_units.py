"""Unit tests for individual pipeline stage functions."""

import numpy as np
import pytest

from repro.sim.latency import KB, MB
from repro.workloads.media import MediaCorpus, TextDescriptor
from repro.workloads.pipelines import (
    _CHUNK_BYTES,
    _SEGMENT_BYTES,
    ALL_PIPELINES,
    ImadClassify,
    MRMap,
    MRReduce,
    MRSplit,
    ThisAnalyze,
    ThisDecode,
)


@pytest.fixture()
def corpus():
    return MediaCorpus(np.random.default_rng(9))


def test_mr_split_chunk_count_and_sizes(corpus):
    doc = corpus.text(10 * MB)
    outs = MRSplit().outputs([doc], {}, request_id=1)
    assert len(outs) == 10 * MB // _CHUNK_BYTES
    total = sum(size for _n, _p, size in outs)
    assert total == doc.size
    for _name, chunk, size in outs:
        assert isinstance(chunk, TextDescriptor)
        assert size <= _CHUNK_BYTES


def test_mr_split_small_doc_single_chunk(corpus):
    doc = corpus.text(100 * KB)
    outs = MRSplit().outputs([doc], {}, request_id=1)
    assert len(outs) == 1
    assert outs[0][2] == doc.size


def test_mr_map_output_is_sublinear(corpus):
    small = corpus.text(256 * KB)
    large = corpus.text(2 * MB)
    out_small = MRMap().outputs([small], {}, 1)[0][2]
    out_large = MRMap().outputs([large], {}, 2)[0][2]
    assert out_large < large.size / 10  # word counts compress heavily
    assert out_large >= out_small  # but still grow with input


def test_mr_reduce_footprint_scales_with_fan_in(corpus):
    chunks = [corpus.text(256 * KB) for _ in range(4)]
    few = MRReduce().footprint_mb(chunks[:1], {})
    many = MRReduce().footprint_mb(chunks, {})
    assert many > few


def test_this_decode_output_capped_below_cacheable_limit(corpus):
    segment = corpus.video(_SEGMENT_BYTES)
    outs = ThisDecode().outputs([segment], {}, 1)
    assert len(outs) == 1
    assert outs[0][2] <= 8 * MB  # always cacheable (< 10 MB)


def test_this_analyze_footprint_includes_model(corpus):
    frames = ThisDecode().outputs([corpus.video(_SEGMENT_BYTES)], {}, 1)[0][1]
    footprint = ThisAnalyze().footprint_mb([frames], {})
    assert footprint > ThisAnalyze.runtime_base_mb  # detector resident


def test_imad_classify_dominated_by_model(corpus):
    findings = TextDescriptor(n_words=8000, n_lines=600, size=96 * KB)
    footprint = ImadClassify().footprint_mb([findings], {})
    assert 200.0 < footprint < 300.0


def test_all_stage_functions_produce_positive_quantities(corpus):
    rng = np.random.default_rng(0)
    for app in ALL_PIPELINES.values():
        # Chain a plausible payload through every stage.
        if app.name == "map_reduce":
            payloads = [corpus.text(4 * MB)]
        elif app.name == "THIS":
            payloads = [corpus.video(_SEGMENT_BYTES)]
        else:
            payloads = [corpus.image(1 * MB)]
        for stage in app.stage_functions:
            footprint = stage.footprint_mb(payloads, {}, rng)
            duration = stage.duration_s(payloads, {})
            outs = stage.outputs(payloads, {}, request_id=7)
            assert footprint > 0, stage.name
            assert duration > 0, stage.name
            assert outs and all(size > 0 for _n, _p, size in outs), stage.name
            payloads = [outs[0][1]]


def test_stage_output_names_unique_per_request(corpus):
    doc = corpus.text(6 * MB)
    split = MRSplit()
    names_a = {n for n, _p, _s in split.outputs([doc], {}, request_id=1)}
    names_b = {n for n, _p, _s in split.outputs([doc], {}, request_id=2)}
    assert not names_a & names_b


def test_pipeline_registration_installs_all_stages(corpus):
    from repro.faas import FaaSPlatform, PlatformConfig
    from repro.sim import Kernel
    from repro.storage import ObjectStore

    kernel = Kernel()
    store = ObjectStore(kernel)
    platform = FaaSPlatform(kernel, store, PlatformConfig())
    app = ALL_PIPELINES["IMAD"]
    app.register(platform, tenant="tx")
    for stage in app.stage_functions:
        assert f"tx/{stage.name}" in platform.registry
