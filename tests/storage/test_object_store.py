"""Unit tests for the RSDS object store."""

import pytest

from repro.sim import Kernel
from repro.storage import (
    BucketExists,
    NoSuchBucket,
    NoSuchObject,
    ObjectStore,
    REDIS_PROFILE,
    SWIFT_PROFILE,
)


@pytest.fixture()
def env():
    kernel = Kernel()
    store = ObjectStore(kernel, profile=SWIFT_PROFILE)
    store.create_bucket("b")
    return kernel, store


def run(kernel, gen):
    return kernel.run_process(gen)


def test_put_then_get_roundtrip(env):
    kernel, store = env

    def scenario():
        yield from store.put("b", "o", payload={"w": 640}, size=1000)
        obj = yield from store.get("b", "o")
        return obj

    obj = run(kernel, scenario())
    assert obj.payload == {"w": 640}
    assert obj.meta.size == 1000
    assert obj.meta.version == 1
    assert obj.meta.rsds_version == 1
    assert not obj.meta.is_shadow


def test_get_missing_object_raises(env):
    kernel, store = env

    def scenario():
        yield from store.get("b", "missing")

    with pytest.raises(NoSuchObject):
        run(kernel, scenario())


def test_missing_bucket_raises(env):
    kernel, store = env

    def scenario():
        yield from store.put("nope", "o", payload=None, size=1)

    with pytest.raises(NoSuchBucket):
        run(kernel, scenario())


def test_duplicate_bucket_raises(env):
    _, store = env
    with pytest.raises(BucketExists):
        store.create_bucket("b")


def test_ensure_bucket_is_idempotent(env):
    _, store = env
    store.ensure_bucket("b")
    store.ensure_bucket("c")
    assert store.has_bucket("c")


def test_overwrite_bumps_version(env):
    kernel, store = env

    def scenario():
        yield from store.put("b", "o", payload="v1", size=10)
        yield from store.put("b", "o", payload="v2", size=20)
        obj = yield from store.get("b", "o")
        return obj

    obj = run(kernel, scenario())
    assert obj.meta.version == 2
    assert obj.payload == "v2"
    assert obj.meta.size == 20


def test_shadow_put_has_no_payload_and_lags_rsds_version(env):
    kernel, store = env

    def scenario():
        yield from store.put("b", "o", payload=None, size=5000, shadow=True)
        obj = yield from store.get("b", "o")
        return obj

    obj = run(kernel, scenario())
    assert obj.payload is None
    assert obj.meta.version == 1
    assert obj.meta.rsds_version == 0
    assert obj.meta.is_shadow
    assert store.stats.shadow_puts == 1


def test_shadow_put_is_fast_regardless_of_size(env):
    kernel, store = env
    store.rng = None  # deterministic latency

    def scenario():
        start = kernel.now
        yield from store.put("b", "big", None, size=10 * 1024 * 1024, shadow=True)
        return kernel.now - start

    duration = run(kernel, scenario())
    assert duration == pytest.approx(SWIFT_PROFILE.shadow_write.base_s, rel=0.01)
    assert duration < SWIFT_PROFILE.write.base_s / 2


def test_persist_payload_fills_shadow(env):
    kernel, store = env

    def scenario():
        meta = yield from store.put("b", "o", None, size=100, shadow=True)
        ok = yield from store.persist_payload("b", "o", "data", meta.version)
        obj = yield from store.get("b", "o")
        return ok, obj

    ok, obj = run(kernel, scenario())
    assert ok
    assert obj.payload == "data"
    assert not obj.meta.is_shadow


def test_persist_payload_rejects_stale_version(env):
    kernel, store = env

    def scenario():
        m1 = yield from store.put("b", "o", None, size=100, shadow=True)
        yield from store.put("b", "o", None, size=100, shadow=True)  # v2
        ok = yield from store.persist_payload("b", "o", "old", m1.version)
        obj = yield from store.get("b", "o")
        return ok, obj

    ok, obj = run(kernel, scenario())
    assert not ok
    assert obj.payload is None
    assert obj.meta.is_shadow


def test_delete_removes_object(env):
    kernel, store = env

    def scenario():
        yield from store.put("b", "o", "x", size=1)
        yield from store.delete("b", "o")
        return store.contains("b", "o")

    assert run(kernel, scenario()) is False


def test_delete_missing_raises(env):
    kernel, store = env

    def scenario():
        yield from store.delete("b", "ghost")

    with pytest.raises(NoSuchObject):
        run(kernel, scenario())


def test_stat_returns_meta_copy(env):
    kernel, store = env

    def scenario():
        yield from store.put("b", "o", "x", size=42, user_meta={"k": 1})
        meta = yield from store.stat("b", "o")
        meta.user_meta["k"] = 999  # must not leak into the store
        meta2 = yield from store.stat("b", "o")
        return meta2

    meta2 = run(kernel, scenario())
    assert meta2.size == 42
    assert meta2.user_meta == {"k": 1}


def test_list_objects_sorted(env):
    kernel, store = env

    def scenario():
        for name in ["zeta", "alpha", "mid"]:
            yield from store.put("b", name, None, size=1)
        names = yield from store.list_objects("b")
        return names

    assert run(kernel, scenario()) == ["alpha", "mid", "zeta"]


def test_latency_scales_with_size(env):
    kernel, store = env
    store.rng = None

    def scenario():
        t0 = kernel.now
        yield from store.put("b", "small", None, size=1024)
        t1 = kernel.now
        yield from store.put("b", "large", None, size=50 * 1024 * 1024)
        t2 = kernel.now
        return t1 - t0, t2 - t1

    small, large = run(kernel, scenario())
    assert large > small * 2


def test_redis_profile_is_much_faster_than_swift():
    kernel = Kernel()
    swift = ObjectStore(kernel, profile=SWIFT_PROFILE)
    redis = ObjectStore(kernel, profile=REDIS_PROFILE)
    swift.rng = redis.rng = None
    for store in (swift, redis):
        store.create_bucket("b")

    def timed(store):
        t0 = kernel.now
        yield from store.put("b", "o", None, size=16 * 1024)
        obj = yield from store.get("b", "o")
        assert obj is not None
        return kernel.now - t0

    swift_time = kernel.run_process(timed(swift))
    redis_time = kernel.run_process(timed(redis))
    assert swift_time > 20 * redis_time


def test_read_hook_runs_on_external_get_only(env):
    kernel, store = env
    calls = []

    def hook(op, meta):
        calls.append((op, meta.name))
        yield kernel.timeout(0.5)

    store.register_read_hook(hook)

    def scenario():
        yield from store.put("b", "o", "x", size=1)
        yield from store.get("b", "o", internal=True)
        assert calls == []
        t0 = kernel.now
        yield from store.get("b", "o")
        return kernel.now - t0

    elapsed = run(kernel, scenario())
    assert calls == [("read", "o")]
    assert elapsed >= 0.5  # the hook blocked the GET


def test_write_hook_runs_on_external_overwrite_and_delete(env):
    kernel, store = env
    calls = []

    def hook(op, meta):
        calls.append(op)
        return
        yield  # pragma: no cover - makes this a generator function

    store.register_write_hook(hook)

    def scenario():
        yield from store.put("b", "o", "x", size=1)  # create: no hook
        yield from store.put("b", "o", "y", size=1)  # overwrite: hook
        yield from store.put("b", "o", "z", size=1, internal=True)  # no hook
        yield from store.delete("b", "o")  # hook

    run(kernel, scenario())
    assert calls == ["write", "delete"]


def test_stats_accounting(env):
    kernel, store = env

    def scenario():
        yield from store.put("b", "o", "x", size=100)
        yield from store.get("b", "o")
        yield from store.get("b", "o")
        yield from store.stat("b", "o")
        yield from store.delete("b", "o")

    run(kernel, scenario())
    snap = store.stats.snapshot()
    assert snap["puts"] == 1
    assert snap["gets"] == 2
    assert snap["bytes_read"] == 200
    assert snap["bytes_written"] == 100
    assert snap["deletes"] == 1
    assert snap["stats_ops"] == 1


def test_concurrency_limit_queues_requests():
    kernel = Kernel()
    store = ObjectStore(kernel, profile=SWIFT_PROFILE, concurrency=1)
    store.rng = None
    store.create_bucket("b")
    done = []

    def writer(name):
        yield from store.put("b", name, None, size=0)
        done.append(kernel.now)

    kernel.process(writer("a"))
    kernel.process(writer("b"))
    kernel.run()
    assert done[1] == pytest.approx(2 * done[0], rel=0.01)


def test_object_count(env):
    kernel, store = env

    def scenario():
        yield from store.put("b", "x", None, size=1)
        yield from store.put("b", "y", None, size=1)

    run(kernel, scenario())
    assert store.object_count("b") == 2
    assert store.object_count() == 2
