"""Property tests for the shadow-object versioning protocol (§6.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Kernel
from repro.storage import ObjectStore, SWIFT_PROFILE


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.sampled_from(["shadow", "persist_latest", "persist_stale", "put"]),
        min_size=1,
        max_size=25,
    )
)
def test_rsds_version_never_exceeds_version(ops):
    """Invariant: rsds_version <= version, and a successful persist of
    version v implies no older payload can overwrite it later."""
    kernel = Kernel()
    store = ObjectStore(kernel, profile=SWIFT_PROFILE)
    store.rng = None
    store.create_bucket("b")
    shadow_versions = []

    def scenario():
        for op in ops:
            if op == "shadow":
                meta = yield from store.put(
                    "b", "o", None, 100, shadow=True, internal=True
                )
                shadow_versions.append(meta.version)
            elif op == "put":
                yield from store.put("b", "o", "direct", 100, internal=True)
            elif op == "persist_latest" and shadow_versions:
                yield from store.persist_payload(
                    "b", "o", f"v{shadow_versions[-1]}", shadow_versions[-1]
                )
            elif op == "persist_stale" and len(shadow_versions) >= 2:
                yield from store.persist_payload(
                    "b", "o", f"v{shadow_versions[0]}", shadow_versions[0]
                )

    kernel.run_process(scenario())
    if store.contains("b", "o"):
        meta = store.peek_meta("b", "o")
        assert meta.rsds_version <= meta.version
        # Versions only move forward.
        assert meta.version == len(
            [op for op in ops if op in ("shadow", "put")]
        ) or meta.version >= 1


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=12))
def test_out_of_order_persists_converge_to_latest(n_versions):
    """Persistors completing in any order leave the newest payload."""
    kernel = Kernel()
    store = ObjectStore(kernel, profile=SWIFT_PROFILE)
    store.rng = None
    store.create_bucket("b")

    def scenario():
        versions = []
        for _ in range(n_versions):
            meta = yield from store.put(
                "b", "o", None, 100, shadow=True, internal=True
            )
            versions.append(meta.version)
        # Apply persists in reverse order: the stale ones must lose.
        for version in reversed(versions):
            yield from store.persist_payload("b", "o", f"v{version}", version)

    kernel.run_process(scenario())
    meta = store.peek_meta("b", "o")
    assert meta.rsds_version == n_versions
    obj = store._object("b", "o")
    assert obj.payload == f"v{n_versions}"


def test_external_put_after_shadow_clears_staleness():
    kernel = Kernel()
    store = ObjectStore(kernel, profile=SWIFT_PROFILE)
    store.rng = None
    store.create_bucket("b")

    def scenario():
        yield from store.put("b", "o", None, 100, shadow=True, internal=True)
        yield from store.put("b", "o", "external", 100)

    kernel.run_process(scenario())
    meta = store.peek_meta("b", "o")
    assert not meta.is_shadow
    assert meta.version == 2
    assert meta.rsds_version == 2
