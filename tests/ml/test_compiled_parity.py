"""Parity gate for the compiled inference path (the PR's tentpole).

The compiled tree — flattened arrays plus generated code — must agree
with the recursive ``_Node`` walk on *every* row, including the messy
ones: missing features, non-numeric values at numeric nodes, unseen
nominal values, NaN/inf, numeric strings and bools.  These tests are
property-style: many random weighted datasets with mixed feature
types, full-row-set comparison on both in-distribution and adversarial
rows.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.ml.compiled import MAX_CODEGEN_DEPTH, CompiledTree
from repro.ml.dataset import Dataset
from repro.ml.tree import J48Classifier

NOMINALS = ["h264", "vp9", "av1", True, False, "mjpeg"]


def _random_dataset(rng: np.random.Generator, n_rows: int) -> Dataset:
    """Mixed numeric/nominal rows with integer-valued weights (exact in
    float arithmetic, so tie handling cannot depend on summation
    order)."""
    rows = []
    labels = []
    weights = []
    for _ in range(n_rows):
        size = float(rng.integers(0, 200))
        rows.append(
            {
                "size": size,
                "ratio": float(rng.integers(0, 8)),
                "codec": NOMINALS[int(rng.integers(0, len(NOMINALS)))],
            }
        )
        labels.append(int(size // 40 + rng.integers(0, 2)))
        weights.append(float(rng.integers(1, 4)))
    return Dataset(rows, labels, weights=weights)


def _adversarial_rows(rng: np.random.Generator):
    """Rows the training distribution never produced."""
    specials = [
        None,
        float("nan"),
        float("inf"),
        -float("inf"),
        "12.5",
        "garbage",
        True,
        "unseen-value",
        0,
        -1.0,
    ]
    rows = [{}, {"size": None}, {"codec": "never-seen"}]
    for _ in range(40):
        row = {}
        for feature in ("size", "ratio", "codec"):
            if rng.random() < 0.7:
                row[feature] = specials[int(rng.integers(0, len(specials)))]
        rows.append(row)
    return rows


def _outcome(fn, row):
    try:
        return ("ok", fn(row))
    except TypeError:
        return ("TypeError", None)


@pytest.mark.parametrize("seed", range(8))
def test_compiled_matches_recursive_property(seed):
    rng = np.random.default_rng(seed)
    dataset = _random_dataset(rng, 300)
    clf = J48Classifier().fit(dataset)

    assert clf.compiled is not None
    # Structure metrics come from the same flattening.
    assert clf.compiled.n_nodes == clf.n_nodes
    assert clf.compiled.depth == clf.depth

    got = clf.predict(dataset.rows)
    want = clf.predict_recursive(dataset.rows)
    assert list(got) == list(want)

    for row in _adversarial_rows(rng):
        assert _outcome(clf.predict_one, row) == _outcome(
            clf.predict_one_recursive, row
        ), row


def test_generated_and_array_walk_agree():
    """The exec-generated function and the positional array walk are
    two implementations of the same tree; both must match."""
    rng = np.random.default_rng(42)
    dataset = _random_dataset(rng, 300)
    clf = J48Classifier().fit(dataset)
    compiled = clf.compiled
    assert compiled._fn is not None and compiled._batch is not None
    for row in list(dataset.rows[:50]) + _adversarial_rows(rng):
        walk = _outcome(
            lambda r: compiled.predict_encoded(compiled.encode(r)), row
        )
        gen = _outcome(compiled._fn, row)
        assert walk == gen, row


def test_unhashable_nominal_raises_in_both_paths():
    rows = [{"codec": c} for c in ("a", "b") * 20]
    labels = [0 if r["codec"] == "a" else 1 for r in rows]
    clf = J48Classifier().fit(Dataset(rows, labels))
    # The fitted tree's root tests the nominal feature, so an
    # unhashable value reaches the dispatch table in both paths.
    assert clf.compiled.node_threshold[0] is None
    for fn in (clf.predict_one, clf.predict_one_recursive):
        with pytest.raises(TypeError):
            fn({"codec": []})


def test_pickle_round_trip_regenerates_code():
    rng = np.random.default_rng(3)
    dataset = _random_dataset(rng, 200)
    clf = J48Classifier().fit(dataset)
    clone = pickle.loads(pickle.dumps(clf))
    assert clone.compiled._fn is not None
    assert list(clone.predict(dataset.rows)) == list(
        clf.predict_recursive(dataset.rows)
    )
    for row in _adversarial_rows(rng):
        assert _outcome(clone.predict_one, row) == _outcome(
            clf.predict_one_recursive, row
        )


def test_deep_tree_falls_back_to_array_walk():
    """Past the codegen depth cap the arrays carry inference alone."""

    class _Leaf:
        is_leaf = True
        prediction = 0
        threshold = None

    def _chain(depth):
        node = _Leaf()
        for d in range(depth):
            parent = type(
                "N",
                (),
                {
                    "is_leaf": False,
                    "feature": "x",
                    "threshold": float(d),
                    "prediction": d % 3,
                    "left": _Leaf(),
                    "right": node,
                },
            )()
            node = parent
        return node

    deep = CompiledTree(_chain(MAX_CODEGEN_DEPTH + 5), {"x": "numeric"})
    assert deep._fn is None and deep._batch is None
    shallow = CompiledTree(_chain(5), {"x": "numeric"})
    assert shallow._fn is not None
    # Deep tree still predicts through the walk.
    assert deep.predict_one({"x": -1.0}) == 0
    assert deep.predict([{"x": -1.0}, {}]).shape == (2,)


def test_nonfinite_threshold_disables_codegen():
    class _Leaf:
        is_leaf = True
        prediction = 1
        threshold = None

    root = type(
        "N",
        (),
        {
            "is_leaf": False,
            "feature": "x",
            "threshold": float("inf"),
            "prediction": 0,
            "left": _Leaf(),
            "right": _Leaf(),
        },
    )()
    tree = CompiledTree(root, {"x": "numeric"})
    assert tree._fn is None
    assert tree.predict_one({"x": 1.0}) == 1
