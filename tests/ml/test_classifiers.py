"""Tests for the four tree classifiers."""

import numpy as np
import pytest

from repro.ml import (
    accuracy,
    Dataset,
    HoeffdingTreeClassifier,
    J48Classifier,
    RandomForestClassifier,
    RandomTreeClassifier,
)

ALL_CLASSIFIERS = [
    lambda: J48Classifier(),
    lambda: RandomForestClassifier(n_trees=10, rng=np.random.default_rng(0)),
    lambda: RandomTreeClassifier(rng=np.random.default_rng(0)),
    lambda: HoeffdingTreeClassifier(grace_period=25),
]
IDS = ["j48", "random_forest", "random_tree", "hoeffding"]


def threshold_dataset(n=400, seed=0):
    """Label = 1 iff x > 0.5 (pure numeric threshold concept)."""
    rng = np.random.default_rng(seed)
    xs = rng.random(n)
    rows = [{"x": float(x)} for x in xs]
    labels = [int(x > 0.5) for x in xs]
    return Dataset(rows, labels)


def mixed_dataset(n=600, seed=1):
    """Interaction of a nominal and a numeric feature."""
    rng = np.random.default_rng(seed)
    rows, labels = [], []
    for _ in range(n):
        kind = rng.choice(["image", "audio", "video"])
        size = float(rng.uniform(0, 100))
        if kind == "image":
            label = int(size > 30)
        elif kind == "audio":
            label = int(size > 70)
        else:
            label = 2
        rows.append({"kind": str(kind), "size": size})
        labels.append(label)
    return Dataset(rows, labels)


@pytest.mark.parametrize("make", ALL_CLASSIFIERS, ids=IDS)
def test_learns_numeric_threshold(make):
    train = threshold_dataset(seed=0)
    test = threshold_dataset(seed=42)
    clf = make().fit(train)
    assert accuracy(test.labels, clf.predict(test.rows)) > 0.95


@pytest.mark.parametrize("make", ALL_CLASSIFIERS, ids=IDS)
def test_learns_mixed_concept(make):
    train = mixed_dataset(seed=1)
    test = mixed_dataset(seed=99)
    clf = make().fit(train)
    assert accuracy(test.labels, clf.predict(test.rows)) > 0.9


@pytest.mark.parametrize("make", ALL_CLASSIFIERS, ids=IDS)
def test_predict_before_fit_raises(make):
    with pytest.raises(RuntimeError):
        make().predict_one({"x": 1.0})


def test_j48_empty_dataset_raises():
    with pytest.raises(ValueError):
        J48Classifier().fit(Dataset([], []))


def test_j48_single_class_predicts_it():
    ds = Dataset([{"x": float(i)} for i in range(10)], [3] * 10)
    clf = J48Classifier().fit(ds)
    assert clf.predict_one({"x": 5.0}) == 3
    assert clf.n_nodes == 1  # pure leaf, no split


def test_j48_nominal_split():
    rows = [{"codec": c} for c in ["h264", "vp9", "h264", "vp9"] * 20]
    labels = [0 if r["codec"] == "h264" else 1 for r in rows]
    clf = J48Classifier().fit(Dataset(rows, labels))
    assert clf.predict_one({"codec": "h264"}) == 0
    assert clf.predict_one({"codec": "vp9"}) == 1


def test_j48_unseen_nominal_value_falls_back_to_majority():
    rows = [{"codec": c} for c in ["a"] * 30 + ["b"] * 10]
    labels = [0] * 30 + [1] * 10
    clf = J48Classifier().fit(Dataset(rows, labels))
    assert clf.predict_one({"codec": "never-seen"}) == 0


def test_j48_missing_numeric_value_falls_back():
    ds = threshold_dataset()
    clf = J48Classifier().fit(ds)
    # Must not raise; returns some node's majority class.
    assert clf.predict_one({}) in (0, 1)


def test_j48_pruning_reduces_nodes_on_noisy_data():
    rng = np.random.default_rng(7)
    xs = rng.random(500)
    labels = [int(rng.random() < 0.5) for _ in xs]  # pure noise
    ds = Dataset([{"x": float(x)} for x in xs], labels)
    pruned = J48Classifier(prune=True).fit(ds)
    unpruned = J48Classifier(prune=False).fit(ds)
    # Pure noise: pruning must collapse a substantial part of the tree
    # (C4.5's pessimistic pruning still keeps some structure in-sample).
    assert pruned.n_nodes < 0.75 * unpruned.n_nodes


def test_j48_pruning_keeps_learnable_concept():
    train = threshold_dataset(seed=2)
    test = threshold_dataset(seed=77)
    clf = J48Classifier(prune=True).fit(train)
    assert accuracy(test.labels, clf.predict(test.rows)) > 0.95


def test_j48_sample_weights_bias_prediction():
    # Two identical feature regions, conflicting labels; weights decide.
    rows = [{"x": 1.0}] * 10
    labels = [0] * 5 + [1] * 5
    heavy_one = Dataset(rows, labels, weights=[1.0] * 5 + [10.0] * 5)
    clf = J48Classifier().fit(heavy_one)
    assert clf.predict_one({"x": 1.0}) == 1


def test_j48_max_depth_limits_tree():
    ds = mixed_dataset()
    clf = J48Classifier(max_depth=1, prune=False).fit(ds)
    assert clf.depth <= 1


def test_j48_deterministic():
    ds = mixed_dataset()
    a = J48Classifier().fit(ds)
    b = J48Classifier().fit(ds)
    rows = mixed_dataset(seed=5).rows
    assert list(a.predict(rows)) == list(b.predict(rows))


def test_random_forest_more_stable_than_single_tree():
    rng = np.random.default_rng(3)
    # Noisy threshold concept.
    xs = rng.random(300)
    labels = [
        int(x > 0.5) if rng.random() > 0.15 else int(x <= 0.5) for x in xs
    ]
    train = Dataset([{"x": float(x)} for x in xs], labels)
    test = threshold_dataset(seed=123)
    forest = RandomForestClassifier(n_trees=60, rng=np.random.default_rng(0))
    forest.fit(train)
    forest_acc = accuracy(test.labels, forest.predict(test.rows))
    # Averaged over several seeds, bagging beats single overfit trees.
    tree_accs = [
        accuracy(
            test.labels,
            RandomTreeClassifier(rng=np.random.default_rng(seed))
            .fit(train)
            .predict(test.rows),
        )
        for seed in range(5)
    ]
    assert forest_acc > 0.75
    assert forest_acc >= np.mean(tree_accs) - 0.02


def test_random_forest_invalid_size():
    with pytest.raises(ValueError):
        RandomForestClassifier(n_trees=0)


def test_hoeffding_incremental_learning():
    clf = HoeffdingTreeClassifier(grace_period=20, n_classes=2)
    rng = np.random.default_rng(5)
    for _ in range(800):
        x = float(rng.random())
        clf.learn_one({"x": x}, int(x > 0.5))
    test = threshold_dataset(seed=11)
    assert accuracy(test.labels, clf.predict(test.rows)) > 0.9


def test_hoeffding_handles_nominal_features():
    clf = HoeffdingTreeClassifier(grace_period=10, n_classes=2)
    rng = np.random.default_rng(6)
    for _ in range(500):
        kind = str(rng.choice(["a", "b"]))
        clf.learn_one({"kind": kind}, 0 if kind == "a" else 1)
    assert clf.predict_one({"kind": "a"}) == 0
    assert clf.predict_one({"kind": "b"}) == 1


def test_hoeffding_unseen_value_does_not_crash():
    clf = HoeffdingTreeClassifier(grace_period=10, n_classes=2)
    for _ in range(100):
        clf.learn_one({"kind": "a"}, 0)
    assert clf.predict_one({"kind": "zzz"}) == 0
