"""Tests for Dataset and MemoryIntervals."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml import Dataset, MemoryIntervals


def small_dataset():
    rows = [
        {"size": 10.0, "kind": "a"},
        {"size": 20.0, "kind": "b"},
        {"size": 30.0, "kind": "a"},
    ]
    return Dataset(rows, [0, 1, 0])


def test_dataset_basic_properties():
    ds = small_dataset()
    assert len(ds) == 3
    assert ds.n_classes == 2
    assert ds.feature_names == ["size", "kind"]
    assert ds.feature_type("size") == "numeric"
    assert ds.feature_type("kind") == "nominal"


def test_dataset_length_mismatch_raises():
    with pytest.raises(ValueError):
        Dataset([{"a": 1}], [0, 1])


def test_dataset_default_weights_are_ones():
    ds = small_dataset()
    assert np.all(ds.weights == 1.0)


def test_dataset_column_extraction():
    ds = small_dataset()
    assert list(ds.column("size")) == [10.0, 20.0, 30.0]
    assert list(ds.column("kind")) == ["a", "b", "a"]


def test_dataset_nominal_values_ensemble():
    ds = small_dataset()
    assert ds.nominal_values("kind") == ["a", "b"]


def test_dataset_subset():
    ds = small_dataset()
    sub = ds.subset([0, 2])
    assert len(sub) == 2
    assert list(sub.labels) == [0, 0]


def test_dataset_bootstrap_same_size():
    ds = small_dataset()
    sample = ds.bootstrap(np.random.default_rng(0))
    assert len(sample) == 3


def test_split_folds_partition_everything():
    rows = [{"x": float(i)} for i in range(10)]
    ds = Dataset(rows, list(range(10)) )
    folds = ds.split_folds(5, rng=np.random.default_rng(1))
    assert len(folds) == 5
    test_labels = sorted(
        label for _train, test in folds for label in test.labels
    )
    assert test_labels == list(range(10))
    for train, test in folds:
        assert len(train) + len(test) == 10


def test_split_folds_too_few_rows_raises():
    ds = Dataset([{"x": 1.0}], [0])
    with pytest.raises(ValueError):
        ds.split_folds(2)


def test_intervals_label_and_upper_bound():
    intervals = MemoryIntervals(interval_mb=16, max_mb=2048)
    assert intervals.n_classes == 128
    assert intervals.label(1.0) == 0
    assert intervals.label(16.0) == 0
    assert intervals.label(16.1) == 1
    assert intervals.upper_bound_mb(0) == 16.0
    assert intervals.upper_bound_mb(127) == 2048.0


def test_intervals_clamp_out_of_range():
    intervals = MemoryIntervals(interval_mb=16, max_mb=2048)
    assert intervals.label(99999.0) == 127
    assert intervals.label(0.0) == 0
    assert intervals.label(-5.0) == 0


def test_intervals_bump_saturates():
    intervals = MemoryIntervals(interval_mb=16, max_mb=2048)
    assert intervals.bump(5) == 6
    assert intervals.bump(127) == 127


def test_intervals_invalid_params():
    with pytest.raises(ValueError):
        MemoryIntervals(interval_mb=0)
    with pytest.raises(ValueError):
        MemoryIntervals(interval_mb=16, max_mb=0)


@given(st.floats(min_value=0.001, max_value=2048.0))
def test_interval_upper_bound_always_covers_value(memory_mb):
    intervals = MemoryIntervals(interval_mb=16, max_mb=2048)
    label = intervals.label(memory_mb)
    assert intervals.upper_bound_mb(label) >= memory_mb - 1e-9
    # Tight: the next-lower interval would not cover it.
    if label > 0:
        assert intervals.upper_bound_mb(label - 1) < memory_mb


@given(
    st.floats(min_value=1.0, max_value=64.0),
    st.floats(min_value=64.0, max_value=4096.0),
)
def test_interval_roundtrip_consistency(interval_mb, max_mb):
    intervals = MemoryIntervals(interval_mb=interval_mb, max_mb=max_mb)
    for label in range(0, intervals.n_classes, max(1, intervals.n_classes // 7)):
        upper = intervals.upper_bound_mb(label)
        assert intervals.label(upper) == min(label, intervals.n_classes - 1)
