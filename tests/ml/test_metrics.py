"""Tests for metrics and cross-validation."""

import numpy as np
import pytest

from repro.ml import (
    accuracy,
    confusion_matrix,
    cross_validate,
    Dataset,
    eo_accuracy,
    f_measure,
    J48Classifier,
    precision_recall,
)


def test_accuracy():
    assert accuracy([1, 2, 3], [1, 2, 0]) == pytest.approx(2 / 3)
    assert accuracy([], []) == 0.0


def test_eo_accuracy_counts_overprediction_as_success():
    # true 2: predictions 2 (exact) and 3 (over) count, 1 (under) doesn't.
    assert eo_accuracy([2, 2, 2], [2, 3, 1]) == pytest.approx(2 / 3)


def test_confusion_matrix():
    matrix = confusion_matrix([0, 1, 1, 0], [0, 1, 0, 0], n_classes=2)
    assert matrix.tolist() == [[2, 0], [1, 1]]
    assert matrix.sum() == 4


def test_precision_recall_perfect():
    precision, recall = precision_recall([1, 0, 1], [1, 0, 1])
    assert precision == 1.0 and recall == 1.0


def test_precision_recall_asymmetric():
    # One false positive, one false negative.
    y_true = [1, 1, 0, 0]
    y_pred = [1, 0, 1, 0]
    precision, recall = precision_recall(y_true, y_pred)
    assert precision == pytest.approx(0.5)
    assert recall == pytest.approx(0.5)


def test_precision_recall_degenerate():
    precision, recall = precision_recall([0, 0], [0, 0])
    assert precision == 0.0 and recall == 0.0


def test_f_measure_harmonic_mean():
    y_true = [1, 1, 1, 0]
    y_pred = [1, 1, 0, 0]
    precision, recall = precision_recall(y_true, y_pred)
    expected = 2 * precision * recall / (precision + recall)
    assert f_measure(y_true, y_pred) == pytest.approx(expected)


def test_f_measure_zero_when_no_positives():
    assert f_measure([1, 1], [0, 0]) == 0.0


def test_cross_validate_learnable_concept():
    rng = np.random.default_rng(0)
    xs = rng.random(200)
    ds = Dataset([{"x": float(x)} for x in xs], [int(x > 0.5) for x in xs])
    result = cross_validate(
        J48Classifier, ds, k=5, rng=np.random.default_rng(1)
    )
    assert result["exact"] > 0.9
    assert result["exact_or_over"] >= result["exact"]
