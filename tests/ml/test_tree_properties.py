"""Property-based tests for the tree learners."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import Dataset, HoeffdingTreeClassifier, J48Classifier

feature_value = st.one_of(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.sampled_from(["a", "b", "c"]),
)


@st.composite
def labelled_rows(draw):
    n = draw(st.integers(min_value=2, max_value=60))
    n_features = draw(st.integers(min_value=1, max_value=4))
    names = [f"f{i}" for i in range(n_features)]
    rows = []
    labels = []
    for _ in range(n):
        rows.append({name: draw(feature_value) for name in names})
        labels.append(draw(st.integers(min_value=0, max_value=4)))
    return rows, labels


@settings(max_examples=40, deadline=None)
@given(labelled_rows())
def test_j48_predictions_are_seen_labels(data):
    rows, labels = data
    clf = J48Classifier().fit(Dataset(rows, labels))
    label_set = set(labels)
    for row in rows:
        assert clf.predict_one(row) in label_set


@settings(max_examples=40, deadline=None)
@given(labelled_rows())
def test_j48_never_crashes_on_unseen_rows(data):
    rows, labels = data
    clf = J48Classifier().fit(Dataset(rows, labels))
    weird_rows = [
        {},
        {"f0": "zzz"},
        {"f0": float("inf")},
        {"unrelated": 1.0},
    ]
    for row in weird_rows:
        assert clf.predict_one(row) in set(labels)


@settings(max_examples=30, deadline=None)
@given(labelled_rows())
def test_j48_is_deterministic(data):
    rows, labels = data
    a = J48Classifier().fit(Dataset(rows, labels))
    b = J48Classifier().fit(Dataset(rows, labels))
    assert list(a.predict(rows)) == list(b.predict(rows))


@settings(max_examples=25, deadline=None)
@given(labelled_rows())
def test_unpruned_tree_at_least_as_large_as_pruned(data):
    rows, labels = data
    pruned = J48Classifier(prune=True).fit(Dataset(rows, labels))
    unpruned = J48Classifier(prune=False).fit(Dataset(rows, labels))
    assert pruned.n_nodes <= unpruned.n_nodes


@settings(max_examples=25, deadline=None)
@given(labelled_rows())
def test_hoeffding_handles_any_stream(data):
    rows, labels = data
    clf = HoeffdingTreeClassifier(grace_period=5, n_classes=5)
    for row, label in zip(rows, labels):
        clf.learn_one(row, label)
    for row in rows:
        assert 0 <= clf.predict_one(row) <= 4


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_separable_data_is_learned_perfectly_in_sample(seed):
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0, 1, size=50)
    # Perfectly separable: no noise, generous margin around 0.5.
    xs = xs[(xs < 0.45) | (xs > 0.55)]
    if len(xs) < 4:
        return
    rows = [{"x": float(x)} for x in xs]
    labels = [int(x > 0.5) for x in xs]
    if len(set(labels)) < 2:
        return
    clf = J48Classifier(prune=False).fit(Dataset(rows, labels))
    assert list(clf.predict(rows)) == labels
