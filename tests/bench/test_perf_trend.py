"""Regression tests for the CI perf-trend annotation script.

The script lives under ``scripts/`` (not the package), so it is loaded
by path.  The regression of interest: the trend used to compare the CI
quick entry against the last full entry from *any* machine, so a full
entry recorded on a beefier box made every CI run "regress" and the
warning annotation fired on noise.  The baseline must share the quick
entry's machine fingerprint.
"""

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "perf_trend.py"

spec = importlib.util.spec_from_file_location("perf_trend", SCRIPT)
perf_trend = importlib.util.module_from_spec(spec)
spec.loader.exec_module(perf_trend)

CI_MACHINE = {"python": "3.12.1", "cpus": 4}
DEV_MACHINE = {"python": "3.12.1", "cpus": 128}


def entry(label, quick, machine, events=100_000.0):
    return {
        "label": label,
        "quick": quick,
        "machine": machine,
        "recorded_at": f"2026-08-0{1 if quick else 2}T00:00:00+00:00",
        "kernel_events_per_sec": events,
        "macro": {"sim_s_per_wall_s": events / 100.0},
    }


def write(tmp_path, entries):
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps({"schema": 1, "entries": entries}))
    return str(path)


def test_full_entry_from_other_machine_is_not_a_baseline(tmp_path, capsys):
    # A fast dev box recorded the only full entry; the CI quick entry
    # is 10x slower.  Pre-fix this printed a spurious -90% warning.
    path = write(
        tmp_path,
        [
            entry("full-dev", False, DEV_MACHINE, events=1_000_000.0),
            entry("ci-quick", True, CI_MACHINE, events=100_000.0),
        ],
    )
    assert perf_trend.main(path) == 0
    out = capsys.readouterr().out
    assert "::warning" not in out
    assert "no comparable full entry" in out


def test_matching_machine_full_entry_produces_table(tmp_path, capsys):
    path = write(
        tmp_path,
        [
            entry("full-ci", False, CI_MACHINE, events=100_000.0),
            entry("full-dev", False, DEV_MACHINE, events=1_000_000.0),
            entry("ci-quick", True, CI_MACHINE, events=105_000.0),
        ],
    )
    assert perf_trend.main(path) == 0
    out = capsys.readouterr().out
    assert "| kernel sleep events/s |" in out
    assert "full-ci" in out  # the same-machine baseline, not full-dev
    assert "full-dev" not in out
    assert "::warning" not in out  # +5% is not a regression


def test_real_regression_on_same_machine_still_warns(tmp_path, capsys):
    path = write(
        tmp_path,
        [
            entry("full-ci", False, CI_MACHINE, events=100_000.0),
            entry("ci-quick", True, CI_MACHINE, events=50_000.0),
        ],
    )
    assert perf_trend.main(path) == 0
    out = capsys.readouterr().out
    assert "::warning" in out


@pytest.mark.parametrize(
    "entries",
    [
        [],
        [entry("full-only", False, CI_MACHINE)],
    ],
    ids=["empty", "no-quick"],
)
def test_missing_quick_entry_skips_cleanly(tmp_path, capsys, entries):
    path = write(tmp_path, entries)
    assert perf_trend.main(path) == 0
    assert "skipping" in capsys.readouterr().out


def test_unreadable_file_never_fails_ci(tmp_path, capsys):
    assert perf_trend.main(str(tmp_path / "missing.json")) == 0
    assert "cannot read" in capsys.readouterr().out
