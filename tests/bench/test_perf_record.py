"""Tests for the perf-trajectory recorder's file handling."""

import json

from repro.bench.perfbench import (
    QUICK_KEEP,
    SCHEMA_VERSION,
    find_comparable,
    format_delta,
    record,
)


def test_record_creates_missing_parent_directories(tmp_path):
    path = tmp_path / "results" / "nested" / "BENCH_perf.json"
    doc = record({"label": "first"}, path=str(path))
    assert path.exists()
    assert doc["schema"] == SCHEMA_VERSION
    assert json.loads(path.read_text())["entries"] == [{"label": "first"}]


def test_record_appends_to_existing_trajectory(tmp_path):
    path = tmp_path / "BENCH_perf.json"
    record({"label": "first"}, path=str(path))
    doc = record({"label": "second"}, path=str(path))
    assert [e["label"] for e in doc["entries"]] == ["first", "second"]


def test_record_compacts_quick_entries_keeps_full_forever(tmp_path):
    path = tmp_path / "BENCH_perf.json"
    record({"label": "full-0", "quick": False}, path=str(path))
    for i in range(QUICK_KEEP + 5):
        doc = record({"label": f"q{i}", "quick": True}, path=str(path))
    record({"label": "full-1", "quick": False}, path=str(path))
    doc = record({"label": f"q{QUICK_KEEP + 5}", "quick": True}, path=str(path))
    quick = [e["label"] for e in doc["entries"] if e.get("quick")]
    full = [e["label"] for e in doc["entries"] if not e.get("quick")]
    assert len(quick) == QUICK_KEEP
    # Oldest quick entries dropped, newest kept, order preserved.
    assert quick[-1] == f"q{QUICK_KEEP + 5}"
    assert quick == sorted(quick, key=lambda s: int(s[1:]))
    # Full entries survive any number of quick appends.
    assert full == ["full-0", "full-1"]
    # The on-disk document matches what record() returned.
    assert json.loads(path.read_text())["entries"] == doc["entries"]


def test_find_comparable_matches_machine_and_quick_flag():
    m1 = {"python": "3.12.0", "cpus": 4}
    m2 = {"python": "3.9.1", "cpus": 2}
    entries = [
        {"label": "a", "quick": True, "machine": m1},
        {"label": "b", "quick": False, "machine": m1},
        {"label": "c", "quick": True, "machine": m2},
        {"label": "d", "quick": True, "machine": m1},
    ]
    new = {"label": "e", "quick": True, "machine": dict(m1)}
    assert find_comparable(entries, new)["label"] == "d"
    assert find_comparable(entries, {"quick": False, "machine": m1})["label"] == "b"
    assert find_comparable(entries, {"quick": False, "machine": m2}) is None
    assert find_comparable([], new) is None


def test_format_delta_reports_percentages():
    old = {
        "recorded_at": "2026-01-01T00:00:00+00:00",
        "label": "full",
        "kernel_events_per_sec": 2_000_000.0,
        "macro": {"sim_s_per_wall_s": 1000.0},
    }
    new = {
        "kernel_events_per_sec": 3_000_000.0,
        "macro": {"sim_s_per_wall_s": 900.0},
    }
    line = format_delta(new, old)
    assert "+50.0%" in line
    assert "-10.0%" in line
    assert "2026-01-01" in line
    assert "no comparable" in format_delta(new, None)
