"""Tests for the perf-trajectory recorder's file handling."""

import json

from repro.bench.perfbench import SCHEMA_VERSION, record


def test_record_creates_missing_parent_directories(tmp_path):
    path = tmp_path / "results" / "nested" / "BENCH_perf.json"
    doc = record({"label": "first"}, path=str(path))
    assert path.exists()
    assert doc["schema"] == SCHEMA_VERSION
    assert json.loads(path.read_text())["entries"] == [{"label": "first"}]


def test_record_appends_to_existing_trajectory(tmp_path):
    path = tmp_path / "BENCH_perf.json"
    record({"label": "first"}, path=str(path))
    doc = record({"label": "second"}, path=str(path))
    assert [e["label"] for e in doc["entries"]] == ["first", "second"]
