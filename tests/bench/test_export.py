"""Tests for the JSONL telemetry exporter."""

import io
import json

from repro.bench.export import (
    pipeline_to_dict,
    read_jsonl,
    record_to_dict,
    write_jsonl,
)
from repro.faas.pipeline import PipelineRecord, StageRecord
from repro.faas.records import InvocationRecord, InvocationRequest, Phases


def make_record():
    record = InvocationRecord(
        request=InvocationRequest(
            function="f", tenant="t", args={"x": 1}, input_ref="inputs/a"
        ),
        node="w0",
        status="ok",
        submitted_at=1.0,
        started_at=1.5,
        finished_at=3.0,
        booked_memory_mb=512.0,
        memory_limit_mb=128.0,
        peak_memory_mb=100.0,
    )
    record.phases = Phases(extract=0.1, transform=1.0, load=0.4)
    record.output_refs = ["outputs/o"]
    return record


def make_pipeline_record():
    prec = PipelineRecord(
        pipeline="p", pipeline_id="p-1", submitted_at=0.0, finished_at=5.0
    )
    stage = StageRecord(function="f", started_at=0.0, finished_at=5.0)
    stage.records = [make_record()]
    prec.stage_records = [stage]
    return prec


def test_record_to_dict_is_json_safe():
    payload = record_to_dict(make_record())
    text = json.dumps(payload)
    parsed = json.loads(text)
    assert parsed["function"] == "f"
    assert parsed["duration_s"] == 2.0
    assert parsed["execution_s"] == 1.5
    assert parsed["limit_mb"] == 128.0


def test_pipeline_to_dict_summarizes_stages():
    payload = pipeline_to_dict(make_pipeline_record())
    assert payload["status"] == "ok"
    assert payload["stages"] == [
        {"function": "f", "wall_s": 5.0, "invocations": 1}
    ]


def test_jsonl_roundtrip_mixed_records():
    sink = io.StringIO()
    count = write_jsonl([make_record(), make_pipeline_record()], sink)
    assert count == 2
    parsed = read_jsonl(io.StringIO(sink.getvalue()))
    assert len(parsed) == 2
    assert parsed[0]["function"] == "f"
    assert parsed[1]["pipeline"] == "p"


def test_read_jsonl_skips_blank_lines():
    parsed = read_jsonl(io.StringIO('{"a": 1}\n\n{"b": 2}\n'))
    assert parsed == [{"a": 1}, {"b": 2}]


def test_export_from_live_platform():
    from repro.faas import FaaSPlatform, PlatformConfig
    from repro.sim import Kernel
    from repro.storage import ObjectStore
    from tests.faas.conftest import deploy, make_etl_body  # noqa: F401
    from tests.faas.test_platform import invoke, seed_input

    kernel = Kernel()
    store = ObjectStore(kernel)
    store.rng = None
    store.create_bucket("inputs")
    store.create_bucket("outputs")
    platform = FaaSPlatform(kernel, store, PlatformConfig())
    deploy(platform)
    seed_input(kernel, store)
    invoke(kernel, platform, input_ref="inputs/in")
    sink = io.StringIO()
    assert write_jsonl(platform.records, sink) == 1
    row = read_jsonl(io.StringIO(sink.getvalue()))[0]
    assert row["status"] == "ok"
    assert row["bytes_in"] > 0
