"""End-to-end tests for the ``repro cachewars`` head-to-head."""

import json
from dataclasses import asdict

from repro.bench.cachewars import (
    BACKEND_NAMES,
    CacheWarsCell,
    cachewars_grid,
    export_grid,
    format_results,
    run_cachewars_cell,
)


def _tiny_cell(backend="ofc", seed=3):
    return CacheWarsCell(
        backend=backend,
        n_tenants=30,
        zipf_s=1.1,
        duration_s=90.0,
        mean_interval_s=20.0,
        seed=seed,
        warmup_s=45.0,
    )


def test_grid_shares_seed_across_backends():
    cells = cachewars_grid(quick=True)
    assert tuple(c.backend for c in cells) == BACKEND_NAMES
    # Every architecture must face the identical workload: one shared
    # seed per (tenant count, skew), with the backend name excluded.
    assert len({(c.n_tenants, c.zipf_s, c.seed) for c in cells}) == 1


def test_every_backend_completes_the_shared_workload():
    results = [run_cachewars_cell(_tiny_cell(b)) for b in BACKEND_NAMES]
    submitted = {r.submitted for r in results}
    assert submitted != {0}
    # Same seed, same arrival schedule, regardless of architecture.
    assert len(submitted) == 1
    for result in results:
        assert result.completed > 0
        assert result.completed + result.failed == result.submitted
        assert 0.0 <= result.hit_ratio <= 1.0
        assert result.latency_p50_s <= result.latency_p99_s
        assert result.cost_units >= 0.0
        assert result.cost_per_1k_invocations >= 0.0


def test_cell_is_deterministic_for_fixed_seed():
    # Back-to-back runs in one process must agree exactly: the id
    # counters are reset per cell, so nothing leaks between runs.
    first = run_cachewars_cell(_tiny_cell("infinicache"))
    second = run_cachewars_cell(_tiny_cell("infinicache"))
    assert asdict(first) == asdict(second)


def test_rival_pools_priced_dedicated_ofc_harvested():
    ofc = run_cachewars_cell(_tiny_cell("ofc"))
    faast = run_cachewars_cell(_tiny_cell("faast"))
    assert ofc.harvested_mb_s > 0.0
    assert ofc.dedicated_mb_s == 0.0
    assert faast.dedicated_mb_s > 0.0
    assert faast.harvested_mb_s == 0.0


def test_export_grid_document(tmp_path):
    result = run_cachewars_cell(_tiny_cell())
    out = tmp_path / "results" / "cachewars_grid.json"
    export_grid([result], str(out))
    doc = json.loads(out.read_text())
    assert "cachewars_hit_ratio" in doc["metrics"]
    assert "cachewars_cost_per_1k_invocations" in doc["metrics"]
    assert doc["collected"]["cachewars"]["cells"] == 1
    assert doc["collected"]["cachewars"]["backends"] == ["ofc"]
    row = doc["meta"]["grid"][0]
    assert row["backend"] == "ofc"
    assert row["hit_ratio"] == result.hit_ratio
    assert row["cost_units"] == result.cost_units
    # The table formatter accepts the same rows.
    assert "backend" in format_results([result])
