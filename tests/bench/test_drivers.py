"""Smoke and shape tests for the experiment drivers themselves."""

import numpy as np
import pytest

from repro.bench.datasets import (
    all_function_datasets,
    benefit_dataset,
    function_dataset,
)
from repro.bench.envs import (
    build_ofc_env,
    build_owk_redis_env,
    build_owk_swift_env,
    pretrain_function,
)
from repro.bench.fig2 import run_fig2
from repro.bench.reporting import format_table, improvement_pct
from repro.sim.latency import KB
from repro.workloads.functions import get_function_model
from repro.workloads.media import MediaCorpus


def test_env_builders_produce_ready_deployments():
    for builder in (build_owk_swift_env, build_owk_redis_env):
        env = builder(nodes=2, node_mb=1024, seed=1)
        assert len(env.platform.invokers) == 2
        assert env.store.has_bucket("inputs")
        assert env.store.has_bucket("outputs")
    ofc = build_ofc_env(nodes=2, node_mb=1024, seed=1)
    assert len(ofc.agents) == 2
    assert ofc.cluster.total_capacity > 0  # agents already harvested


def test_env_builders_use_correct_profiles():
    swift = build_owk_swift_env(seed=0)
    redis = build_owk_redis_env(seed=0)
    assert swift.store.profile.name == "swift"
    assert redis.store.profile.name == "redis"
    assert swift.store.profile.read.base_s > 50 * redis.store.profile.read.base_s


def test_pretrain_function_matures_model():
    ofc = build_ofc_env(nodes=2, node_mb=4096, seed=2)
    model = get_function_model("wand_sepia")
    ofc.platform.register_function(model.spec(tenant="t0"))
    corpus = MediaCorpus(np.random.default_rng(0))
    descriptors = [corpus.image(64 * KB) for _ in range(4)]
    pretrain_function(ofc, model, descriptors, tenant="t0")
    models = ofc.trainer.models_for("t0/wand_sepia")
    assert models.mature
    assert models.memory_model is not None
    assert models.benefit_model is not None


def test_function_dataset_shape_and_labels():
    model = get_function_model("wand_blur")
    dataset = function_dataset(model, n=50, seed=0, interval_mb=16.0)
    assert len(dataset) == 50
    assert all(0 <= label < 128 for label in dataset.labels)
    assert "pixels" in dataset.feature_names
    assert "arg_sigma" in dataset.feature_names


def test_function_datasets_are_reproducible():
    model = get_function_model("wand_sepia")
    a = function_dataset(model, n=30, seed=5)
    b = function_dataset(model, n=30, seed=5)
    assert list(a.labels) == list(b.labels)
    assert a.rows == b.rows


def test_all_function_datasets_covers_19():
    datasets = all_function_datasets(n=10)
    assert len(datasets) == 19


def test_benefit_dataset_labels_are_binary():
    model = get_function_model("wand_edge")
    dataset = benefit_dataset(model, n=60, seed=0)
    assert set(int(label) for label in dataset.labels) <= {0, 1}


def test_fig2_scatter_sizes():
    result = run_fig2(n=80, seed=1)
    assert len(result.by_size) == 80
    assert len(result.by_sigma) == 80
    assert result.spread_at_fixed_size_mb >= 0


def test_format_table_alignment():
    text = format_table(
        ["name", "value"], [("a", 1.2345), ("long-name", 100.0)], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5
    # All data lines padded to the same width.
    assert len(set(len(line) for line in lines[2:])) <= 2


def test_improvement_pct():
    assert improvement_pct(100.0, 40.0) == pytest.approx(60.0)
    assert improvement_pct(0.0, 40.0) == 0.0
    assert improvement_pct(50.0, 75.0) == pytest.approx(-50.0)


def test_cli_list_and_unknown():
    from repro.cli import main

    assert main(["list"]) == 0
    assert main(["does-not-exist"]) == 2


def test_cli_runs_quick_experiment(capsys):
    from repro.cli import main

    assert main(["fig2", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
