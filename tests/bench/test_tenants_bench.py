"""End-to-end tests for the ``repro tenants`` fairness sweep."""

import json

from repro.bench.tenants import (
    POLICIES,
    TenantsCell,
    export_grid,
    format_results,
    run_tenants_cell,
    tenants_grid,
)


def _tiny_cell(policy="none", seed=3):
    return TenantsCell(
        n_tenants=40,
        zipf_s=1.1,
        policy=policy,
        duration_s=120.0,
        mean_interval_s=20.0,
        seed=seed,
        warmup_s=60.0,
    )


def test_grid_shares_seed_across_policies():
    cells = tenants_grid(quick=True)
    assert sorted(c.policy for c in cells) == sorted(POLICIES)
    # All policies must face the identical workload: same seed per
    # (tenant count, skew) regardless of policy.
    assert len({(c.n_tenants, c.zipf_s, c.seed) for c in cells}) == 1


def test_tiny_cell_produces_distributions():
    result = run_tenants_cell(_tiny_cell())
    assert result.submitted > 0
    assert result.completed > 0
    assert result.completed + result.failed == result.submitted
    assert result.tenants_active > 0
    assert 0.0 <= result.fairness_index <= 1.0
    assert 0.0 <= result.hit_ratio_p10 <= result.hit_ratio_p90 <= 1.0
    assert result.latency_p50_s <= result.latency_p99_s
    assert result.per_tenant_hit_ratio
    assert all(
        0.0 <= ratio <= 1.0
        for ratio in result.per_tenant_hit_ratio.values()
    )


def test_quota_cell_rejects_and_matches_workload():
    base = run_tenants_cell(_tiny_cell("none"))
    quota = run_tenants_cell(_tiny_cell("static"))
    # Identical seed, identical arrival schedule.
    assert quota.submitted == base.submitted
    # The static policy actually refuses admissions under contention.
    assert quota.quota_rejections > 0
    assert base.quota_rejections == 0


def test_export_grid_document(tmp_path):
    result = run_tenants_cell(_tiny_cell())
    out = tmp_path / "results" / "tenants_grid.json"
    export_grid([result], str(out))
    doc = json.loads(out.read_text())
    assert "tenants_fairness_index" in doc["metrics"]
    assert "tenants_quota_rejections" in doc["metrics"]
    assert doc["collected"]["tenants"]["cells"] == 1
    row = doc["meta"]["grid"][0]
    assert row["fairness_index"] == result.fairness_index
    assert row["per_tenant_hit_ratio"] == result.per_tenant_hit_ratio
    # The table formatter accepts the same rows.
    assert "fairness" in format_results([result])
