"""Parallel sweep runner: determinism and plumbing."""

import pytest

from repro.bench.fig8 import _fig8_cell, run_fig8
from repro.bench.runner import cell_seed, CellOutcome, run_cells, run_grid
from repro.sim.latency import KB


def _square(cell):
    return cell * cell


def test_run_cells_preserves_order_serial():
    outcomes = run_cells(_square, [3, 1, 2], workers=1)
    assert [o.result for o in outcomes] == [9, 1, 4]
    assert [o.cell for o in outcomes] == [3, 1, 2]
    assert all(isinstance(o, CellOutcome) for o in outcomes)


def test_run_cells_preserves_order_parallel():
    outcomes = run_cells(_square, list(range(8)), workers=4)
    assert [o.result for o in outcomes] == [n * n for n in range(8)]


def test_run_grid_returns_raw_results():
    assert run_grid(_square, [2, 4], workers=1) == [4, 16]


def test_invalid_workers_rejected():
    with pytest.raises(ValueError, match="workers"):
        run_cells(_square, [1], workers=0)


def test_cell_seed_stable_and_distinct():
    a = cell_seed(0, "wand_blur", 16 * KB)
    assert a == cell_seed(0, "wand_blur", 16 * KB)
    assert a != cell_seed(0, "wand_blur", 64 * KB)
    assert a != cell_seed(1, "wand_blur", 16 * KB)


def test_parallel_sweep_matches_serial():
    # The acceptance property: fanning cells across processes must
    # reproduce the serial sweep bit-for-bit (same seeds, same order).
    sizes = (1 * KB, 16 * KB)
    serial = run_fig8(sizes=sizes, seed=0, workers=1)
    parallel = run_fig8(sizes=sizes, seed=0, workers=4)
    assert parallel == serial


def test_cell_function_is_picklable():
    import pickle

    pickle.dumps(_fig8_cell)
