"""The shared warm-model cache: warm cells must reproduce cold cells
bit-for-bit, keys must cover every input, and the runner initializer
must carry the cache into workers.
"""

from __future__ import annotations

import pickle

import pytest

from repro.bench import model_cache
from repro.bench.macro import prewarm_macro_models, run_macro
from repro.bench.runner import run_cells
from repro.core.config import OFCConfig
from repro.storage.latency_profiles import SWIFT_PROFILE
from repro.workloads.faasload import TenantProfile
from repro.workloads.functions import get_function_model


@pytest.fixture(autouse=True)
def _fresh_cache():
    model_cache.clear()
    model_cache.set_enabled(True)
    yield
    model_cache.clear()
    model_cache.set_enabled(True)


def _short_macro():
    return run_macro("ofc", TenantProfile.NORMAL, duration_s=20.0, seed=0)


def test_warm_macro_matches_cold_exactly():
    cold = _short_macro()
    first = model_cache.stats()
    assert first["stores"] > 0
    assert first["hits"] == 0
    warm = _short_macro()
    second = model_cache.stats()
    assert second["hits"] >= first["stores"]
    # The warm run is the same simulation, not an approximation.
    assert warm.hit_ratio == cold.hit_ratio
    assert warm.total_exec_s == cold.total_exec_s
    assert warm.completed == cold.completed
    assert warm.table2 == cold.table2


def test_disabled_cache_stores_nothing():
    with model_cache.disabled():
        _short_macro()
    stats = model_cache.stats()
    assert stats["stores"] == 0 and stats["entries"] == 0


def test_key_covers_inputs():
    model = get_function_model("wand_blur")

    class _Descriptor:
        def __init__(self, size):
            self.size = size

        def features(self):
            return {"in_size": float(self.size)}

    base = dict(
        model_name=model.name,
        tenant="t0",
        n_samples=30,
        seed=0,
        descriptors=[_Descriptor(10)],
        config=OFCConfig(),
        profile=SWIFT_PROFILE,
    )
    key = model_cache.pretrain_key(**base)
    assert key == model_cache.pretrain_key(**base)  # deterministic
    for change in (
        {"tenant": "t1"},
        {"n_samples": 31},
        {"seed": 1},
        {"descriptors": [_Descriptor(11)]},
        {"config": OFCConfig(bump_intervals=2)},
    ):
        assert model_cache.pretrain_key(**{**base, **change}) != key, change


def test_store_snapshots_against_later_mutation():
    model_cache.store("k", {"models": [1, 2, 3]})
    entry = model_cache.lookup("k")
    entry["models"].append(4)  # cell-local mutation
    assert model_cache.lookup("k") == {"models": [1, 2, 3]}


def test_prewarm_blob_round_trip():
    blob = prewarm_macro_models(TenantProfile.NORMAL, seed=0)
    stored = model_cache.stats()["stores"]
    assert stored > 0
    model_cache.clear()
    model_cache.preload_blob(blob)
    assert model_cache.stats()["entries"] == stored
    # A macro cell on the preloaded cache is pure hits, no stores.
    _short_macro()
    stats = model_cache.stats()
    assert stats["hits"] >= stored
    assert stats["stores"] == 0


def _cache_entry_count(_cell) -> int:
    """Runner cell: how many warm entries this process sees."""
    return model_cache.stats()["entries"]


def test_runner_initializer_preloads_workers():
    model_cache.store("a", [1])
    model_cache.store("b", [2])
    blob = model_cache.export_blob()
    outcomes = run_cells(
        _cache_entry_count,
        [(), ()],
        workers=2,
        initializer=model_cache.preload_blob,
        initargs=(blob,),
    )
    assert [o.result for o in outcomes] == [2, 2]


def test_blob_is_picklable_payload():
    model_cache.store("k", {"x": 1})
    blob = model_cache.export_blob()
    assert isinstance(blob, bytes)
    assert pickle.loads(blob)  # decodable mapping
