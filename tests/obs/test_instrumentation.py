"""Instrumentation smoke tests: spans and registry on a live system."""

import numpy as np
import pytest

from repro.core import OFCPlatform
from repro.faas.platform import PlatformConfig
from repro.faas.records import InvocationRequest
from repro.obs import (
    enable_tracing,
    merged_summary,
    NULL_TRACER,
    reset_tracing,
)
from repro.sim.latency import KB
from repro.workloads.functions import get_function_model
from repro.workloads.media import MediaCorpus


@pytest.fixture(autouse=True)
def _clean_tracing():
    reset_tracing()
    yield
    reset_tracing()


def build_system():
    system = OFCPlatform(
        platform_config=PlatformConfig(node_memory_mb=4096), seed=3
    )
    system.store.create_bucket("inputs")
    system.store.create_bucket("outputs")
    system.start()
    return system


def run_some_invocations(system, n=6):
    model = get_function_model("wand_sepia")
    system.platform.register_function(
        model.spec(tenant="t0", booked_mb=512.0)
    )
    corpus = MediaCorpus(np.random.default_rng(11))
    refs = []

    def writer():
        for i in range(3):
            img = corpus.image(64 * KB)
            yield from system.store.put(
                "inputs", f"img{i}", img, size=img.size,
                user_meta=img.features(),
            )
            refs.append(f"inputs/img{i}")

    system.kernel.run_until(system.kernel.process(writer()))
    rng = np.random.default_rng(5)
    records = []
    for i in range(n):
        records.append(
            system.invoke(
                InvocationRequest(
                    function="wand_sepia",
                    tenant="t0",
                    args=model.sample_args(rng),
                    input_ref=refs[i % len(refs)],
                )
            )
        )
    return records


def test_kernel_tracer_is_null_by_default():
    system = build_system()
    assert system.kernel.tracer is NULL_TRACER
    run_some_invocations(system, n=2)
    assert system.kernel.tracer.spans == []


def test_enabled_tracing_captures_invocation_lifecycle():
    enable_tracing()
    system = build_system()
    assert system.kernel.tracer is not NULL_TRACER

    records = run_some_invocations(system, n=6)
    assert all(r.status == "ok" for r in records)

    summary = merged_summary()
    assert summary["faas.invoke"]["count"] == 6
    assert summary["faas.execute"]["count"] >= 6
    assert summary["faas.compute"]["count"] >= 6
    # Every input upload and shadow write goes through the RSDS.
    assert summary["rsds.put"]["count"] >= 3
    # Invocation spans cover at least the compute time they contain.
    assert summary["faas.invoke"]["total_s"] >= summary["faas.compute"]["total_s"]

    spans = system.kernel.tracer.spans
    invoke_spans = [s for s in spans if s.name == "faas.invoke"]
    assert all(s.finished and s.labels["status"] == "ok"
               for s in invoke_spans)


def test_platform_obs_registry_snapshot():
    system = build_system()
    run_some_invocations(system, n=4)
    snap = system.obs.snapshot()
    collected = snap["collected"]
    rclib = collected["rclib"]
    assert rclib["hits_local"] + rclib["hits_remote"] + rclib["misses"] > 0
    assert "hit_ratio" in rclib
    assert "cache_size_final_bytes" in collected["ofc"]
    assert "cache_size_peak_bytes" in collected["ofc"]
    assert collected["invokers"]["nodes"] == len(system.platform.invokers)
    assert collected["table2"]
