"""CLI behavior: exit codes and the --trace flag."""

import pytest

import repro.cli as cli
from repro.obs import load_json, reset_tracing
from repro.sim import Kernel


@pytest.fixture(autouse=True)
def _clean_tracing():
    reset_tracing()
    yield
    reset_tracing()


def _fake_experiment(quick, workers=None):
    kernel = Kernel()

    def proc():
        yield kernel.timeout(1.5)

    kernel.process(proc(), name="fake-work")
    kernel.run()
    return "fake done"


def _failing_experiment(quick, workers=None):
    raise RuntimeError("boom")


@pytest.fixture()
def fake_experiments(monkeypatch):
    monkeypatch.setitem(cli.EXPERIMENTS, "fake", _fake_experiment)
    monkeypatch.setitem(cli.EXPERIMENTS, "failing", _failing_experiment)


def test_unknown_experiment_exits_2(capsys):
    assert cli.main(["nonexistent"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_failing_experiment_exits_1(fake_experiments, capsys):
    assert cli.main(["failing"]) == 1
    err = capsys.readouterr().err
    assert "RuntimeError: boom" in err
    assert "experiment failed: failing" in err


def test_failure_stops_remaining_experiments(fake_experiments, capsys):
    assert cli.main(["failing", "fake"]) == 1
    assert "fake done" not in capsys.readouterr().out


def test_successful_experiment_exits_0(fake_experiments, capsys):
    assert cli.main(["fake"]) == 0
    assert "fake done" in capsys.readouterr().out


def test_trace_flag_writes_span_summary(fake_experiments, tmp_path):
    trace_path = tmp_path / "trace.json"
    assert cli.main(["fake", "--trace", str(trace_path)]) == 0
    document = load_json(trace_path)
    assert document["format"] == "repro-obs"
    summary = document["spans"]["summary"]
    assert summary["sim.process"]["count"] == 1
    assert summary["sim.process"]["total_s"] == 1.5


def test_trace_state_reset_after_run(fake_experiments, tmp_path):
    from repro.obs import active_tracers, tracing_enabled

    cli.main(["fake", "--trace", str(tmp_path / "t.json")])
    assert not tracing_enabled()
    assert active_tracers() == []
