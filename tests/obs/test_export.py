"""Round-trip tests for the observability exporters (repro.obs.export)."""

import io

from repro.obs.export import (
    csv_value,
    export_csv,
    export_json,
    load_json,
    read_csv_rows,
    spans_payload,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer


def _sample_registry():
    registry = MetricsRegistry()
    registry.counter("hits").inc(3, node="n0")
    registry.counter("hits").inc(1, node="n1")
    registry.gauge("cache_bytes").set(2048.0)
    registry.histogram("latency", buckets=(1.0, 10.0)).observe(0.5, op="get")
    registry.register_collector("table2", lambda: {"hit_ratio": 0.75})
    return registry


def _sample_tracer():
    clock = {"t": 0.0}
    tracer = Tracer(lambda: clock["t"])
    span = tracer.start("rsds.get")
    clock["t"] = 2.0
    span.finish(status="ok")
    return tracer


def test_json_round_trip_via_path(tmp_path):
    path = tmp_path / "nested" / "report.json"
    document = export_json(
        path,
        registry=_sample_registry(),
        tracers=[_sample_tracer()],
        meta={"experiment": "unit"},
    )
    loaded = load_json(path)
    assert loaded == document
    assert loaded["format"] == "repro-obs"
    assert loaded["version"] == 1
    assert loaded["meta"] == {"experiment": "unit"}
    series = loaded["metrics"]["hits"]["series"]
    assert {p["labels"]["node"]: p["value"] for p in series} == {
        "n0": 3.0,
        "n1": 1.0,
    }
    assert loaded["collected"]["table2"]["hit_ratio"] == 0.75
    assert loaded["spans"]["finished"] == 1
    assert loaded["spans"]["summary"]["rsds.get"]["total_s"] == 2.0


def test_json_export_to_file_object_with_spans():
    buf = io.StringIO()
    export_json(buf, tracers=[_sample_tracer()], include_spans=True)
    buf.seek(0)
    loaded = load_json(buf)
    (span,) = loaded["spans"]["spans"]
    assert span["name"] == "rsds.get"
    assert span["duration_s"] == 2.0
    assert span["labels"] == {"status": "ok"}


def test_spans_payload_merges_tracers():
    payload = spans_payload([_sample_tracer(), _sample_tracer()])
    assert payload["finished"] == 2
    assert payload["started"] == 2
    assert payload["dropped"] == 0
    assert payload["summary"]["rsds.get"]["count"] == 2
    assert payload["summary"]["rsds.get"]["mean_s"] == 2.0


def test_csv_round_trip(tmp_path):
    path = tmp_path / "metrics.csv"
    count = export_csv(path, _sample_registry())
    rows = read_csv_rows(path)
    assert len(rows) == count
    assert csv_value(rows, "hits") == 3.0  # first label set wins
    assert csv_value(rows, "cache_bytes") == 2048.0
    assert csv_value(rows, "latency", field="count") == 1.0
    assert csv_value(rows, "latency", field="mean") == 0.5
    assert csv_value(rows, "table2.hit_ratio") == 0.75
    kinds = {row["metric"]: row["kind"] for row in rows}
    assert kinds["hits"] == "counter"
    assert kinds["cache_bytes"] == "gauge"
    assert kinds["latency"] == "histogram"
