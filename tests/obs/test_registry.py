"""Unit tests for the metrics registry (repro.obs.registry)."""

import pytest

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_aggregates_per_label_set():
    counter = Counter("requests")
    counter.inc(node="n0", status="ok")
    counter.inc(2.0, node="n0", status="ok")
    counter.inc(node="n1", status="err")
    assert counter.value(node="n0", status="ok") == 3.0
    assert counter.value(node="n1", status="err") == 1.0
    assert counter.value(node="n2") == 0.0
    assert counter.total() == 4.0


def test_counter_label_order_is_irrelevant():
    counter = Counter("requests")
    counter.inc(a=1, b=2)
    counter.inc(b=2, a=1)
    assert counter.value(a=1, b=2) == 2.0
    assert len(counter.series()) == 1


def test_counter_rejects_negative():
    counter = Counter("requests")
    with pytest.raises(ValueError):
        counter.inc(-1.0)


def test_gauge_set_and_add():
    gauge = Gauge("bytes")
    gauge.set(100.0, node="n0")
    gauge.add(50.0, node="n0")
    gauge.set(7.0, node="n1")
    assert gauge.value(node="n0") == 150.0
    assert gauge.value(node="n1") == 7.0


def test_histogram_stats_and_buckets():
    hist = Histogram("latency", buckets=(1.0, 10.0))
    for value in (0.5, 2.0, 20.0):
        hist.observe(value, op="get")
    stats = hist.stats(op="get")
    assert stats["count"] == 3
    assert stats["sum"] == 22.5
    assert stats["min"] == 0.5
    assert stats["max"] == 20.0
    assert stats["mean"] == 7.5
    assert stats["bucket_counts"] == [1, 1, 1]  # <=1, <=10, overflow
    assert hist.stats(op="missing") is None


def test_registry_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    a = registry.counter("hits", help="cache hits")
    b = registry.counter("hits")
    assert a is b
    assert registry.get("hits") is a


def test_registry_rejects_kind_mismatch():
    registry = MetricsRegistry()
    registry.counter("hits")
    with pytest.raises(TypeError):
        registry.gauge("hits")


def test_registry_rejects_duplicate_collector():
    registry = MetricsRegistry()
    registry.register_collector("stats", lambda: {})
    with pytest.raises(ValueError):
        registry.register_collector("stats", lambda: {})


def test_snapshot_includes_instruments_and_collectors():
    registry = MetricsRegistry()
    registry.counter("hits").inc(5, node="n0")
    registry.gauge("cache_bytes").set(1024.0)
    registry.histogram("latency", buckets=(1.0,)).observe(0.5)
    registry.register_collector("table2", lambda: {"hit_ratio": 0.9})

    snap = registry.snapshot()
    assert snap["metrics"]["hits"]["kind"] == "counter"
    assert snap["metrics"]["hits"]["series"] == [
        {"labels": {"node": "n0"}, "value": 5.0}
    ]
    assert snap["metrics"]["cache_bytes"]["kind"] == "gauge"
    assert snap["metrics"]["latency"]["buckets"] == [1.0]
    assert snap["collected"] == {"table2": {"hit_ratio": 0.9}}


def test_collectors_run_lazily_at_snapshot_time():
    registry = MetricsRegistry()
    state = {"calls": 0, "value": 1}

    def collect():
        state["calls"] += 1
        return {"value": state["value"]}

    registry.register_collector("live", collect)
    assert state["calls"] == 0
    state["value"] = 42
    snap = registry.snapshot()
    assert state["calls"] == 1
    assert snap["collected"]["live"]["value"] == 42
