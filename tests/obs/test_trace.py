"""Unit tests for the span tracer (repro.obs.trace)."""

import pytest

from repro.obs.trace import (
    enable_tracing,
    NULL_SPAN,
    NULL_TRACER,
    reset_tracing,
    Tracer,
    tracer_for_clock,
    tracing_enabled,
)
from repro.sim import Kernel


@pytest.fixture(autouse=True)
def _clean_tracing():
    reset_tracing()
    yield
    reset_tracing()


def test_span_timing_follows_sim_clock():
    kernel = Kernel()
    tracer = Tracer(lambda: kernel.now)
    observed = {}

    def proc():
        span = tracer.start("op", stage="demo")
        yield kernel.timeout(2.5)
        span.finish(status="ok")
        observed["span"] = span

    kernel.process(proc())
    kernel.run()

    span = observed["span"]
    assert span.start == 0.0
    assert span.end == 2.5
    assert span.duration == 2.5
    assert span.labels == {"stage": "demo", "status": "ok"}


def test_span_nesting_parent_ids():
    tracer = Tracer()
    parent = tracer.start("outer")
    child = parent.child("inner", step=1)
    grandchild = child.child("leaf")
    assert child.parent_id == parent.span_id
    assert grandchild.parent_id == child.span_id
    assert parent.parent_id is None
    grandchild.finish()
    child.finish()
    parent.finish()
    assert [s.name for s in tracer.spans] == ["leaf", "inner", "outer"]


def test_finish_is_idempotent():
    clock = {"t": 0.0}
    tracer = Tracer(lambda: clock["t"])
    span = tracer.start("op")
    clock["t"] = 1.0
    span.finish()
    clock["t"] = 9.0
    span.finish()
    assert span.end == 1.0
    assert len(tracer.spans) == 1


def test_span_context_manager_finishes():
    tracer = Tracer()
    with tracer.start("op") as span:
        pass
    assert span.finished
    assert tracer.count("op") == 1


def test_unfinished_span_duration_raises():
    tracer = Tracer()
    span = tracer.start("op")
    with pytest.raises(ValueError):
        _ = span.duration


def test_summary_aggregates_per_name():
    clock = {"t": 0.0}
    tracer = Tracer(lambda: clock["t"])
    for duration in (1.0, 3.0):
        clock["t"] = 0.0
        span = tracer.start("op")
        clock["t"] = duration
        span.finish()
    summary = tracer.summary()
    assert summary["op"]["count"] == 2
    assert summary["op"]["total_s"] == 4.0
    assert summary["op"]["min_s"] == 1.0
    assert summary["op"]["max_s"] == 3.0
    assert summary["op"]["mean_s"] == 2.0


def test_max_spans_drops_overflow():
    tracer = Tracer(max_spans=2)
    for _ in range(5):
        tracer.start("op").finish()
    assert len(tracer.spans) == 2
    assert tracer.dropped == 3
    assert tracer.started == 5


def test_null_tracer_allocates_nothing():
    span = NULL_TRACER.start("anything", big_label="x" * 100)
    assert span is NULL_SPAN
    assert span.child("nested") is NULL_SPAN
    assert span.annotate(k="v") is NULL_SPAN
    assert span.finish(status="ok") is NULL_SPAN
    assert NULL_TRACER.spans == []
    assert NULL_SPAN.labels == {}


def test_null_tracer_overhead_sanity():
    # 100k instrumented no-op calls should be effectively free; the
    # generous bound only guards against accidental per-call recording.
    import time

    t0 = time.perf_counter()
    for _ in range(100_000):
        NULL_TRACER.start("op", a=1).finish(status="ok")
    elapsed = time.perf_counter() - t0
    assert elapsed < 2.0
    assert NULL_TRACER.spans == []


def test_global_switch_controls_kernel_tracers():
    assert not tracing_enabled()
    assert Kernel().tracer is NULL_TRACER

    enable_tracing()
    kernel = Kernel()
    assert kernel.tracer is not NULL_TRACER
    assert kernel.tracer.enabled

    reset_tracing()
    assert Kernel().tracer is NULL_TRACER


def test_tracer_for_clock_registers_tracers():
    from repro.obs.trace import active_tracers

    enable_tracing()
    a = tracer_for_clock(lambda: 0.0)
    b = tracer_for_clock(lambda: 0.0)
    assert a is not b
    assert active_tracers() == [a, b]
    reset_tracing()
    assert active_tracers() == []
