"""Unit tests for DirectStoreClient and the function registry."""

import pytest

from repro.faas import DirectStoreClient, FunctionSpec, NoSuchFunction
from repro.faas.registry import FunctionRegistry
from repro.sim import Kernel
from repro.storage import ObjectStore, SWIFT_PROFILE


def make_store():
    kernel = Kernel()
    store = ObjectStore(kernel, profile=SWIFT_PROFILE)
    store.rng = None
    store.create_bucket("b")
    return kernel, store


def test_direct_client_roundtrip():
    kernel, store = make_store()
    client = DirectStoreClient(store)

    def scenario():
        yield from client.write("b", "o", {"k": 1}, 100)
        obj = yield from client.read("b", "o")
        yield from client.delete("b", "o")
        return obj

    obj = kernel.run_process(scenario())
    assert obj.payload == {"k": 1}
    assert not store.contains("b", "o")


def test_direct_client_creates_buckets_on_write():
    kernel, store = make_store()
    client = DirectStoreClient(store)

    def scenario():
        yield from client.write("new-bucket", "o", None, 10)

    kernel.run_process(scenario())
    assert store.has_bucket("new-bucket")


def test_direct_client_ignores_pipeline_hints():
    """The baseline client has no cache: intermediate flags are inert."""
    kernel, store = make_store()
    client = DirectStoreClient(store)

    def scenario():
        yield from client.write(
            "b", "o", "x", 10, intermediate=True, pipeline_id="p-1"
        )

    kernel.run_process(scenario())
    assert not store.peek_meta("b", "o").is_shadow  # full write happened


# -- registry --------------------------------------------------------------------


def body(ctx):
    return
    yield  # pragma: no cover


def test_registry_lookup_by_tenant_and_name():
    registry = FunctionRegistry()
    spec = FunctionSpec(name="f", tenant="t", body=body)
    registry.register(spec)
    assert registry.get("t", "f") is spec
    assert registry.get_by_key("t/f") is spec
    assert "t/f" in registry
    assert "t/g" not in registry


def test_registry_unknown_function_raises():
    registry = FunctionRegistry()
    with pytest.raises(NoSuchFunction):
        registry.get("t", "ghost")
    with pytest.raises(NoSuchFunction):
        registry.get_by_key("t/ghost")


def test_registry_same_name_different_tenants():
    registry = FunctionRegistry()
    a = FunctionSpec(name="f", tenant="alice", body=body)
    b = FunctionSpec(name="f", tenant="bob", body=body)
    registry.register(a)
    registry.register(b)
    assert registry.get("alice", "f") is a
    assert registry.get("bob", "f") is b
    assert len(registry.all_functions()) == 2


def test_registry_model_storage_roundtrip():
    registry = FunctionRegistry()
    registry.register(FunctionSpec(name="f", tenant="t", body=body))
    registry.store_model("t/f", "memory", {"fake": "model"})
    assert registry.load_model("t/f", "memory") == {"fake": "model"}
    assert registry.load_model("t/f", "benefit") is None
    with pytest.raises(NoSuchFunction):
        registry.store_model("t/ghost", "memory", {})


def test_reregistering_replaces_spec():
    registry = FunctionRegistry()
    registry.register(FunctionSpec(name="f", tenant="t", body=body,
                                   booked_memory_mb=256))
    registry.register(FunctionSpec(name="f", tenant="t", body=body,
                                   booked_memory_mb=1024))
    assert registry.get("t", "f").booked_memory_mb == 1024
