"""Tests for the pluggable keep-alive policies."""

import pytest

from repro.faas import InvocationRequest
from repro.faas.keepalive import FixedKeepAlive, HistogramKeepAlive
from repro.faas.sandbox import Sandbox, SandboxState
from tests.faas.conftest import deploy
from tests.faas.test_platform import invoke, seed_input


def make_sandbox(function_key="t/f"):
    sandbox = Sandbox("w0", function_key, 256.0, created_at=0.0)
    sandbox.state = SandboxState.IDLE
    return sandbox


def test_fixed_policy_constant():
    policy = FixedKeepAlive(600.0)
    assert policy.timeout_for(make_sandbox()) == 600.0
    with pytest.raises(ValueError):
        FixedKeepAlive(0.0)


def test_histogram_policy_defaults_without_history():
    policy = HistogramKeepAlive(default_s=600.0)
    assert policy.timeout_for(make_sandbox()) == 600.0


def test_histogram_policy_tracks_interarrival_times():
    policy = HistogramKeepAlive(min_history=3, default_s=600.0)
    now = 0.0
    for _ in range(10):
        policy.record_invocation("t/f", now)
        now += 30.0
    timeout = policy.timeout_for(make_sandbox("t/f"))
    # All gaps are 30 s: keep-alive = 1.2 x 30 = 36 s, not 600 s.
    assert timeout == pytest.approx(36.0)


def test_histogram_policy_bounded():
    policy = HistogramKeepAlive(min_history=2, floor_s=10.0, cap_s=100.0)
    now = 0.0
    for _ in range(5):
        policy.record_invocation("t/fast", now)
        now += 0.5
    assert policy.timeout_for(make_sandbox("t/fast")) == 10.0  # floor
    now = 0.0
    for _ in range(5):
        policy.record_invocation("t/slow", now)
        now += 5000.0
    assert policy.timeout_for(make_sandbox("t/slow")) == 100.0  # cap


def test_histogram_policy_is_per_function():
    policy = HistogramKeepAlive(min_history=2)
    now = 0.0
    for _ in range(5):
        policy.record_invocation("t/a", now)
        now += 20.0
    assert policy.timeout_for(make_sandbox("t/a")) < 100.0
    assert policy.timeout_for(make_sandbox("t/b")) == policy.default_s


def test_invalid_percentile_rejected():
    with pytest.raises(ValueError):
        HistogramKeepAlive(percentile=0.0)


def test_histogram_policy_reaps_rare_functions_quickly(env):
    """End to end: frequently-invoked function keeps its sandbox warm
    while the adaptive timeout reclaims it fast after the rhythm stops."""
    kernel, store, platform = env
    deploy(platform)
    seed_input(kernel, store)
    platform.set_keepalive_policy(
        HistogramKeepAlive(min_history=3, floor_s=5.0, cap_s=300.0)
    )
    # Invoke every 20 s: a rhythm the policy learns.
    records = []
    for _ in range(8):
        records.append(invoke(kernel, platform, input_ref="inputs/in"))
        kernel.run(until=kernel.now + 20.0)
    # Warm within the rhythm.
    assert sum(1 for r in records[3:] if not r.cold_start) >= 4
    # After the rhythm stops, the sandbox dies in ~24 s, not 600 s.
    kernel.run(until=kernel.now + 60.0)
    node = platform.invoker_by_id(records[-1].node)
    assert not node.idle_sandboxes("t0/fn")


def test_fixed_policy_matches_default_behaviour(env):
    kernel, store, platform = env
    deploy(platform)
    seed_input(kernel, store)
    platform.set_keepalive_policy(FixedKeepAlive(50.0))
    record = invoke(kernel, platform, input_ref="inputs/in")
    kernel.run(until=kernel.now + 40.0)
    node = platform.invoker_by_id(record.node)
    assert node.idle_sandboxes("t0/fn")  # still alive at 40 s
    kernel.run(until=kernel.now + 30.0)
    assert not node.idle_sandboxes("t0/fn")  # reaped after 50 s
