"""Shared fixtures for platform tests."""

import pytest

from repro.faas import FaaSPlatform, FunctionSpec, PlatformConfig
from repro.sim import Kernel
from repro.storage import ObjectStore, SWIFT_PROFILE


def make_etl_body(footprint_mb=100.0, compute_s=0.05, out_size=1000):
    """A canonical single-stage ETL function body for tests."""

    def body(ctx):
        request = ctx.request
        if request.input_ref:
            bucket, name = request.input_ref.split("/", 1)
            yield from ctx.read(bucket, name)
        yield from ctx.compute(compute_s, footprint_mb)
        yield from ctx.write(
            request.output_bucket, f"out-{request.request_id}", "result", out_size
        )

    return body


@pytest.fixture()
def env():
    kernel = Kernel()
    store = ObjectStore(kernel, profile=SWIFT_PROFILE)
    store.rng = None
    for bucket in ("inputs", "outputs"):
        store.create_bucket(bucket)
    platform = FaaSPlatform(kernel, store, PlatformConfig(node_memory_mb=4096))
    return kernel, store, platform


def deploy(platform, name="fn", tenant="t0", booked=512.0, **body_kwargs):
    spec = FunctionSpec(
        name=name,
        tenant=tenant,
        body=make_etl_body(**body_kwargs),
        booked_memory_mb=booked,
    )
    platform.register_function(spec)
    return spec
