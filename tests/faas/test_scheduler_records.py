"""Unit tests for the stock scheduler and invocation records."""

import pytest

from repro.faas.invoker import Invoker
from repro.faas.records import InvocationRecord, InvocationRequest, Phases
from repro.faas.registry import FunctionSpec
from repro.faas.scheduler import home_index, HomeWorkerScheduler
from repro.sim import Kernel


def make_invokers(kernel, n=4, total_mb=2048.0):
    return [Invoker(kernel, f"w{i}", total_mb) for i in range(n)]


def test_home_index_is_deterministic():
    assert home_index("t", "f", 4) == home_index("t", "f", 4)


def test_home_index_spreads_functions():
    indices = {home_index("t", f"f{i}", 4) for i in range(40)}
    assert indices == {0, 1, 2, 3}


def test_scheduler_prefers_home_worker():
    kernel = Kernel()
    invokers = make_invokers(kernel)
    scheduler = HomeWorkerScheduler()
    request = InvocationRequest(function="f", tenant="t")
    expected = invokers[home_index("t", "f", 4)]
    assert scheduler.choose_node(request, 256.0, invokers) is expected


def test_scheduler_prefers_warm_sandbox_anywhere():
    kernel = Kernel()
    invokers = make_invokers(kernel)
    scheduler = HomeWorkerScheduler()
    request = InvocationRequest(function="f", tenant="t")
    home = home_index("t", "f", 4)
    other = invokers[(home + 2) % 4]

    def body(ctx):
        return
        yield  # pragma: no cover

    spec = FunctionSpec(name="f", tenant="t", body=body)
    kernel.run_until(kernel.process(other.create_sandbox(spec, 256.0)))
    assert scheduler.choose_node(request, 256.0, invokers) is other


def test_scheduler_skips_full_home():
    kernel = Kernel()
    invokers = make_invokers(kernel, total_mb=512.0)
    scheduler = HomeWorkerScheduler()
    request = InvocationRequest(function="f", tenant="t")
    home = invokers[home_index("t", "f", 4)]
    home.cache_reserved_mb = 512.0  # home is out of memory
    chosen = scheduler.choose_node(request, 256.0, invokers)
    assert chosen is not home


def test_scheduler_respects_exclusions():
    kernel = Kernel()
    invokers = make_invokers(kernel)
    scheduler = HomeWorkerScheduler()
    request = InvocationRequest(function="f", tenant="t")
    exclude = {inv.node_id for inv in invokers[:3]}
    chosen = scheduler.choose_node(request, 256.0, invokers, exclude=exclude)
    assert chosen is invokers[3]
    assert (
        scheduler.choose_node(
            request, 256.0, invokers, exclude={i.node_id for i in invokers}
        )
        is None
    )


# -- records -------------------------------------------------------------------


def test_request_ids_are_unique():
    a = InvocationRequest(function="f", tenant="t")
    b = InvocationRequest(function="f", tenant="t")
    assert a.request_id != b.request_id
    assert a.key == "t/f"


def test_phases_totals_and_el_fraction():
    phases = Phases(extract=1.0, transform=2.0, load=1.0)
    assert phases.total == 4.0
    assert phases.el_fraction == pytest.approx(0.5)
    assert Phases().el_fraction == 0.0


def test_record_wasted_memory():
    record = InvocationRecord(
        request=InvocationRequest(function="f", tenant="t"),
        booked_memory_mb=512.0,
        peak_memory_mb=100.0,
    )
    assert record.wasted_memory_mb == 412.0
    record.peak_memory_mb = 700.0
    assert record.wasted_memory_mb == 0.0  # never negative


def test_record_durations():
    record = InvocationRecord(
        request=InvocationRequest(function="f", tenant="t"),
        submitted_at=1.0,
        started_at=1.5,
        finished_at=3.0,
    )
    assert record.duration == pytest.approx(2.0)
    assert record.execution_time == pytest.approx(1.5)
