"""Unit tests for pipeline data structures."""

import pytest

from repro.faas.pipeline import (
    fan_out_over_refs,
    Pipeline,
    PipelineRecord,
    Stage,
    StageRecord,
)
from repro.faas.records import InvocationRecord, InvocationRequest, Phases


def make_record(status="ok", extract=1.0, transform=2.0, load=1.0):
    record = InvocationRecord(
        request=InvocationRequest(function="f", tenant="t"), status=status
    )
    record.phases = Phases(extract=extract, transform=transform, load=load)
    return record


def test_default_planner_single_invocation():
    pipeline = Pipeline(name="p", stages=[Stage("f")])
    plans = pipeline.stages[0].planner(["a/b", "c/d"], {"k": 1})
    assert plans == [({"k": 1}, "a/b")]


def test_default_planner_with_no_refs():
    pipeline = Pipeline(name="p", stages=[Stage("f")])
    assert pipeline.stages[0].planner([], {}) == [({}, None)]


def test_fan_out_planner_one_per_ref():
    plans = fan_out_over_refs(["a/1", "a/2", "a/3"], {"x": 2})
    assert len(plans) == 3
    assert all(args == {"x": 2} for args, _ref in plans)
    assert [ref for _args, ref in plans] == ["a/1", "a/2", "a/3"]


def test_fan_out_planner_copies_args():
    plans = fan_out_over_refs(["a/1", "a/2"], {"x": []})
    plans[0][0]["x"].append(1)
    assert plans[1][0]["x"] == [1] or plans[1][0]["x"] == []  # not aliased
    base = {"x": 2}
    plans = fan_out_over_refs(["a/1"], base)
    plans[0][0]["x"] = 99
    assert base["x"] == 2


def test_pipeline_ids_increase():
    pipeline = Pipeline(name="p", stages=[Stage("f")])
    first = pipeline.new_id()
    second = pipeline.new_id()
    assert first != second
    assert first.startswith("p-")


def test_stage_record_wall_time_and_split():
    stage = StageRecord(function="f", started_at=10.0, finished_at=14.0)
    stage.records = [make_record(), make_record()]
    split = stage.phase_split()
    assert stage.wall_time == 4.0
    assert split.total == pytest.approx(4.0)
    # Phases split in the 1:2:1 ratio of the records.
    assert split.extract == pytest.approx(1.0)
    assert split.transform == pytest.approx(2.0)
    assert split.load == pytest.approx(1.0)


def test_stage_record_split_with_no_ok_records():
    stage = StageRecord(function="f", started_at=0.0, finished_at=1.0)
    stage.records = [make_record(status="failed")]
    split = stage.phase_split()
    assert split.total == 0.0


def test_pipeline_record_status_and_aggregate():
    prec = PipelineRecord(
        pipeline="p", pipeline_id="p-1", submitted_at=0.0, finished_at=10.0
    )
    good = StageRecord(function="a", started_at=0.0, finished_at=4.0)
    good.records = [make_record()]
    bad = StageRecord(function="b", started_at=4.0, finished_at=10.0)
    bad.records = [make_record(status="failed"), make_record()]
    prec.stage_records = [good, bad]
    assert prec.duration == 10.0
    assert prec.status == "failed"
    assert len(prec.all_records()) == 3
    prec.stage_records = [good]
    assert prec.status == "ok"
