"""Integration tests for the FaaS platform core."""

import pytest

from repro.faas import InvocationRequest, NoSuchFunction
from repro.faas.platform import SizingDecision
from tests.faas.conftest import deploy


def seed_input(kernel, store, name="in", size=16 * 1024):
    def scenario():
        yield from store.put("inputs", name, {"kind": "image"}, size=size)

    kernel.run_process(scenario())


def invoke(kernel, platform, **kwargs):
    """Run one invocation without draining future timers (keep-alive)."""
    kwargs.setdefault("function", "fn")
    kwargs.setdefault("tenant", "t0")
    request = InvocationRequest(**kwargs)
    return kernel.run_until(kernel.process(platform.invoke(request)))


def test_basic_invocation_succeeds(env):
    kernel, store, platform = env
    deploy(platform)
    seed_input(kernel, store)
    record = invoke(kernel, platform, input_ref="inputs/in")
    assert record.status == "ok"
    assert record.cold_start
    assert record.duration > 0
    assert record.output_refs == [f"out-{record.request.request_id}"] or (
        record.output_refs[0].startswith("outputs/")
    )
    assert store.contains("outputs", record.output_refs[0].split("/", 1)[1])


def test_unknown_function_raises(env):
    kernel, _store, platform = env
    with pytest.raises(NoSuchFunction):
        invoke(kernel, platform, function="nope")


def test_phases_are_recorded(env):
    kernel, store, platform = env
    deploy(platform, compute_s=0.2)
    seed_input(kernel, store)
    record = invoke(kernel, platform, input_ref="inputs/in")
    # Extract: one Swift GET (~38 ms base); Load: one Swift PUT (~95 ms).
    assert 0.02 < record.phases.extract < 0.2
    assert 0.05 < record.phases.load < 0.3
    assert record.phases.transform == pytest.approx(0.2, rel=0.05)


def test_warm_start_reuses_sandbox(env):
    kernel, store, platform = env
    deploy(platform)
    seed_input(kernel, store)
    first = invoke(kernel, platform, input_ref="inputs/in")
    second = invoke(kernel, platform, input_ref="inputs/in")
    assert first.cold_start
    assert not second.cold_start
    assert second.sandbox_id == first.sandbox_id
    assert second.duration < first.duration


def test_keepalive_reaps_idle_sandbox(env):
    kernel, store, platform = env
    deploy(platform)
    seed_input(kernel, store)
    first = invoke(kernel, platform, input_ref="inputs/in")
    kernel.run(until=kernel.now + 700.0)  # past the 600 s keep-alive
    second = invoke(kernel, platform, input_ref="inputs/in")
    assert second.cold_start
    assert second.sandbox_id != first.sandbox_id
    node = platform.invoker_by_id(first.node)
    assert node.stats.sandboxes_reaped == 1


def test_sandbox_survives_within_keepalive(env):
    kernel, store, platform = env
    deploy(platform)
    seed_input(kernel, store)
    first = invoke(kernel, platform, input_ref="inputs/in")
    kernel.run(until=kernel.now + 400.0)
    second = invoke(kernel, platform, input_ref="inputs/in")
    assert not second.cold_start
    assert second.sandbox_id == first.sandbox_id


def test_peak_memory_tracked(env):
    kernel, store, platform = env
    deploy(platform, footprint_mb=300.0)
    seed_input(kernel, store)
    record = invoke(kernel, platform, input_ref="inputs/in")
    assert record.peak_memory_mb == pytest.approx(300.0, rel=0.01)
    assert record.memory_limit_mb == 512.0
    assert record.wasted_memory_mb == pytest.approx(212.0, rel=0.05)


def test_oom_kill_and_retry_with_booked_memory(env):
    kernel, store, platform = env
    deploy(platform, footprint_mb=400.0, booked=512.0)
    seed_input(kernel, store)

    def tiny_sizing(request, spec, record):
        return SizingDecision(memory_mb=128.0, predicted_mb=128.0)
        yield  # pragma: no cover

    platform.sizing_policy = tiny_sizing
    record = invoke(kernel, platform, input_ref="inputs/in")
    assert record.status == "ok"
    assert record.retries == 1
    assert record.oom_kills == 1
    assert record.memory_limit_mb == 512.0
    # The OOM-killed sandbox was destroyed and a new one created.
    node = platform.invoker_by_id(record.node)
    assert node.stats.oom_kills >= 1


def test_invocation_fails_when_booked_too_small(env):
    kernel, store, platform = env
    deploy(platform, footprint_mb=800.0, booked=256.0)
    seed_input(kernel, store)
    record = invoke(kernel, platform, input_ref="inputs/in")
    assert record.status == "failed"
    assert record.oom_kills >= 1


def test_memory_clamped_to_platform_range(env):
    kernel, store, platform = env
    deploy(platform, footprint_mb=10.0, booked=4096.0)
    seed_input(kernel, store)
    record = invoke(kernel, platform, input_ref="inputs/in")
    assert record.memory_limit_mb == 2048.0  # max sandbox size


def test_completion_listener_fires(env):
    kernel, store, platform = env
    deploy(platform)
    seed_input(kernel, store)
    seen = []
    platform.completion_listeners.append(lambda r: seen.append(r.status))
    invoke(kernel, platform, input_ref="inputs/in")
    assert seen == ["ok"]


def test_sizing_policy_drives_sandbox_size(env):
    kernel, store, platform = env
    deploy(platform, footprint_mb=100.0)
    seed_input(kernel, store)

    def sizing(request, spec, record):
        yield kernel.timeout(0.006)
        return SizingDecision(memory_mb=160.0, predicted_mb=160.0, should_cache=True)

    platform.sizing_policy = sizing
    record = invoke(kernel, platform, input_ref="inputs/in")
    assert record.status == "ok"
    assert record.memory_limit_mb == 160.0
    assert record.predicted_memory_mb == 160.0
    assert record.should_cache is True


def test_records_accumulate(env):
    kernel, store, platform = env
    deploy(platform)
    seed_input(kernel, store)
    for _ in range(3):
        invoke(kernel, platform, input_ref="inputs/in")
    assert len(platform.records) == 3


def test_home_worker_affinity(env):
    kernel, store, platform = env
    deploy(platform)
    seed_input(kernel, store)
    nodes = {invoke(kernel, platform, input_ref="inputs/in").node for _ in range(4)}
    assert len(nodes) == 1  # same (tenant, function) -> same home worker


def test_concurrent_invocations_create_parallel_sandboxes(env):
    kernel, store, platform = env
    deploy(platform, compute_s=1.0)
    seed_input(kernel, store)
    procs = [
        platform.submit(
            InvocationRequest(function="fn", tenant="t0", input_ref="inputs/in")
        )
        for _ in range(3)
    ]
    kernel.run()
    records = [p.value for p in procs]
    assert all(r.status == "ok" for r in records)
    assert len({r.sandbox_id for r in records}) == 3
    assert all(r.cold_start for r in records)


def test_monitor_rescue_prevents_oom(env):
    kernel, store, platform = env
    deploy(platform, footprint_mb=400.0, compute_s=0.5)
    seed_input(kernel, store)

    class RescuingMonitor:
        def __init__(self, record, node):
            self.node = node

        def on_pressure(self, ctx, usage, footprint_mb):
            yield from self.node.resize_sandbox(ctx.sandbox, footprint_mb + 64)
            return True

    def tiny_sizing(request, spec, record):
        return SizingDecision(memory_mb=128.0)
        yield  # pragma: no cover

    platform.sizing_policy = tiny_sizing
    platform.monitor_factory = RescuingMonitor
    record = invoke(kernel, platform, input_ref="inputs/in")
    assert record.status == "ok"
    assert record.oom_kills == 0
    assert record.retries == 0
    assert record.memory_limit_mb == pytest.approx(464.0)
