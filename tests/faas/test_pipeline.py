"""Tests for pipeline (sequence) execution."""

import pytest

from repro.faas import FunctionSpec, Pipeline, Stage
from repro.faas.pipeline import fan_out_over_refs


def make_stage_body(out_names, compute_s=0.05, footprint_mb=100.0, out_size=500):
    """A stage body producing ``out_names(ctx)`` output objects."""

    def body(ctx):
        request = ctx.request
        if request.input_ref:
            bucket, name = request.input_ref.split("/", 1)
            yield from ctx.read(bucket, name)
        yield from ctx.compute(compute_s, footprint_mb)
        for out_name in out_names(ctx):
            yield from ctx.write(request.output_bucket, out_name, "data", out_size)

    return body


@pytest.fixture()
def pipeline_env(env):
    kernel, store, platform = env

    def seed():
        yield from store.put("inputs", "doc", {"kind": "text"}, size=30000)

    kernel.run_process(seed())

    platform.register_function(
        FunctionSpec(
            name="splitter",
            tenant="t0",
            body=make_stage_body(
                lambda ctx: [f"chunk-{ctx.request.request_id}-{i}" for i in range(3)]
            ),
            booked_memory_mb=256,
        )
    )
    platform.register_function(
        FunctionSpec(
            name="mapper",
            tenant="t0",
            body=make_stage_body(lambda ctx: [f"mapped-{ctx.request.request_id}"]),
            booked_memory_mb=256,
        )
    )
    platform.register_function(
        FunctionSpec(
            name="reducer",
            tenant="t0",
            body=make_stage_body(lambda ctx: ["final-result"]),
            booked_memory_mb=256,
        )
    )
    pipeline = Pipeline(
        name="wordcount",
        stages=[
            Stage("splitter"),
            Stage("mapper", planner=fan_out_over_refs),
            Stage("reducer"),
        ],
    )
    return kernel, store, platform, pipeline


def run_pipeline(kernel, platform, pipeline, **kwargs):
    kwargs.setdefault("tenant", "t0")
    kwargs.setdefault("input_refs", ["inputs/doc"])
    process = kernel.process(
        platform.invoke_pipeline(pipeline, **kwargs)
    )
    return kernel.run_until(process)


def test_pipeline_runs_all_stages(pipeline_env):
    kernel, store, platform, pipeline = pipeline_env
    record = run_pipeline(kernel, platform, pipeline)
    assert record.status == "ok"
    assert [s.function for s in record.stage_records] == [
        "splitter",
        "mapper",
        "reducer",
    ]
    assert store.contains("outputs", "final-result")


def test_fan_out_creates_one_invocation_per_ref(pipeline_env):
    kernel, _store, platform, pipeline = pipeline_env
    record = run_pipeline(kernel, platform, pipeline)
    assert len(record.stage_records[0].records) == 1
    assert len(record.stage_records[1].records) == 3  # 3 chunks -> 3 mappers
    assert len(record.stage_records[2].records) == 1


def test_intermediate_outputs_are_flagged(pipeline_env):
    kernel, _store, platform, pipeline = pipeline_env
    flags = []

    class SpyClient:
        def __init__(self, inner):
            self.inner = inner

        def read(self, bucket, name):
            obj = yield from self.inner.read(bucket, name)
            return obj

        def write(self, bucket, name, payload, size, **kwargs):
            flags.append((name, kwargs.get("intermediate")))
            yield from self.inner.write(bucket, name, payload, size, **kwargs)

        def delete(self, bucket, name):
            yield from self.inner.delete(bucket, name)

    original = platform.data_client_factory
    platform.data_client_factory = lambda node, record: SpyClient(
        original(node, record)
    )
    run_pipeline(kernel, platform, pipeline)
    by_name = dict(flags)
    assert by_name["final-result"] is False
    chunk_flags = [v for k, v in by_name.items() if k.startswith("chunk-")]
    mapped_flags = [v for k, v in by_name.items() if k.startswith("mapped-")]
    assert all(chunk_flags) and len(chunk_flags) == 3
    assert all(mapped_flags) and len(mapped_flags) == 3


def test_parallel_stage_overlaps_in_time(pipeline_env):
    kernel, _store, platform, pipeline = pipeline_env
    record = run_pipeline(kernel, platform, pipeline)
    mapper_stage = record.stage_records[1]
    starts = sorted(r.started_at for r in mapper_stage.records)
    ends = sorted(r.finished_at for r in mapper_stage.records)
    assert starts[-1] < ends[0]  # all three overlap


def test_pipeline_phase_split_sums_to_duration(pipeline_env):
    kernel, _store, platform, pipeline = pipeline_env
    record = run_pipeline(kernel, platform, pipeline)
    split = record.phase_split()
    stage_wall = sum(s.wall_time for s in record.stage_records)
    assert split.total == pytest.approx(stage_wall, rel=0.01)
    assert split.extract > 0 and split.transform > 0 and split.load > 0


def test_pipeline_listener_fires(pipeline_env):
    kernel, _store, platform, pipeline = pipeline_env
    seen = []
    platform.pipeline_listeners.append(lambda p: seen.append(p.pipeline_id))
    record = run_pipeline(kernel, platform, pipeline)
    assert seen == [record.pipeline_id]


def test_pipeline_ids_are_unique(pipeline_env):
    kernel, _store, platform, pipeline = pipeline_env
    r1 = run_pipeline(kernel, platform, pipeline)
    r2 = run_pipeline(kernel, platform, pipeline)
    assert r1.pipeline_id != r2.pipeline_id


def test_pipeline_aborts_on_stage_failure(pipeline_env):
    kernel, _store, platform, pipeline = pipeline_env

    def oom_body(ctx):
        yield from ctx.compute(0.05, 4096.0)  # always above any limit

    platform.register_function(
        FunctionSpec(name="mapper", tenant="t0", body=oom_body, booked_memory_mb=256)
    )
    record = run_pipeline(kernel, platform, pipeline)
    assert record.status == "failed"
    assert len(record.stage_records) == 2  # reducer never ran
