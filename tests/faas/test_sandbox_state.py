"""Tests for the sandbox state machine."""

import pytest

from repro.faas.sandbox import Sandbox, SandboxState


def make(limit=256.0):
    sandbox = Sandbox("w0", "t/f", limit, created_at=0.0)
    sandbox.state = SandboxState.IDLE
    return sandbox


def test_lifecycle_happy_path():
    sandbox = make()
    sandbox.reserve()
    assert sandbox.state == SandboxState.BUSY
    sandbox.begin_invocation(now=1.0)
    assert sandbox.invocations == 1
    sandbox.end_invocation(now=2.0)
    assert sandbox.idle
    assert sandbox.last_used_at == 2.0


def test_double_reserve_rejected():
    sandbox = make()
    sandbox.reserve()
    with pytest.raises(RuntimeError):
        sandbox.reserve()


def test_begin_without_reserve_rejected():
    sandbox = make()
    with pytest.raises(RuntimeError):
        sandbox.begin_invocation(now=0.0)


def test_end_without_begin_state_rejected():
    sandbox = make()
    with pytest.raises(RuntimeError):
        sandbox.end_invocation(now=0.0)


def test_generation_bumps_on_use():
    sandbox = make()
    g0 = sandbox.use_generation
    sandbox.reserve()
    sandbox.begin_invocation(now=0.0)
    sandbox.end_invocation(now=1.0)
    assert sandbox.use_generation >= g0 + 2


def test_kill_makes_dead_and_not_idle():
    sandbox = make()
    sandbox.kill()
    assert not sandbox.alive
    assert not sandbox.idle


def test_set_limit_validates():
    sandbox = make()
    sandbox.set_limit(512.0)
    assert sandbox.memory_limit_mb == 512.0
    with pytest.raises(ValueError):
        sandbox.set_limit(0.0)


def test_reserve_dead_sandbox_rejected():
    sandbox = make()
    sandbox.kill()
    with pytest.raises(RuntimeError):
        sandbox.reserve()


def test_sandbox_ids_unique():
    assert make().sandbox_id != make().sandbox_id
