"""Unit tests for Invoker memory accounting and sandbox management."""

import pytest

from repro.faas.errors import ResourceExhausted
from repro.faas.invoker import Invoker
from repro.faas.registry import FunctionSpec
from repro.faas.sandbox import SandboxState
from repro.sim import Kernel


def make_invoker(total_mb=2048.0, keepalive=600.0):
    return Invoker(Kernel(), "w0", total_mb, keepalive_s=keepalive)


def spec(name="fn", tenant="t"):
    def body(ctx):
        return
        yield  # pragma: no cover

    return FunctionSpec(name=name, tenant=tenant, body=body)


def run(invoker, gen):
    return invoker.kernel.run_until(invoker.kernel.process(gen))


def test_memory_accounting_starts_empty():
    invoker = make_invoker()
    assert invoker.committed_mb == 0.0
    assert invoker.available_mb == 2048.0


def test_create_sandbox_commits_memory():
    invoker = make_invoker()
    sandbox = run(invoker, invoker.create_sandbox(spec(), 512.0))
    assert invoker.committed_mb == 512.0
    assert invoker.available_mb == 1536.0
    assert sandbox.state == SandboxState.IDLE
    assert invoker.stats.cold_starts == 1


def test_create_sandbox_without_room_raises():
    invoker = make_invoker(total_mb=256.0)
    with pytest.raises(ResourceExhausted):
        run(invoker, invoker.create_sandbox(spec(), 512.0))
    # The failed reservation was rolled back.
    assert invoker.committed_mb == 0.0
    assert invoker.stats.capacity_rejections == 1


def test_cache_and_slack_reduce_availability():
    invoker = make_invoker()
    invoker.cache_reserved_mb = 1024.0
    invoker.slack_mb = 100.0
    assert invoker.available_mb == 924.0


def test_ensure_capacity_hook_invoked_on_pressure():
    invoker = make_invoker(total_mb=1024.0)
    invoker.cache_reserved_mb = 900.0
    calls = []

    def hook(inv, needed_mb):
        calls.append(needed_mb)
        inv.cache_reserved_mb -= needed_mb
        return True
        yield  # pragma: no cover

    invoker.ensure_capacity = hook
    run(invoker, invoker.create_sandbox(spec(), 512.0))
    assert len(calls) == 1
    assert calls[0] == pytest.approx(388.0)
    assert invoker.available_mb >= 0.0


def test_resize_sandbox_reverts_on_failure():
    invoker = make_invoker(total_mb=512.0)
    sandbox = run(invoker, invoker.create_sandbox(spec(), 256.0))
    with pytest.raises(ResourceExhausted):
        run(invoker, invoker.resize_sandbox(sandbox, 1024.0))
    assert sandbox.memory_limit_mb == 256.0


def test_resize_sandbox_shrink_never_blocks():
    invoker = make_invoker()
    sandbox = run(invoker, invoker.create_sandbox(spec(), 512.0))
    run(invoker, invoker.resize_sandbox(sandbox, 128.0))
    assert sandbox.memory_limit_mb == 128.0
    assert invoker.committed_mb == 128.0


def test_listeners_receive_lifecycle_events():
    invoker = make_invoker()
    events = []
    invoker.listeners.append(lambda event, sb: events.append(event))
    sandbox = run(invoker, invoker.create_sandbox(spec(), 256.0))
    run(invoker, invoker.resize_sandbox(sandbox, 300.0))
    invoker.destroy_sandbox(sandbox)
    assert events == ["created", "resized", "destroyed"]


def test_find_sandbox_prefers_closest_memory():
    invoker = make_invoker(total_mb=8192.0)
    small = run(invoker, invoker.create_sandbox(spec(), 128.0))
    large = run(invoker, invoker.create_sandbox(spec(), 1024.0))
    assert invoker.find_sandbox("t/fn", preferred_mb=1000.0) is large
    assert invoker.find_sandbox("t/fn", preferred_mb=100.0) is small


def test_find_sandbox_without_preference_takes_most_recent():
    invoker = make_invoker(total_mb=8192.0)
    first = run(invoker, invoker.create_sandbox(spec(), 256.0))
    kernel = invoker.kernel
    kernel.run(until=kernel.now + 10.0)
    second = run(invoker, invoker.create_sandbox(spec(), 256.0))
    assert invoker.find_sandbox("t/fn") is second
    assert first.idle  # untouched


def test_find_sandbox_ignores_other_functions():
    invoker = make_invoker()
    run(invoker, invoker.create_sandbox(spec(name="a"), 256.0))
    assert invoker.find_sandbox("t/b") is None


def test_reap_timer_respects_reuse():
    """A sandbox re-used before the keep-alive deadline survives."""
    kernel = Kernel()
    invoker = Invoker(kernel, "w0", 2048.0, keepalive_s=100.0)
    sandbox = run(invoker, invoker.create_sandbox(spec(), 256.0))
    sandbox.reserve()
    sandbox.begin_invocation(kernel.now)
    sandbox.end_invocation(kernel.now)
    invoker._schedule_reap(sandbox)
    # Re-use at t+50: bumps the generation, the old timer is stale.
    kernel.run(until=kernel.now + 50.0)
    sandbox.reserve()
    sandbox.begin_invocation(kernel.now)
    sandbox.end_invocation(kernel.now)
    invoker._schedule_reap(sandbox)
    kernel.run(until=kernel.now + 60.0)  # old timer fires here: no-op
    assert sandbox.alive
    kernel.run(until=kernel.now + 200.0)  # new timer reaps eventually
    assert not sandbox.alive
    assert invoker.stats.sandboxes_reaped == 1


def test_destroy_is_idempotent():
    invoker = make_invoker()
    sandbox = run(invoker, invoker.create_sandbox(spec(), 256.0))
    invoker.destroy_sandbox(sandbox)
    invoker.destroy_sandbox(sandbox)
    assert invoker.stats.sandboxes_destroyed == 1
