"""Legacy setup entry point.

Kept so that ``pip install -e . --no-use-pep517 --no-build-isolation``
works on offline machines that lack the ``wheel`` package; all project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
