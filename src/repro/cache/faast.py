"""Faa$T-style per-application auto-scaling cache (arXiv:2104.13869).

Faa$T gives every application its own cache, co-located with the
application's instances, and scales it *horizontally*: shards
("cachelets") are added when the application's working set or access
frequency outgrows the current fleet and removed when demand subsides.
This backend models that architecture over the simulated node pool:

* one :class:`_AppCache` per application (keyed by the object's tenant
  flag), holding 1..max shards pinned round-robin across live nodes;
* objects map to a shard at admission and *stay* there (a stable
  key->shard index, so rescaling never breaks read-your-writes);
* a periodic scaling loop sizes each application's fleet from a
  sliding window of bytes touched and ops issued, with hysteresis via
  idle-period teardown;
* shard memory is provisioned exclusively for caching, so the cost
  meter prices it at the dedicated rate — the axis on which OFC's
  harvested design wins.

Shards are mirrored onto a backup node (``OFCConfig.faast_replication``,
on by default): puts copy to the mirror in parallel, a crash *promotes*
the mirror to primary, and the repair pass re-creates missing mirrors.
The chaos harness found the original unreplicated design unsound under
OFC's write-back data plane: a dirty (write-back pending) object lives
*only* in its shard until the persistor lands it, so a node crash during
an RSDS outage destroyed acked writes.  ``faast_replication=False``
restores the pre-fix backend for regression tests.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Any, Dict, Generator, Iterator, List, Optional, Tuple
from zlib import crc32

from repro.cache.backend import CacheBackend
from repro.core.config import OFCConfig
from repro.kvcache.errors import CapacityExceeded, NoSuchKey, ObjectTooLarge
from repro.kvcache.objects import (
    BACKUP_WRITE,
    CacheObject,
    LOCAL_READ,
    LOCAL_WRITE,
    REMOTE_READ,
    REMOTE_WRITE,
)
from repro.sim.kernel import Kernel
from repro.sim.latency import CACHE_SCALE_EVICT, CACHE_SCALE_PLAIN, MB

#: Application key for objects without a tenant attribution.
SHARED_APP = "_shared"


@dataclass
class FaaSTStats:
    puts: int = 0
    gets_local: int = 0
    gets_remote: int = 0
    misses: int = 0
    deletes: int = 0
    evictions: int = 0
    scale_outs: int = 0
    scale_ins: int = 0
    apps_torn_down: int = 0
    shards_lost: int = 0
    objects_lost: int = 0
    backup_writes: int = 0
    shards_promoted: int = 0
    backups_repaired: int = 0


class _Shard:
    """One cachelet: a fixed-size LRU slab pinned to a node."""

    __slots__ = ("node_id", "backup_node", "capacity", "used_bytes", "objects")

    def __init__(self, node_id: str, capacity: int,
                 backup_node: Optional[str] = None):
        self.node_id = node_id
        #: Mirror host (None = under-replicated until the next repair).
        self.backup_node = backup_node
        self.capacity = capacity
        self.used_bytes = 0
        #: key -> CacheObject, LRU order (oldest first).
        self.objects: "OrderedDict[str, CacheObject]" = OrderedDict()

    def add(self, obj: CacheObject) -> None:
        self.objects[obj.key] = obj
        self.used_bytes += obj.size

    def remove(self, key: str) -> CacheObject:
        obj = self.objects.pop(key)
        self.used_bytes -= obj.size
        return obj

    def touch(self, key: str) -> None:
        self.objects.move_to_end(key)


class _AppCache:
    """Per-application shard fleet plus its demand window."""

    __slots__ = ("app", "shards", "index", "window_ops", "window_bytes",
                 "idle_periods")

    def __init__(self, app: str):
        self.app = app
        self.shards: List[_Shard] = []
        #: Stable key -> shard placement (survives rescaling).
        self.index: Dict[str, _Shard] = {}
        self.window_ops = 0
        self.window_bytes = 0
        self.idle_periods = 0

    def live_bytes(self) -> int:
        return sum(s.used_bytes for s in self.shards)


class FaaSTBackend(CacheBackend):
    """Per-application horizontally auto-scaling cache."""

    name = "faast"

    def __init__(
        self,
        kernel: Kernel,
        node_ids: List[str],
        config: Optional[OFCConfig] = None,
        rng=None,
        max_object_size: Optional[int] = None,
    ):
        super().__init__(
            kernel, node_ids, config=config, rng=rng,
            max_object_size=max_object_size,
        )
        self.shard_bytes = int(self.config.faast_shard_mb * MB)
        self.stats = FaaSTStats()
        self._apps: Dict[str, _AppCache] = {}
        self._down: set = set()
        self._node_rr = 0
        self._started = False
        self._replication = bool(self.config.faast_replication)
        #: Promotions performed by crash() whose fail-over latency and
        #: object count recover() still has to account for.
        self._promotions_pending = 0
        self._promoted_objects = 0

    # -- helpers -------------------------------------------------------------

    def _live_nodes(self) -> List[str]:
        return [n for n in self.node_ids if n not in self._down]

    def _next_node(self) -> Optional[str]:
        """Deterministic round-robin over live nodes."""
        live = self._live_nodes()
        if not live:
            return None
        node = live[self._node_rr % len(live)]
        self._node_rr += 1
        return node

    def _app_of(self, flags: Optional[Dict[str, Any]]) -> str:
        return (flags or {}).get("tenant") or SHARED_APP

    def _app_cache(self, app: str) -> _AppCache:
        cache = self._apps.get(app)
        if cache is None:
            cache = self._apps[app] = _AppCache(app)
        return cache

    def _pick_backup(self, primary: str) -> Optional[str]:
        """Deterministic mirror host: round-robin over live nodes other
        than the primary (None when the primary is the only one up)."""
        live = [n for n in self._live_nodes() if n != primary]
        if not live:
            return None
        node = live[self._node_rr % len(live)]
        self._node_rr += 1
        return node

    def _backup_live(self, shard: _Shard) -> bool:
        return (
            shard.backup_node is not None
            and shard.backup_node not in self._down
        )

    def _add_shard(self, cache: _AppCache) -> Optional[_Shard]:
        node = self._next_node()
        if node is None:
            return None
        backup = self._pick_backup(node) if self._replication else None
        shard = _Shard(node, self.shard_bytes, backup_node=backup)
        cache.shards.append(shard)
        self._sync_cost()
        return shard

    def _sync_cost(self) -> None:
        # Mirrored shards reserve their slab on the backup node too.
        total = self.total_capacity
        if self._replication:
            total += sum(
                s.capacity
                for c in self._apps.values()
                for s in c.shards
                if self._backup_live(s)
            )
        self.cost.set_memory(dedicated_mb=total / MB)

    def _find(self, key: str) -> Optional[Tuple[_AppCache, _Shard]]:
        for cache in self._apps.values():
            shard = cache.index.get(key)
            if shard is not None:
                return cache, shard
        return None

    def _drop_object(self, cache: _AppCache, shard: _Shard, key: str,
                     lost: bool = False) -> CacheObject:
        obj = shard.remove(key)
        del cache.index[key]
        if lost:
            self.stats.objects_lost += 1
        self._removed(obj)
        return obj

    def _make_room(self, cache: _AppCache, shard: _Shard, size: int) -> bool:
        """Evict clean LRU entries from ``shard`` until ``size`` fits.
        Dirty (write-back pending) entries are never evicted — if they
        block admission the put degrades to the store, like OFC."""
        if size > shard.capacity:
            return False
        while shard.used_bytes + size > shard.capacity:
            victim_key = None
            for key, obj in shard.objects.items():
                if not obj.flags.get("dirty", False):
                    victim_key = key
                    break
            if victim_key is None:
                return False
            self._drop_object(cache, shard, victim_key)
            self.stats.evictions += 1
        return True

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.kernel.process(self._scale_loop(), name="faast-scaler")

    # -- data plane ----------------------------------------------------------

    def put(
        self,
        key: str,
        value: Any,
        size: int,
        caller: str,
        flags: Optional[Dict[str, Any]] = None,
    ) -> Generator[Any, Any, str]:
        if size > self.max_object_size:
            raise ObjectTooLarge(f"{key}: {size} bytes")
        if size > self.shard_bytes:
            raise ObjectTooLarge(f"{key}: {size} bytes > shard size")
        app = self._app_of(flags)
        cache = self._app_cache(app)
        version = 1
        # Replace any existing copy (possibly under another app if the
        # attribution changed between writes).
        found = self._find(key)
        if found is not None:
            old_cache, old_shard = found
            old = self._drop_object(old_cache, old_shard, key)
            version = old.version + 1
        if not cache.shards and self._add_shard(cache) is None:
            raise CapacityExceeded("no live node can host a shard")
        shard = cache.shards[crc32(key.encode()) % len(cache.shards)]
        if not self._make_room(cache, shard, size):
            # The hashed shard is pinned full; try any sibling with room.
            shard = next(
                (s for s in cache.shards
                 if self._make_room(cache, s, size)),
                None,
            )
            if shard is None:
                raise CapacityExceeded(f"app {app}: no shard fits {size} B")
        obj = CacheObject(
            key=key,
            value=value,
            size=size,
            version=version,
            created_at=self.kernel.now,
            t_access=self.kernel.now,
            flags=dict(flags or {}),
        )
        shard.add(obj)
        cache.index[key] = shard
        self._admitted(obj)
        cache.window_ops += 1
        cache.window_bytes += size
        self.stats.puts += 1
        if shard.node_id == caller:
            primary = self._delay(LOCAL_WRITE, size)
        else:
            primary = self._remote_delay(REMOTE_WRITE, size)
        if self._replication and self._backup_live(shard):
            # Mirror in parallel with the primary write: the put acks
            # once both copies landed.
            self.stats.backup_writes += 1
            self.cost.count("backup_ops")
            yield max(primary, self._remote_delay(BACKUP_WRITE, size))
        else:
            yield primary
        return shard.node_id

    def get(self, key: str, caller: str) -> Generator[Any, Any, CacheObject]:
        found = self._find(key)
        if found is None:
            self.stats.misses += 1
            raise NoSuchKey(key)
        cache, shard = found
        obj = shard.objects[key]
        if shard.node_id == caller:
            yield self._delay(LOCAL_READ, obj.size)
        else:
            yield self._remote_delay(REMOTE_READ, obj.size)
        obj.n_access += 1
        obj.t_access = self.kernel.now
        shard.touch(key)
        cache.window_ops += 1
        cache.window_bytes += obj.size
        if shard.node_id == caller:
            self.stats.gets_local += 1
        else:
            self.stats.gets_remote += 1
        return obj.copy()

    def delete(self, key: str, caller: str) -> Generator[Any, Any, None]:
        found = self._find(key)
        if found is None:
            raise NoSuchKey(key)
        cache, shard = found
        self._drop_object(cache, shard, key)
        self.stats.deletes += 1
        model = LOCAL_WRITE if shard.node_id == caller else REMOTE_WRITE
        yield self._delay(model)

    def peek(self, key: str) -> Optional[CacheObject]:
        found = self._find(key)
        if found is None:
            return None
        _cache, shard = found
        return shard.objects[key]

    def set_flags(self, key: str, **flags: Any) -> None:
        obj = self.peek(key)
        if obj is None:
            raise NoSuchKey(key)
        obj.flags.update(flags)

    def location_of(self, key: str) -> Optional[str]:
        found = self._find(key)
        if found is None:
            return None
        return found[1].node_id

    def objects(self) -> Iterator[Tuple[str, CacheObject]]:
        for app in sorted(self._apps):
            for shard in self._apps[app].shards:
                for obj in list(shard.objects.values()):
                    yield shard.node_id, obj

    # -- capacity ------------------------------------------------------------

    @property
    def total_capacity(self) -> int:
        return sum(
            s.capacity for c in self._apps.values() for s in c.shards
        )

    @property
    def total_used(self) -> int:
        return sum(c.live_bytes() for c in self._apps.values())

    # -- autoscaling ---------------------------------------------------------

    def _scale_loop(self) -> Generator:
        period = self.config.faast_scale_period_s
        while True:
            yield period
            yield from self._rescale_all()

    def _target_shards(self, cache: _AppCache) -> int:
        """Shards the window's demand justifies: working-set bytes with
        headroom, or access frequency, whichever asks for more."""
        ws = max(cache.window_bytes, cache.live_bytes())
        by_ws = -(-int(ws * (1.0 + self.config.faast_ws_headroom))
                  // self.shard_bytes)
        by_freq = -(-cache.window_ops // self.config.faast_ops_per_shard)
        target = max(1, by_ws, by_freq)
        return min(self.config.faast_max_shards_per_app, target)

    def _rescale_all(self) -> Generator:
        for app in sorted(self._apps):
            cache = self._apps[app]
            if cache.window_ops == 0 and cache.live_bytes() == 0:
                cache.idle_periods += 1
                if cache.idle_periods >= self.config.faast_idle_periods:
                    # Tear the application's cache down entirely.
                    for _ in cache.shards:
                        self.stats.scale_ins += 1
                    cache.shards = []
                    cache.index = {}
                    del self._apps[app]
                    self.stats.apps_torn_down += 1
                    self._sync_cost()
                continue
            cache.idle_periods = 0
            target = self._target_shards(cache)
            while len(cache.shards) < target:
                if self._add_shard(cache) is None:
                    break
                self.stats.scale_outs += 1
                yield self._delay(CACHE_SCALE_PLAIN)
            while len(cache.shards) > target:
                if not (yield from self._remove_one_shard(cache)):
                    break
            cache.window_ops = 0
            cache.window_bytes = 0

    def _remove_one_shard(self, cache: _AppCache) -> Generator:
        """Drain the emptiest shard: re-home what fits elsewhere, evict
        clean leftovers, refuse if a dirty entry cannot be re-homed."""
        shard = min(cache.shards, key=lambda s: (s.used_bytes, s.node_id))
        rest = [s for s in cache.shards if s is not shard]
        evicting = False
        for key in list(shard.objects):
            obj = shard.objects[key]
            dest = next(
                (s for s in rest
                 if s.used_bytes + obj.size <= s.capacity),
                None,
            )
            if dest is not None:
                shard.remove(key)
                dest.add(obj)
                cache.index[key] = dest
                continue
            if obj.flags.get("dirty", False):
                return False  # never drop unpersisted data for a scale-in
            self._drop_object(cache, shard, key)
            self.stats.evictions += 1
            evicting = True
        cache.shards.remove(shard)
        self.stats.scale_ins += 1
        self._sync_cost()
        yield self._delay(CACHE_SCALE_EVICT if evicting else CACHE_SCALE_PLAIN)
        return True

    # -- faults --------------------------------------------------------------

    def crash(self, node_id: str) -> None:
        """Fail-stop a node.  With replication, shards it hosted fail
        over to their mirror (promotion is a metadata flip here; the
        latency lands in :meth:`recover`); without one — or when the
        mirror is also down — a shard is lost with its contents."""
        self._down.add(node_id)
        for cache in self._apps.values():
            for shard in list(cache.shards):
                if shard.node_id == node_id:
                    if self._replication and self._backup_live(shard):
                        shard.node_id = shard.backup_node
                        shard.backup_node = None
                        self.stats.shards_promoted += 1
                        self._promotions_pending += 1
                        self._promoted_objects += len(shard.objects)
                    else:
                        for key in list(shard.objects):
                            self._drop_object(cache, shard, key, lost=True)
                        cache.shards.remove(shard)
                        self.stats.shards_lost += 1
                elif shard.backup_node == node_id:
                    # The mirror died: primary survives, under-replicated
                    # until the next repair pass.
                    shard.backup_node = None
        self._sync_cost()

    def restart(self, node_id: str) -> int:
        self._down.discard(node_id)
        return 0

    def recover(self, node_id: str) -> Generator[Any, Any, int]:
        """Fail-over latency for shards crash() promoted, then a minimum
        fleet for apps the crash left bare (their contents are gone —
        subsequent misses refill from the store)."""
        recovered = 0
        while self._promotions_pending > 0:
            self._promotions_pending -= 1
            yield self._delay(CACHE_SCALE_PLAIN)
        recovered += self._promoted_objects
        self._promoted_objects = 0
        for app in sorted(self._apps):
            cache = self._apps[app]
            if not cache.shards and self._add_shard(cache) is not None:
                yield self._delay(CACHE_SCALE_PLAIN)
        return recovered

    def repair(self) -> Generator[Any, Any, int]:
        """Re-create missing mirrors (promotion consumed one, or the
        backup's node died): copy the shard's contents to a new backup
        host.  No-op without replication."""
        repaired = 0
        if self._replication:
            for app in sorted(self._apps):
                for shard in self._apps[app].shards:
                    if self._backup_live(shard):
                        continue
                    backup = self._pick_backup(shard.node_id)
                    if backup is None:
                        continue
                    shard.backup_node = backup
                    self.stats.backups_repaired += 1
                    self.cost.count("backup_ops")
                    yield self._remote_delay(BACKUP_WRITE, shard.used_bytes)
                    repaired += len(shard.objects)
            self._sync_cost()
        return repaired

    # -- observability -------------------------------------------------------

    def stats_snapshot(self) -> Dict[str, Any]:
        snap = asdict(self.stats)
        snap["apps"] = len(self._apps)
        snap["shards"] = sum(len(c.shards) for c in self._apps.values())
        snap["live_servers"] = len(self._live_nodes())
        snap["under_replicated"] = (
            sum(
                1
                for c in self._apps.values()
                for s in c.shards
                if not self._backup_live(s)
            )
            if self._replication
            else 0
        )
        return snap
