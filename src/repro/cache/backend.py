"""The pluggable cache-architecture seam.

OFC's data plane (the rclib proxy), control plane (persistor, routing,
pipeline cleanup) and fault machinery all talk to the cache through the
narrow surface defined here, so rival architectures can be swapped in
behind one config knob (``OFCConfig.cache_backend``).  Three backends
ship: the paper's harvested design (:mod:`repro.cache.ofc_backend`),
a Faa$T-style per-application auto-scaling cache
(:mod:`repro.cache.faast`) and an InfiniCache-style ephemeral-function
cache (:mod:`repro.cache.infinicache`).

Every data-plane method is a generator driven by the simulation kernel
(mirroring :class:`repro.kvcache.cluster.CacheCluster`, which remains
the reference implementation of this contract).  Backends also carry a
:class:`CostMeter`: a pure-accounting integrator of provisioned memory
over simulated time, from which the ``cachewars`` bench derives each
architecture's cost figure.  The meter never schedules events — the
default OFC path stays bit-identical to a build without it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Iterator, List, Optional, Tuple

from repro.core.config import OFCConfig
from repro.kvcache.objects import CacheObject
from repro.sim.kernel import Kernel

# -- cost model (normalized units, not dollars) -----------------------------
#
# The comparison only needs *relative* cost: memory reserved exclusively
# for caching (dedicated sandboxes, Faa$T cachelets, InfiniCache
# lambdas) is priced at the provider's serverless memory rate, while
# OFC's harvested memory is idle keep-alive RAM that would be wasted
# anyway — the paper's core claim — and is priced at a residual
# opportunity cost.  Per-operation charges capture InfiniCache's
# lambda-invocation and backup traffic.

#: Cost units per GB-second of memory provisioned exclusively for cache.
DEDICATED_GB_S = 1.0
#: Cost units per GB-second of harvested (otherwise idle) memory.
HARVESTED_GB_S = 0.1
#: Cost units per ephemeral-function (lambda) invocation.
LAMBDA_INVOCATION = 2e-4
#: Cost units per backup/restore op against the object store.
BACKUP_OP = 1e-4


class CostMeter:
    """Integrates provisioned cache memory over simulated time.

    Levels are piecewise-constant; :meth:`set_memory` advances the
    integral to ``kernel.now`` before applying the new level, so the
    meter costs nothing between changes and never touches the event
    queue.
    """

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self._last_t = kernel.now
        self._dedicated_mb = 0.0
        self._harvested_mb = 0.0
        self.dedicated_mb_s = 0.0
        self.harvested_mb_s = 0.0
        #: Per-op counters priced by :meth:`cost_units`.
        self.ops: Dict[str, int] = {"lambda_invocations": 0, "backup_ops": 0}

    def advance(self) -> None:
        now = self.kernel.now
        dt = now - self._last_t
        if dt > 0:
            self.dedicated_mb_s += self._dedicated_mb * dt
            self.harvested_mb_s += self._harvested_mb * dt
            self._last_t = now

    def set_memory(
        self,
        dedicated_mb: Optional[float] = None,
        harvested_mb: Optional[float] = None,
    ) -> None:
        self.advance()
        if dedicated_mb is not None:
            self._dedicated_mb = dedicated_mb
        if harvested_mb is not None:
            self._harvested_mb = harvested_mb

    def reset(self) -> None:
        """Zero the integrals and op counters, keeping current levels
        (benches call this after warmup so the figure covers exactly
        the measured window)."""
        self._last_t = self.kernel.now
        self.dedicated_mb_s = 0.0
        self.harvested_mb_s = 0.0
        self.ops = {"lambda_invocations": 0, "backup_ops": 0}

    def count(self, name: str, n: int = 1) -> None:
        self.ops[name] = self.ops.get(name, 0) + n

    def cost_units(self) -> float:
        self.advance()
        return (
            (self.dedicated_mb_s / 1024.0) * DEDICATED_GB_S
            + (self.harvested_mb_s / 1024.0) * HARVESTED_GB_S
            + self.ops.get("lambda_invocations", 0) * LAMBDA_INVOCATION
            + self.ops.get("backup_ops", 0) * BACKUP_OP
        )


class CacheBackend:
    """Abstract cache architecture behind OFC's data plane.

    Subclasses implement the generator data plane plus the fault
    surface; the platform calls :meth:`attach` once its own components
    exist and :meth:`start` when the simulation begins.
    """

    #: Registry name ("ofc", "faast", "infinicache").
    name = "abstract"

    def __init__(
        self,
        kernel: Kernel,
        node_ids: List[str],
        config: Optional[OFCConfig] = None,
        rng=None,
        max_object_size: Optional[int] = None,
    ):
        self.kernel = kernel
        self.node_ids = list(node_ids)
        self.config = config or OFCConfig()
        self.rng = rng
        self.max_object_size = (
            max_object_size
            if max_object_size is not None
            else self.config.max_cacheable_bytes
        )
        #: Injected fault state (:class:`repro.sim.faults.FaultState`).
        self.faults = None
        #: Object-lifecycle hooks (per-tenant accounting): called with a
        #: :class:`CacheObject` when a primary copy is placed/removed on
        #: the regular data plane.  Fault paths may skip them — the
        #: accounting resyncs from :meth:`objects`.
        self.on_object_admitted: Optional[Callable] = None
        self.on_object_removed: Optional[Callable] = None
        self.cost = CostMeter(kernel)
        # attach() wires these.
        self.platform = None
        self.persistor = None
        self.metrics = None
        self.tenancy = None

    # -- lifecycle -----------------------------------------------------------

    def attach(
        self, platform=None, persistor=None, metrics=None, tenancy=None
    ) -> None:
        """Late wiring: called once the platform's components exist."""
        self.platform = platform
        self.persistor = persistor
        self.metrics = metrics
        self.tenancy = tenancy

    def start(self) -> None:
        """Spawn the backend's periodic processes (idempotent)."""

    # -- data plane (generator methods, kernel-driven) -----------------------

    def put(
        self,
        key: str,
        value: Any,
        size: int,
        caller: str,
        flags: Optional[Dict[str, Any]] = None,
    ) -> Generator[Any, Any, str]:
        """Write an object; returns the hosting node id.  Raises
        :class:`~repro.kvcache.errors.ObjectTooLarge` /
        :class:`~repro.kvcache.errors.CapacityExceeded` on rejection."""
        raise NotImplementedError

    def get(self, key: str, caller: str) -> Generator[Any, Any, CacheObject]:
        """Read an object; raises
        :class:`~repro.kvcache.errors.NoSuchKey` on miss."""
        raise NotImplementedError

    def delete(self, key: str, caller: str) -> Generator[Any, Any, None]:
        raise NotImplementedError

    def peek(self, key: str) -> Optional[CacheObject]:
        """Control-plane read: no latency, no access accounting."""
        raise NotImplementedError

    def set_flags(self, key: str, **flags: Any) -> None:
        """Update an object's flags on every surviving copy (a
        post-crash promotion/restore must observe current flags)."""
        raise NotImplementedError

    def contains(self, key: str) -> bool:
        return self.peek(key) is not None

    def location_of(self, key: str) -> Optional[str]:
        """Node currently able to serve the object, if any."""
        raise NotImplementedError

    def objects(self) -> Iterator[Tuple[str, CacheObject]]:
        """Lazily yield ``(hosting_node, object)`` for every primary
        copy (control plane: pipeline cleanup, tenancy resync)."""
        raise NotImplementedError

    # -- capacity ------------------------------------------------------------

    @property
    def total_capacity(self) -> int:
        raise NotImplementedError

    @property
    def total_used(self) -> int:
        raise NotImplementedError

    @property
    def quota_capacity(self) -> int:
        """Capacity base for tenant-quota arithmetic (clamped at any
        configured cap; defaults to the live total)."""
        return self.total_capacity

    # -- fault surface (driven by repro.faults.injector) ---------------------

    def crash(self, node_id: str) -> None:
        """Fail-stop everything the backend runs on ``node_id``."""
        raise NotImplementedError

    def restart(self, node_id: str) -> int:
        """Bring a crashed node back; returns purged stale copies."""
        raise NotImplementedError

    def recover(self, node_id: str) -> Generator[Any, Any, int]:
        """Re-establish readability of objects the crashed node held;
        returns the number recovered."""
        raise NotImplementedError

    def repair(self) -> Generator[Any, Any, int]:
        """Restore redundancy degraded by earlier faults; returns the
        number of keys repaired."""
        raise NotImplementedError

    # -- observability -------------------------------------------------------

    def stats_snapshot(self) -> Dict[str, Any]:
        """Flat counter/gauge snapshot (the ``kvcache`` collector)."""
        raise NotImplementedError

    def cost_snapshot(self) -> Dict[str, Any]:
        """Cost-model snapshot (the ``cache_backend`` collector)."""
        cost = self.cost
        cost.advance()
        return {
            "backend": self.name,
            "dedicated_mb_s": cost.dedicated_mb_s,
            "harvested_mb_s": cost.harvested_mb_s,
            "lambda_invocations": cost.ops.get("lambda_invocations", 0),
            "backup_ops": cost.ops.get("backup_ops", 0),
            "cost_units": cost.cost_units(),
        }

    # -- latency helpers (shared with CacheCluster's semantics) --------------

    def _delay(self, model, nbytes: int = 0) -> float:
        return model.sample(self.rng, nbytes)

    def _remote_delay(self, model, nbytes: int = 0) -> float:
        duration = model.sample(self.rng, nbytes)
        faults = self.faults
        if faults is not None:
            duration *= faults.network_latency_scale
        return duration

    def _admitted(self, obj: CacheObject) -> None:
        if self.on_object_admitted is not None:
            self.on_object_admitted(obj)

    def _removed(self, obj: CacheObject) -> None:
        if self.on_object_removed is not None:
            self.on_object_removed(obj)
