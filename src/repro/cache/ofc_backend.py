"""The paper's harvested cache, re-homed behind the backend seam.

A pure pass-through over :class:`repro.kvcache.cluster.CacheCluster`
plus the per-node :class:`repro.core.cache_agent.CacheAgent` loops.
Every data-plane method returns the cluster's generator unchanged, so a
deployment on this backend is bit-identical to the pre-seam build (the
fastpath-parity and bench gates run over exactly this path).

Cost model: the memory is *harvested* — priced at the residual
``HARVESTED_GB_S`` rate — and the level tracks the cluster's live
capacity through the cluster's ``on_resize`` accounting hook.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterator, List, Optional, Tuple

from repro.cache.backend import CacheBackend
from repro.core.cache_agent import CacheAgent
from repro.core.config import OFCConfig
from repro.kvcache.cluster import CacheCluster
from repro.kvcache.objects import CacheObject
from repro.sim.kernel import Kernel
from repro.sim.latency import MB


class OFCCacheBackend(CacheBackend):
    """OFC's opportunistic RAMCloud-style cluster as a backend."""

    name = "ofc"

    def __init__(
        self,
        kernel: Kernel,
        node_ids: List[str],
        config: Optional[OFCConfig] = None,
        rng=None,
        max_object_size: Optional[int] = None,
    ):
        config = config or OFCConfig()
        # The cluster must exist before super().__init__: the base
        # class assigns the hook attributes, which this subclass
        # forwards to the cluster via properties.
        self.cluster = CacheCluster(
            kernel,
            node_ids,
            replication_factor=config.replication_factor,
            rng=rng,
            max_object_size=(
                max_object_size
                if max_object_size is not None
                else config.max_cacheable_bytes
            ),
        )
        super().__init__(
            kernel, node_ids, config=config, rng=rng,
            max_object_size=max_object_size,
        )
        if config.cache_cap_mb is not None:
            self.cluster.quota_cap_bytes = int(
                config.cache_cap_mb * MB
            ) * len(self.node_ids)
        self.cluster.on_resize = self._on_resize
        self.agents: Dict[str, CacheAgent] = {}

    # -- hook forwarding (the cluster is the single source of truth) ---------

    @property
    def faults(self):
        return self.cluster.faults

    @faults.setter
    def faults(self, state) -> None:
        self.cluster.faults = state

    @property
    def on_object_admitted(self):
        return self.cluster.on_object_admitted

    @on_object_admitted.setter
    def on_object_admitted(self, fn) -> None:
        self.cluster.on_object_admitted = fn

    @property
    def on_object_removed(self):
        return self.cluster.on_object_removed

    @on_object_removed.setter
    def on_object_removed(self, fn) -> None:
        self.cluster.on_object_removed = fn

    # -- lifecycle -----------------------------------------------------------

    def attach(
        self, platform=None, persistor=None, metrics=None, tenancy=None
    ) -> None:
        super().attach(
            platform=platform, persistor=persistor, metrics=metrics,
            tenancy=tenancy,
        )
        if platform is not None and persistor is not None:
            self.agents = {
                invoker.node_id: CacheAgent(
                    self.kernel,
                    invoker,
                    self.cluster,
                    persistor,
                    config=self.config,
                    metrics=metrics,
                    tenancy=tenancy,
                )
                for invoker in platform.invokers
            }

    def start(self) -> None:
        for agent in self.agents.values():
            agent.start()

    # -- data plane (zero-overhead delegation: return the generator) --------

    def put(
        self,
        key: str,
        value: Any,
        size: int,
        caller: str,
        flags: Optional[Dict[str, Any]] = None,
    ) -> Generator[Any, Any, str]:
        return self.cluster.put(key, value, size, caller, flags=flags)

    def get(self, key: str, caller: str) -> Generator[Any, Any, CacheObject]:
        return self.cluster.get(key, caller)

    def delete(self, key: str, caller: str) -> Generator[Any, Any, None]:
        return self.cluster.delete(key, caller)

    def peek(self, key: str) -> Optional[CacheObject]:
        return self.cluster.peek(key)

    def set_flags(self, key: str, **flags: Any) -> None:
        self.cluster.set_flags(key, **flags)

    def contains(self, key: str) -> bool:
        return self.cluster.contains(key)

    def location_of(self, key: str) -> Optional[str]:
        return self.cluster.location_of(key)

    def objects(self) -> Iterator[Tuple[str, CacheObject]]:
        # Lazy per-server snapshots, in coordinator order: matches the
        # pre-seam pipeline-cleanup iteration exactly (bit-identity).
        for server in self.cluster.coordinator.servers.values():
            for obj in server.master_objects():
                yield server.server_id, obj

    # -- capacity ------------------------------------------------------------

    @property
    def total_capacity(self) -> int:
        return self.cluster.total_capacity

    @property
    def total_used(self) -> int:
        return self.cluster.total_used

    @property
    def quota_capacity(self) -> int:
        return self.cluster.quota_capacity

    # -- faults --------------------------------------------------------------

    def crash(self, node_id: str) -> None:
        self.cluster.crash(node_id)

    def restart(self, node_id: str) -> int:
        return self.cluster.restart(node_id)

    def recover(self, node_id: str) -> Generator[Any, Any, int]:
        return self.cluster.recover(node_id)

    def repair(self) -> Generator[Any, Any, int]:
        return self.cluster.repair()

    # -- observability -------------------------------------------------------

    def stats_snapshot(self) -> Dict[str, Any]:
        return self.cluster.stats_snapshot()

    def _on_resize(self, now: float, total_capacity: int) -> None:
        self.cost.set_memory(harvested_mb=total_capacity / MB)
