"""InfiniCache-style ephemeral-function cache (arXiv:2001.10483).

InfiniCache stores objects as erasure-coded chunks (k data + r parity)
spread across short-lived serverless sandboxes ("lambdas"), tolerates
provider-side reclamation through the coding redundancy plus periodic
backups to the object store, and *warms up* replacement sandboxes when
a reclaimed one takes chunks with it.  This backend models that
architecture over the simulated node pool:

* a fixed pool of sandboxes per node, each with a small dedicated
  memory slab and a finite lifetime (staggered so reclamations do not
  synchronize);
* ``put`` spreads k+r chunks over distinct live sandboxes (an object
  is readable while >= k chunks survive); ``get`` gathers k chunks in
  parallel, so latency is the slowest chunk fetch;
* a reclamation loop replaces expired sandboxes and re-establishes
  redundancy — re-encoding from surviving chunks when >= k remain,
  else restoring the whole object from the latest backup;
* a backup loop periodically copies (object, flags, version) to an
  internal object-store area; ``set_flags`` also lands on the backup
  copy so a restore never resurrects stale ``dirty`` state;
* sandbox memory and per-op lambda/backup charges feed the cost
  meter at the dedicated serverless rate.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Generator, Iterator, List, Optional, Set, Tuple

from repro.cache.backend import CacheBackend
from repro.core.config import OFCConfig
from repro.kvcache.errors import CapacityExceeded, NoSuchKey, ObjectTooLarge
from repro.kvcache.objects import (
    BACKUP_WRITE,
    CacheObject,
    REMOTE_READ,
    REMOTE_WRITE,
)
from repro.sim.kernel import Kernel
from repro.sim.latency import MB


@dataclass
class InfiniCacheStats:
    puts: int = 0
    gets_local: int = 0
    gets_remote: int = 0
    misses: int = 0
    deletes: int = 0
    evictions: int = 0
    reclamations: int = 0
    warmups: int = 0
    reencodes: int = 0
    backups: int = 0
    restores: int = 0
    lost_objects: int = 0
    #: Dirty (write-back pending) entries kept through a failed warm-up
    #: instead of being dropped (chaos-harness fix: the old path lost
    #: acked writes that existed only in the cache).
    dirty_retained: int = 0


class _Sandbox:
    """One ephemeral cache lambda pinned to a node."""

    __slots__ = ("sandbox_id", "node_id", "capacity", "used_bytes",
                 "born_at", "lifetime_s", "up", "chunks")

    def __init__(self, sandbox_id: str, node_id: str, capacity: int,
                 born_at: float, lifetime_s: float):
        self.sandbox_id = sandbox_id
        self.node_id = node_id
        self.capacity = capacity
        self.used_bytes = 0
        self.born_at = born_at
        self.lifetime_s = lifetime_s
        self.up = True
        #: key -> chunk bytes held for that object (one chunk each).
        self.chunks: Dict[str, int] = {}

    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    def add_chunk(self, key: str, nbytes: int) -> None:
        self.chunks[key] = nbytes
        self.used_bytes += nbytes

    def drop_chunk(self, key: str) -> None:
        nbytes = self.chunks.pop(key, 0)
        self.used_bytes -= nbytes


class InfiniCacheBackend(CacheBackend):
    """Erasure-coded cache over short-lived sandboxes."""

    name = "infinicache"

    def __init__(
        self,
        kernel: Kernel,
        node_ids: List[str],
        config: Optional[OFCConfig] = None,
        rng=None,
        max_object_size: Optional[int] = None,
    ):
        super().__init__(
            kernel, node_ids, config=config, rng=rng,
            max_object_size=max_object_size,
        )
        cfg = self.config
        self.k = max(1, cfg.infinicache_data_chunks)
        self.r = max(0, cfg.infinicache_parity_chunks)
        self.lambda_bytes = int(cfg.infinicache_lambda_mb * MB)
        self.stats = InfiniCacheStats()
        #: key -> logical object (value + flags + version).
        self._entries: Dict[str, CacheObject] = {}
        #: key -> sandboxes holding one chunk each.
        self._placement: Dict[str, List[_Sandbox]] = {}
        #: Latest object-store backup copies (survive any sandbox loss).
        self._backup: Dict[str, CacheObject] = {}
        self._sandboxes: List[_Sandbox] = []
        self._down_nodes: Set[str] = set()
        #: Keys degraded below k live chunks by a crash, pending recover().
        self._degraded: Set[str] = set()
        self._next_id = 0
        self._started = False

    # -- sandbox pool --------------------------------------------------------

    def _spawn(self, node_id: str, stagger_idx: int = 0) -> _Sandbox:
        """Provision one sandbox (a lambda invocation).  ``stagger_idx``
        skews the first generation's lifetimes so the provider does not
        reclaim the whole pool at once."""
        per_node = max(1, self.config.infinicache_lambdas_per_node)
        lifetime = self.config.infinicache_lifetime_s
        lifetime *= 0.75 + 0.5 * ((stagger_idx % per_node) / per_node)
        sandbox = _Sandbox(
            f"ic-{self._next_id}", node_id, self.lambda_bytes,
            self.kernel.now, lifetime,
        )
        self._next_id += 1
        self._sandboxes.append(sandbox)
        self.cost.count("lambda_invocations")
        self._sync_cost()
        return sandbox

    def _kill(self, sandbox: _Sandbox) -> Set[str]:
        """Tear a sandbox down; returns the keys that lost a chunk."""
        sandbox.up = False
        affected = set(sandbox.chunks)
        sandbox.chunks = {}
        sandbox.used_bytes = 0
        self._sandboxes.remove(sandbox)
        self._sync_cost()
        for key in affected:
            placement = self._placement.get(key)
            if placement and sandbox in placement:
                placement.remove(sandbox)
        return affected

    def _sync_cost(self) -> None:
        self.cost.set_memory(dedicated_mb=self.total_capacity / MB)

    def _live_chunks(self, key: str) -> int:
        return len(self._placement.get(key, ()))

    def _chunk_bytes(self, size: int) -> int:
        return -(-size // self.k)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        per_node = max(1, self.config.infinicache_lambdas_per_node)
        for node_id in self.node_ids:
            for i in range(per_node):
                self._spawn(node_id, stagger_idx=i)
        self.kernel.process(self._reclaim_loop(), name="infinicache-reclaim")
        self.kernel.process(self._backup_loop(), name="infinicache-backup")

    # -- placement -----------------------------------------------------------

    def _choose_sandboxes(self, key: str, chunk: int) -> List[_Sandbox]:
        """k+r distinct sandboxes with room, spread over distinct nodes
        first (deterministic: sorted by free space, then id)."""
        need = self.k + self.r
        candidates = sorted(
            (s for s in self._sandboxes if s.free_bytes() >= chunk),
            key=lambda s: (-s.free_bytes(), s.sandbox_id),
        )
        chosen: List[_Sandbox] = []
        used_nodes: Set[str] = set()
        for sandbox in candidates:
            if len(chosen) == need:
                break
            if sandbox.node_id in used_nodes:
                continue
            chosen.append(sandbox)
            used_nodes.add(sandbox.node_id)
        for sandbox in candidates:
            if len(chosen) == need:
                break
            if sandbox not in chosen:
                chosen.append(sandbox)
        return chosen if len(chosen) == need else []

    def _evict_for_space(self, chunk: int) -> bool:
        """Drop the least-recently-used *clean* object to free room."""
        victims = sorted(
            (
                e for e in self._entries.values()
                if not e.flags.get("dirty", False)
            ),
            key=lambda e: (e.t_access, e.key),
        )
        if not victims:
            return False
        self._forget(victims[0].key)
        self.stats.evictions += 1
        return True

    def _forget(self, key: str, lost: bool = False) -> None:
        """Drop an object's chunks, entry and backup copy."""
        for sandbox in self._placement.pop(key, []):
            sandbox.drop_chunk(key)
        entry = self._entries.pop(key, None)
        self._backup.pop(key, None)
        self._degraded.discard(key)
        if entry is not None:
            if lost:
                self.stats.lost_objects += 1
            self._removed(entry)

    # -- data plane ----------------------------------------------------------

    def put(
        self,
        key: str,
        value: Any,
        size: int,
        caller: str,
        flags: Optional[Dict[str, Any]] = None,
    ) -> Generator[Any, Any, str]:
        if size > self.max_object_size:
            raise ObjectTooLarge(f"{key}: {size} bytes")
        chunk = self._chunk_bytes(size)
        if chunk > self.lambda_bytes:
            raise ObjectTooLarge(f"{key}: {chunk} B chunks > lambda slab")
        version = 1
        old = self._entries.get(key)
        if old is None:
            backed = self._backup.get(key)
            if backed is not None:
                version = backed.version + 1
        else:
            version = old.version + 1
        if old is not None or key in self._backup:
            self._forget(key)
        placement = self._choose_sandboxes(key, chunk)
        while not placement:
            if not self._evict_for_space(chunk):
                raise CapacityExceeded(f"no k+r sandboxes fit {chunk} B chunks")
            placement = self._choose_sandboxes(key, chunk)
        obj = CacheObject(
            key=key,
            value=value,
            size=size,
            version=version,
            created_at=self.kernel.now,
            t_access=self.kernel.now,
            flags=dict(flags or {}),
        )
        self._entries[key] = obj
        self._placement[key] = placement
        for sandbox in placement:
            sandbox.add_chunk(key, chunk)
        self._admitted(obj)
        self.stats.puts += 1
        self.cost.count("lambda_invocations", len(placement))
        # Chunks are uploaded in parallel; the slowest bounds latency.
        longest = 0.0
        for _ in placement:
            longest = max(longest, self._remote_delay(REMOTE_WRITE, chunk))
        if obj.flags.get("dirty", False):
            # Write-back data exists nowhere but this cache until the
            # persistor lands it: back it up promptly (in parallel with
            # the chunk spread) instead of waiting for the periodic
            # loop, so losing chunks below k cannot lose an acked write.
            self._backup[key] = obj.copy()
            self.stats.backups += 1
            self.cost.count("backup_ops")
            longest = max(longest, self._remote_delay(BACKUP_WRITE, size))
        yield longest
        return placement[0].node_id

    def get(self, key: str, caller: str) -> Generator[Any, Any, CacheObject]:
        obj = self._entries.get(key)
        if obj is None or self._live_chunks(key) < self.k:
            self.stats.misses += 1
            raise NoSuchKey(key)
        placement = self._placement[key]
        chunk = self._chunk_bytes(obj.size)
        # Fetch k chunks in parallel from the first k sandboxes.
        longest = 0.0
        for _sandbox in placement[: self.k]:
            longest = max(longest, self._remote_delay(REMOTE_READ, chunk))
        self.cost.count("lambda_invocations", self.k)
        yield longest
        obj.n_access += 1
        obj.t_access = self.kernel.now
        if any(s.node_id == caller for s in placement[: self.k]):
            self.stats.gets_local += 1
        else:
            self.stats.gets_remote += 1
        return obj.copy()

    def delete(self, key: str, caller: str) -> Generator[Any, Any, None]:
        if key not in self._entries:
            raise NoSuchKey(key)
        self._forget(key)
        self.stats.deletes += 1
        yield self._remote_delay(REMOTE_WRITE)

    def peek(self, key: str) -> Optional[CacheObject]:
        obj = self._entries.get(key)
        if obj is None or self._live_chunks(key) < self.k:
            return None
        return obj

    def set_flags(self, key: str, **flags: Any) -> None:
        obj = self._entries.get(key)
        backed = self._backup.get(key)
        if obj is None and backed is None:
            raise NoSuchKey(key)
        if obj is not None:
            obj.flags.update(flags)
            # Mirror onto the same-version backup so a later restore
            # cannot resurrect stale flags (e.g. a cleared ``dirty``).
            if backed is not None and backed.version == obj.version:
                backed.flags.update(flags)
        elif backed is not None:
            backed.flags.update(flags)

    def location_of(self, key: str) -> Optional[str]:
        if self._entries.get(key) is None or self._live_chunks(key) < self.k:
            return None
        return self._placement[key][0].node_id

    def objects(self) -> Iterator[Tuple[str, CacheObject]]:
        for key in sorted(self._entries):
            placement = self._placement.get(key)
            node = placement[0].node_id if placement else "external"
            yield node, self._entries[key]

    # -- capacity ------------------------------------------------------------

    @property
    def total_capacity(self) -> int:
        return sum(s.capacity for s in self._sandboxes)

    @property
    def total_used(self) -> int:
        return sum(s.used_bytes for s in self._sandboxes)

    # -- periodic loops ------------------------------------------------------

    def _backup_loop(self) -> Generator:
        period = self.config.infinicache_backup_period_s
        while True:
            yield period
            for key in sorted(self._entries):
                entry = self._entries.get(key)
                if entry is None:
                    continue  # deleted while the loop slept
                backed = self._backup.get(key)
                if backed is not None and backed.version == entry.version:
                    # Keep the copy's flags current even without re-upload.
                    backed.flags = dict(entry.flags)
                    continue
                self._backup[key] = entry.copy()
                self.stats.backups += 1
                self.cost.count("backup_ops")
                yield self._remote_delay(BACKUP_WRITE, entry.size)

    def _reclaim_loop(self) -> Generator:
        period = self.config.infinicache_reclaim_period_s
        while True:
            yield period
            now = self.kernel.now
            expired = [
                s for s in list(self._sandboxes)
                if now - s.born_at >= s.lifetime_s
            ]
            affected: Set[str] = set()
            for sandbox in expired:
                node = sandbox.node_id
                affected |= self._kill(sandbox)
                self.stats.reclamations += 1
                if node not in self._down_nodes:
                    self._spawn(node)
            for key in sorted(affected):
                yield from self._restore_or_drop(key)
            # Retry survivors of earlier failed warm-ups (dirty entries
            # retained while no sandbox had room) now that the pool has
            # been replenished.
            for key in sorted(self._degraded - affected):
                yield from self._restore_or_drop(key)

    def _restore_or_drop(self, key: str) -> Generator:
        """Warm-up after chunk loss: re-encode from surviving chunks
        when >= k remain, else restore from the backup copy, else the
        object is lost from the cache (it survives in the RSDS)."""
        entry = self._entries.get(key)
        if entry is None:
            return
        live = self._live_chunks(key)
        if live >= self.k + self.r:
            self._degraded.discard(key)
            return
        chunk = self._chunk_bytes(entry.size)
        if live >= self.k:
            # Re-encode the missing chunks onto fresh sandboxes.
            placed = yield from self._place_missing(key, chunk)
            if placed:
                self.stats.reencodes += 1
            self._degraded.discard(key)
            return
        backed = self._backup.get(key)
        if backed is None or backed.version != entry.version:
            if entry.flags.get("dirty", False):
                # Never drop write-back data the store has not seen:
                # keep the entry (unreadable but tracked) and let
                # recover/repair and the next reclaim tick retry once
                # sandboxes free up; the persistor still holds the
                # payload for write-back.
                self.stats.dirty_retained += 1
                self._degraded.add(key)
                return
            self._forget(key, lost=True)
            return
        # Full warm-up from the object store: fetch, re-chunk, spread.
        yield self._remote_delay(REMOTE_READ, entry.size)
        self.stats.restores += 1
        self.cost.count("backup_ops")
        restored = backed.copy()
        restored.n_access = entry.n_access
        restored.t_access = entry.t_access
        for sandbox in self._placement.pop(key, []):
            sandbox.drop_chunk(key)
        self._placement[key] = []
        self._entries[key] = restored
        placed = yield from self._place_missing(key, chunk)
        if placed:
            self.stats.warmups += 1
            self._degraded.discard(key)
        elif restored.flags.get("dirty", False):
            self.stats.dirty_retained += 1
            self._degraded.add(key)
        else:
            self._forget(key, lost=True)

    def _place_missing(self, key: str, chunk: int) -> Generator:
        """Top the object's placement back up to k+r distinct sandboxes.
        Returns True when at least k chunks are live afterwards."""
        placement = self._placement.setdefault(key, [])
        need = self.k + self.r - len(placement)
        if need <= 0:
            return True
        holders = set(placement)
        candidates = sorted(
            (
                s for s in self._sandboxes
                if s not in holders and s.free_bytes() >= chunk
            ),
            key=lambda s: (-s.free_bytes(), s.sandbox_id),
        )
        for sandbox in candidates[:need]:
            sandbox.add_chunk(key, chunk)
            placement.append(sandbox)
            self.cost.count("lambda_invocations")
            yield self._remote_delay(REMOTE_WRITE, chunk)
        return len(placement) >= self.k

    # -- faults --------------------------------------------------------------

    def crash(self, node_id: str) -> None:
        """Fail-stop a node: its sandboxes die with their chunks."""
        self._down_nodes.add(node_id)
        doomed = [s for s in self._sandboxes if s.node_id == node_id]
        affected: Set[str] = set()
        for sandbox in doomed:
            affected |= self._kill(sandbox)
        for key in affected:
            if key in self._entries:
                self._degraded.add(key)

    def restart(self, node_id: str) -> int:
        """Bring a node back and refill its share of the sandbox pool."""
        self._down_nodes.discard(node_id)
        per_node = max(1, self.config.infinicache_lambdas_per_node)
        have = sum(1 for s in self._sandboxes if s.node_id == node_id)
        for i in range(per_node - have):
            self._spawn(node_id, stagger_idx=i)
        return 0

    def recover(self, node_id: str) -> Generator[Any, Any, int]:
        """Restore every key the crash degraded (re-encode or warm up
        from backup); returns the number made readable again."""
        recovered = 0
        for key in sorted(self._degraded):
            yield from self._restore_or_drop(key)
            if self._live_chunks(key) >= self.k:
                recovered += 1
        return recovered

    def repair(self) -> Generator[Any, Any, int]:
        """Top every under-redundant placement back up to k+r."""
        repaired = 0
        for key in sorted(self._entries):
            if key not in self._entries:
                continue
            placement = self._placement.get(key, [])
            if len(placement) >= self.k + self.r:
                continue
            chunk = self._chunk_bytes(self._entries[key].size)
            if (yield from self._place_missing(key, chunk)):
                repaired += 1
        return repaired

    # -- observability -------------------------------------------------------

    def stats_snapshot(self) -> Dict[str, Any]:
        snap = asdict(self.stats)
        snap["sandboxes"] = len(self._sandboxes)
        snap["entries"] = len(self._entries)
        snap["backed_up"] = len(self._backup)
        snap["degraded"] = len(self._degraded)
        snap["live_servers"] = len(
            {s.node_id for s in self._sandboxes}
        )
        snap["under_replicated"] = sum(
            1 for key in self._entries
            if self._live_chunks(key) < self.k + self.r
        )
        return snap
