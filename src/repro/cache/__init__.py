"""Pluggable cache-architecture backends for the OFC platform.

``OFCConfig.cache_backend`` selects the architecture behind the data
plane; :func:`make_backend` builds it.  See :mod:`repro.cache.backend`
for the contract every backend implements.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.cache.backend import CacheBackend, CostMeter
from repro.cache.faast import FaaSTBackend
from repro.cache.infinicache import InfiniCacheBackend
from repro.cache.ofc_backend import OFCCacheBackend
from repro.core.config import OFCConfig
from repro.sim.kernel import Kernel

BACKENDS: Dict[str, Type[CacheBackend]] = {
    OFCCacheBackend.name: OFCCacheBackend,
    FaaSTBackend.name: FaaSTBackend,
    InfiniCacheBackend.name: InfiniCacheBackend,
}


def make_backend(
    name: str,
    kernel: Kernel,
    node_ids: List[str],
    config: Optional[OFCConfig] = None,
    rng=None,
    max_object_size: Optional[int] = None,
) -> CacheBackend:
    """Build the named cache backend ("ofc", "faast", "infinicache")."""
    try:
        backend_cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown cache backend {name!r}; known: {sorted(BACKENDS)}"
        ) from None
    return backend_cls(
        kernel, node_ids, config=config, rng=rng,
        max_object_size=max_object_size,
    )


__all__ = [
    "BACKENDS",
    "CacheBackend",
    "CostMeter",
    "FaaSTBackend",
    "InfiniCacheBackend",
    "OFCCacheBackend",
    "make_backend",
]
