"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.cli list
    python -m repro.cli fig3 table1 maturation
    python -m repro.cli all
    python -m repro.cli report --quick
    python -m repro.cli fig9 --trace results/fig9-trace.json
    python -m repro.cli fig8 --workers 8
    python -m repro.cli perf --quick
    python -m repro.cli tenants --quick --workers 2
    python -m repro.cli cachewars --quick
    python -m repro.cli faults
    python -m repro.cli chaos --quick
    python -m repro.cli run --faults examples/faults/crash_restart.json

Each experiment prints the same rows the corresponding paper artifact
reports. Heavy experiments accept ``--quick`` to shrink sample counts.
Sweep experiments (fig7, fig8, fig9, fig10) fan independent cells
across processes; ``--workers N`` caps the fan-out (``--workers 1``
forces the serial path, the default is one worker per core).

``report`` runs the macro workload and dumps the unified observability
JSON (metrics + span summary) to ``--out``.  ``perf`` benchmarks the
simulator itself (kernel events/sec, macro sim-s/wall-s, sweep wall
time) and appends an entry to the ``--bench-out`` trajectory file.
``tenants`` streams a synthesized multi-tenant population (Zipf app
popularity, diurnal/bursty arrivals) through OFC, sweeps tenant count
× skew × cache quota policy, and writes the per-tenant hit-ratio and
fairness grid to ``--grid-out``.
``cachewars`` replays one seeded multi-tenant workload against every
registered cache architecture (OFC harvested, Faa$T-style cachelets,
InfiniCache-style erasure-coded lambdas) and writes the
hit-ratio/latency/cost grid to ``--cachewars-out``.
``faults`` runs the availability experiment (baseline vs a mid-run
node crash and restart).  ``run`` drives one deployment under a JSON
fault schedule (``--faults PATH``, ``--duration S``) and prints the
availability timeline.
``chaos`` fuzzes every cache backend with seeded randomized fault
schedules while a history recorder audits consistency invariants
(acked-write durability, stale reads, read-your-writes, version
order); failing cells are ddmin-shrunk and the minimal schedule
exported as a runnable reproducer under ``examples/faults/``.  The
grid lands in ``--chaos-out``.
``--trace PATH`` enables span tracing for any experiment and writes
the trace summary to PATH.  A failing experiment prints its traceback
to stderr and exits 1; ``faults``, ``run`` and ``chaos`` also exit 1
(table still printed) when the consistency audit finds violations or
dirty final outputs.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from typing import Callable, Dict

from repro.bench.reporting import format_table


class ExperimentFailed(Exception):
    """An experiment completed but its consistency gate failed.

    Carries the rendered table so the output still prints before the
    process exits nonzero — CI logs show *what* failed, not just that
    something did.
    """

    def __init__(self, output: str, reason: str):
        super().__init__(reason)
        self.output = output
        self.reason = reason


def _fig2(quick: bool, workers=None) -> str:
    from repro.bench.fig2 import run_fig2

    result = run_fig2(n=150 if quick else 400)
    return format_table(
        ["metric", "value"],
        [
            ("spread at fixed byte size (MB)", result.spread_at_fixed_size_mb),
            ("spread at fixed sigma (MB)", result.spread_at_fixed_sigma_mb),
        ],
        title="Figure 2 — wand_blur memory variability",
    )


def _fig3(quick: bool, workers=None) -> str:
    from repro.bench.fig3 import run_fig3_pipeline, run_fig3_single

    rows = run_fig3_single() + run_fig3_pipeline()
    return format_table(
        ["workload", "size", "backend", "E (s)", "T (s)", "L (s)", "E+L %"],
        [
            (r.workload, r.input_size, r.backend, r.extract_s, r.transform_s,
             r.load_s, 100 * r.el_fraction)
            for r in rows
        ],
        title="Figure 3 — motivation: RSDS vs IMOC",
    )


def _table1(quick: bool, workers=None) -> str:
    from repro.bench.table1 import run_table1

    functions = (
        ["wand_blur", "wand_sepia", "sharp_resize", "video_transcode"]
        if quick
        else None
    )
    rows = run_table1(
        n_samples=200 if quick else 400,
        folds=3 if quick else 5,
        functions=functions,
    )
    return format_table(
        ["interval", "algorithm", "exact %", "exact-or-over %"],
        [
            (f"{r.interval_mb:.0f} MB", r.algorithm, r.exact_pct,
             r.exact_or_over_pct)
            for r in rows
        ],
        title="Table 1 — ML accuracy",
    )


def _benefit(quick: bool, workers=None) -> str:
    from repro.bench.table1 import run_benefit_model_eval

    result = run_benefit_model_eval(n_samples=200 if quick else 400)
    return format_table(
        ["metric", "%"],
        [(k, v) for k, v in result.items()],
        title="Cache-benefit model (§7.1.1)",
    )


def _fig5(quick: bool, workers=None) -> str:
    from repro.bench.fig5 import run_fig5

    result = run_fig5(n_samples=200 if quick else 400)
    return format_table(
        ["metric", "value"],
        [
            ("EO fraction", result.eo_fraction),
            ("overpredictions within 3 intervals", result.over_within_3_intervals),
            ("mean waste (MB)", result.mean_waste_mb),
        ],
        title="Figure 5 — error distribution",
    )


def _fig6(quick: bool, workers=None) -> str:
    from repro.bench.fig6 import run_fig6

    functions = ["wand_sepia", "sharp_resize"] if quick else None
    rows = run_fig6(n_samples=150 if quick else 300, functions=functions)
    return format_table(
        ["algorithm", "interval", "median (us)", "p99 (us)"],
        [
            (r.algorithm, f"{r.interval_mb:.0f} MB", r.median_us, r.p99_us)
            for r in rows
        ],
        title="Figure 6 — prediction speed",
    )


def _maturation(quick: bool, workers=None) -> str:
    from repro.bench.maturation import run_maturation

    result = run_maturation(max_invocations=300 if quick else 500)
    rows = [
        (name, count if count is not None else "(not matured)")
        for name, count in result.per_function.items()
    ]
    rows.append(("median", result.median))
    rows.append(("p75", result.p75))
    rows.append(("p95", result.p95))
    return format_table(
        ["function", "invocations"], rows, title="§7.1.3 — maturation"
    )


def _fig7(quick: bool, workers=None) -> str:
    from repro.bench.fig7 import run_fig7_single
    from repro.sim.latency import KB
    from repro.workloads.functions import FIGURE7_FUNCTIONS

    functions = FIGURE7_FUNCTIONS[:2] if quick else FIGURE7_FUNCTIONS
    rows = run_fig7_single(functions, sizes=(16 * KB, 128 * KB), workers=workers)
    return format_table(
        ["workload", "size", "config", "total (ms)"],
        [(r.workload, r.input_size, r.config, r.total_s * 1e3) for r in rows],
        title="Figure 7 — single-stage (subset)",
    )


def _fig8(quick: bool, workers=None) -> str:
    from repro.bench.fig8 import run_fig8
    from repro.sim.latency import KB

    sizes = (16 * KB, 1024 * KB) if quick else (1 * KB, 16 * KB, 1024 * KB, 3072 * KB)
    rows = run_fig8(sizes=sizes, workers=workers)
    return format_table(
        ["scenario", "size (kB)", "scaling (ms)", "exec (ms)"],
        [
            (r.scenario, r.input_size // 1024, r.scaling_time_s * 1e3,
             r.exec_time_s * 1e3)
            for r in rows
        ],
        title="Figure 8 — scaling impact",
    )


def _fig9(quick: bool, workers=None) -> str:
    from repro.bench.macro import MACRO_WORKLOADS, run_macro_comparison
    from repro.workloads.faasload import TenantProfile

    ofc, swift, improvements = run_macro_comparison(
        TenantProfile.NORMAL,
        duration_s=300.0 if quick else 1800.0,
        workers=workers,
    )
    return format_table(
        ["workload", "OWK-Swift (s)", "OFC (s)", "improvement %"],
        [
            (w, swift.total_exec_s.get(w, 0.0), ofc.total_exec_s.get(w, 0.0),
             improvements.get(w, 0.0))
            for w in MACRO_WORKLOADS
        ],
        title=(
            "Figure 9 — macro (normal profile); "
            f"hit ratio {ofc.hit_ratio:.3f}, failed {ofc.failed_invocations}"
        ),
    )


def _table2(quick: bool, workers=None) -> str:
    from repro.bench.macro import run_macro
    from repro.workloads.faasload import TenantProfile

    result = run_macro(
        "ofc", TenantProfile.NORMAL, duration_s=300.0 if quick else 1800.0
    )
    return format_table(
        ["metric", "value"],
        list(result.table2.items()),
        title="Table 2 — OFC internal metrics",
    )


def _fig10(quick: bool, workers=None) -> str:
    from repro.bench.fig10 import run_fig10

    series = run_fig10(
        duration_s=300.0 if quick else 900.0, workers=workers
    )
    rows = []
    for s in series:
        for minute, gb in s.per_minute():
            rows.append((s.profile, minute, gb))
    return format_table(
        ["profile", "minute", "cache size (GB)"],
        rows,
        title="Figure 10 — OFC cache size over time",
    )


def _fmt_ratio(value) -> str:
    return f"{value:.3f}" if value is not None else "n/a"


def _faults(quick: bool, workers=None) -> str:
    from repro.bench.faults import run_fault_availability

    baseline, faulted = run_fault_availability(
        duration_s=120.0 if quick else 240.0, workers=workers
    )
    rows = [
        (
            r.scenario,
            r.completed,
            r.failed,
            _fmt_ratio(r.final_hit_ratio),
            _fmt_ratio(r.min_windowed_hit_ratio),
            r.recovered_objects,
            r.repaired_keys,
            r.dirty_final_at_end,
        )
        for r in (baseline, faulted)
    ]
    table = format_table(
        [
            "scenario",
            "ok",
            "failed",
            "hit ratio",
            "min window",
            "recovered",
            "repaired",
            "dirty finals",
        ],
        rows,
        title="Availability — crash/restart vs baseline",
    )
    dirty = {
        r.scenario: r.dirty_final_at_end
        for r in (baseline, faulted)
        if r.dirty_final_at_end
    }
    if dirty:
        raise ExperimentFailed(
            table, f"dirty final outputs after drain: {dirty}"
        )
    return table


def _run_schedule(quick: bool, faults_path, duration_s: float) -> str:
    from repro.bench.faults import run_availability
    from repro.faults import FaultSchedule

    schedule = None
    scenario = "no-faults"
    if faults_path:
        schedule = FaultSchedule.load(faults_path)
        scenario = faults_path
    if quick:
        duration_s = min(duration_s, 120.0)
    result = run_availability(
        scenario=scenario, schedule=schedule, duration_s=duration_s
    )
    rows = [
        (
            f"{p.t:.0f}",
            _fmt_ratio(p.hit_ratio),
            p.live_servers,
            p.under_replicated,
        )
        for p in result.points
    ]
    rows.append(("--", "--", "--", "--"))
    rows.append(("completed", result.completed, "", ""))
    rows.append(("failed", result.failed, "", ""))
    rows.append(("lost objects", result.lost_objects, "", ""))
    rows.append(("recovered", result.recovered_objects, "", ""))
    rows.append(("repaired keys", result.repaired_keys, "", ""))
    rows.append(("dirty finals at end", result.dirty_final_at_end, "", ""))
    table = format_table(
        ["t (s)", "hit ratio", "live nodes", "under-replicated"],
        rows,
        title=f"Fault schedule run — {scenario}",
    )
    if result.dirty_final_at_end:
        raise ExperimentFailed(
            table,
            f"{result.dirty_final_at_end} dirty final outputs after drain",
        )
    return table


def _chaos(quick: bool, workers, grid_out: str) -> str:
    from repro.bench.chaos import format_results, run_chaos

    results = run_chaos(quick=quick, workers=workers, grid_out=grid_out)
    table = format_results(results) + f"\n[grid written to {grid_out}]"
    total = sum(r.violations_total for r in results)
    if total:
        failing = [r.cell_id for r in results if r.violations_total]
        raise ExperimentFailed(
            table,
            f"{total} invariant violations in cells {failing}; "
            "minimized reproducers under examples/faults/",
        )
    return table


def _tenants(quick: bool, workers, grid_out: str) -> str:
    from repro.bench.tenants import format_results, run_tenants

    results = run_tenants(quick=quick, workers=workers, grid_out=grid_out)
    return format_results(results) + f"\n[grid written to {grid_out}]"


def _cachewars(quick: bool, workers, grid_out: str) -> str:
    from repro.bench.cachewars import format_results, run_cachewars

    results = run_cachewars(quick=quick, workers=workers, grid_out=grid_out)
    return format_results(results) + f"\n[grid written to {grid_out}]"


def _report(quick: bool, out: str) -> str:
    from repro.bench.report import run_report

    return run_report(quick=quick, out=out)


def _perf(quick: bool, workers, out: str, label=None) -> str:
    from repro.bench.perfbench import (
        find_comparable,
        format_delta,
        format_entry,
        record,
        run_perf,
    )

    entry = run_perf(quick=quick, workers=workers, label=label)
    doc = record(entry, path=out)
    # The appended entry is last; the delta line makes regressions
    # visible directly in CI logs instead of only in the artifact.
    previous = find_comparable(doc["entries"][:-1], entry)
    return (
        format_entry(entry)
        + "\n"
        + format_delta(entry, previous)
        + f"\n[entry appended to {out}]"
    )


EXPERIMENTS: Dict[str, Callable[..., str]] = {
    "fig2": _fig2,
    "fig3": _fig3,
    "table1": _table1,
    "benefit": _benefit,
    "fig5": _fig5,
    "fig6": _fig6,
    "maturation": _maturation,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "table2": _table2,
    "fig10": _fig10,
    "faults": _faults,
}


def _export_trace(path: str) -> None:
    from repro.obs import active_tracers, export_json

    export_json(path, tracers=active_tracers(), meta={"source": "repro.cli"})
    print(f"[trace written to {path}]")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate the OFC paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names, 'all', 'list', 'report', 'perf', "
        "'tenants', 'cachewars', 'chaos', or 'run'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller sample counts"
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        default=None,
        help="process fan-out for sweep experiments (1 = serial; "
        "default: one worker per core)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="enable span tracing and write the trace summary JSON here",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="results/report.json",
        help="output path for the 'report' experiment's metrics JSON",
    )
    parser.add_argument(
        "--grid-out",
        metavar="PATH",
        default="results/tenants_grid.json",
        help="output path for the 'tenants' sweep's grid JSON",
    )
    parser.add_argument(
        "--cachewars-out",
        metavar="PATH",
        default="results/cachewars_grid.json",
        help="output path for the 'cachewars' head-to-head grid JSON",
    )
    parser.add_argument(
        "--chaos-out",
        metavar="PATH",
        default="results/chaos_grid.json",
        help="output path for the 'chaos' fuzzing grid JSON",
    )
    parser.add_argument(
        "--bench-out",
        metavar="PATH",
        default="BENCH_perf.json",
        help="trajectory file the 'perf' command appends to",
    )
    parser.add_argument(
        "--label",
        metavar="TEXT",
        default=None,
        help="label recorded with the 'perf' trajectory entry "
        "(default: 'quick' or 'full')",
    )
    parser.add_argument(
        "--no-model-cache",
        action="store_true",
        help="disable the shared warm-model cache (cold pretraining "
        "in every sweep cell)",
    )
    parser.add_argument(
        "--faults",
        metavar="PATH",
        default=None,
        help="JSON fault schedule for the 'run' command",
    )
    parser.add_argument(
        "--duration",
        type=float,
        metavar="S",
        default=240.0,
        help="simulated duration for the 'run' command (seconds)",
    )
    args = parser.parse_args(argv)

    if args.experiments == ["list"]:
        for name in EXPERIMENTS:
            print(name)
        print("report")
        print("perf")
        print("tenants")
        print("cachewars")
        print("chaos")
        print("run")
        return 0
    names = (
        list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    )
    if args.no_model_cache:
        from repro.bench import model_cache

        model_cache.set_enabled(False)
    tracing = args.trace is not None
    if tracing:
        from repro.obs import enable_tracing, reset_tracing

        reset_tracing()
        enable_tracing()
    try:
        for name in names:
            runner = EXPERIMENTS.get(name)
            if runner is None and name not in (
                "report",
                "perf",
                "tenants",
                "cachewars",
                "chaos",
                "run",
            ):
                print(f"unknown experiment: {name}", file=sys.stderr)
                return 2
            try:
                if name == "report":
                    print(_report(args.quick, args.out))
                elif name == "perf":
                    print(
                        _perf(
                            args.quick,
                            args.workers,
                            args.bench_out,
                            label=args.label,
                        )
                    )
                elif name == "tenants":
                    print(_tenants(args.quick, args.workers, args.grid_out))
                elif name == "cachewars":
                    print(
                        _cachewars(
                            args.quick, args.workers, args.cachewars_out
                        )
                    )
                elif name == "chaos":
                    print(_chaos(args.quick, args.workers, args.chaos_out))
                elif name == "run":
                    print(_run_schedule(args.quick, args.faults, args.duration))
                else:
                    print(runner(args.quick, workers=args.workers))
            except ExperimentFailed as failure:
                print(failure.output)
                print(
                    f"experiment failed: {name}: {failure.reason}",
                    file=sys.stderr,
                )
                return 1
            except Exception:
                # Surface the failure as an unambiguous exit status so
                # CI smoke steps can gate on this command.
                traceback.print_exc()
                print(f"experiment failed: {name}", file=sys.stderr)
                return 1
            print()
        if tracing:
            try:
                _export_trace(args.trace)
            except OSError:
                traceback.print_exc()
                print(f"could not write trace: {args.trace}", file=sys.stderr)
                return 1
    finally:
        if tracing:
            from repro.obs import reset_tracing

            reset_tracing()
    return 0


if __name__ == "__main__":
    sys.exit(main())
