"""Invariant checker over a recorded dataclient history.

Consistency is judged from the *function body's* point of view — the
only one the paper's transparency claim is about.  The checker never
compares raw version counters across sources (cache versions reset when
an object is refilled after a crash); instead it uses payload object
identity, which flows by reference through the cache, the RSDS and the
persistor, plus the RSDS metadata version, whose counter survives every
fault.

History invariants (pure, testable without a deployment):

* **shadow-read** — an ok read returned no payload for a nonzero-size
  object: a stale RSDS shadow leaked to a function body;
* **stale-read** — an ok read returned a payload that is neither the
  last acked write's nor any concurrent write's;
* **pipeline-ryw** — a read missed a key an earlier stage of the same
  pipeline had already acked (read-your-writes within a pipeline);
* **lost-write** — a read missed a key whose last acked data-plane op
  was a write (general read-after-ack);
* **version-order** — RSDS versions observed at ack went backwards
  across non-overlapping writes (the store object was destroyed and
  recreated behind the proxy's back).

End-state invariants (need the settled deployment):

* **durability** — the last acked non-intermediate write of a key is
  in neither the RSDS nor the cache: an acked write was lost;
* **dirty-final** — a final output still sits dirty in the cache after
  the settle drain (generalizes the old ofc-only dirty-finals audit to
  any backend);
* **replication** — with every node back up and repair complete, the
  backend still reports under-replicated objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.checks.history import OpRecord


@dataclass(frozen=True)
class Violation:
    """One invariant failure, anchored to the op that exposed it."""

    invariant: str
    key: str
    detail: str
    t: float
    seq: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "invariant": self.invariant,
            "key": self.key,
            "detail": self.detail,
            "t": self.t,
            "seq": self.seq,
        }


def _overlaps(op: OpRecord, read: OpRecord) -> bool:
    """True when ``op`` was in flight at any point during ``read``."""
    end = read.t_ack if read.t_ack is not None else read.t_start
    op_end = op.t_ack
    return op.t_start <= end and (op_end is None or op_end >= read.t_start)


def _last_acked_before(ops: List[OpRecord], t: float) -> Optional[OpRecord]:
    last = None
    for op in ops:
        if op.acked and op.t_ack <= t:
            if last is None or (op.t_ack, op.seq) > (last.t_ack, last.seq):
                last = op
    return last


def _valid_payloads(writes: List[OpRecord], read: OpRecord) -> List[Any]:
    """Payloads a read may legally return: the last acked write before
    it started, plus every write concurrent with the read."""
    valid: List[Any] = []
    last = _last_acked_before(writes, read.t_start)
    if last is not None:
        valid.append(last.payload)
    for op in writes:
        if _overlaps(op, read):
            valid.append(op.payload)
    return valid


def check_ops(ops: List[OpRecord]) -> List[Violation]:
    """Pure history invariants (no deployment needed)."""
    violations: List[Violation] = []
    by_key: Dict[str, Dict[str, List[OpRecord]]] = {}
    for op in ops:
        slot = by_key.setdefault(
            op.key, {"read": [], "write": [], "delete": []}
        )
        slot[op.op].append(op)

    for key, slot in sorted(by_key.items()):
        writes, deletes = slot["write"], slot["delete"]
        mutations = writes + deletes
        for read in slot["read"]:
            t_anchor = read.t_ack if read.t_ack is not None else read.t_start
            if read.status == "ok" and read.payload_missing:
                violations.append(
                    Violation(
                        "shadow-read",
                        key,
                        f"ok read returned no payload for {read.size} B "
                        "object (stale RSDS shadow served)",
                        t_anchor,
                        read.seq,
                    )
                )
                continue
            if read.status == "ok" and writes:
                valid = _valid_payloads(writes, read)
                if valid and not any(p is read.payload for p in valid):
                    if any(_overlaps(d, read) for d in deletes):
                        continue  # racing a delete: content undefined
                    violations.append(
                        Violation(
                            "stale-read",
                            key,
                            "ok read returned a payload matching none of "
                            f"the {len(valid)} admissible write(s)",
                            t_anchor,
                            read.seq,
                        )
                    )
                continue
            if read.status == "miss" and mutations:
                if any(_overlaps(d, read) for d in deletes):
                    continue  # concurrent delete: a miss is legitimate
                last = _last_acked_before(mutations, read.t_start)
                if last is None or last.op != "write":
                    continue
                if (
                    read.pipeline_id is not None
                    and last.pipeline_id == read.pipeline_id
                ):
                    violations.append(
                        Violation(
                            "pipeline-ryw",
                            key,
                            "pipeline read missed a key an earlier stage "
                            f"acked at t={last.t_ack:.3f}",
                            t_anchor,
                            read.seq,
                        )
                    )
                else:
                    violations.append(
                        Violation(
                            "lost-write",
                            key,
                            "read missed a key whose last acked op was a "
                            f"write at t={last.t_ack:.3f}",
                            t_anchor,
                            read.seq,
                        )
                    )
        # Version monotonicity across non-overlapping acked writes.
        versioned = sorted(
            (w for w in writes if w.acked and w.store_version is not None),
            key=lambda w: (w.t_ack, w.seq),
        )
        for prev, cur in zip(versioned, versioned[1:]):
            if cur.t_start < prev.t_ack:
                continue  # overlapping writes may ack out of order
            if cur.store_version < prev.store_version:
                violations.append(
                    Violation(
                        "version-order",
                        key,
                        f"RSDS version went backwards: {prev.store_version}"
                        f" -> {cur.store_version}",
                        cur.t_ack,
                        cur.seq,
                    )
                )
    return violations


def check_end_state(ops: List[OpRecord], ofc) -> List[Violation]:
    """End-state invariants over the settled deployment."""
    violations: List[Violation] = []
    store = ofc.store
    backend = ofc.backend
    now = ofc.kernel.now

    by_key: Dict[str, List[OpRecord]] = {}
    for op in ops:
        by_key.setdefault(op.key, []).append(op)

    for key, key_ops in sorted(by_key.items()):
        writes = [o for o in key_ops if o.op == "write" and o.acked]
        if not writes:
            continue
        last = max(writes, key=lambda w: (w.t_ack, w.seq))
        if last.intermediate:
            continue  # pipeline-internal: deleted by design (§6.3)
        deletes = [o for o in key_ops if o.op == "delete" and o.acked]
        if any(d.t_ack >= last.t_start for d in deletes):
            continue  # deleted after (or racing) the last write
        if last.payload is None:
            continue  # nothing to fingerprint
        valid = [w.payload for w in writes if w.t_ack >= last.t_start]
        bucket, _sep, name = key.partition("/")
        if store.contains(bucket, name):
            stored = store._object(bucket, name)
            if any(p is stored.payload for p in valid):
                continue  # durable with an admissible payload
        cached = backend.peek(key)
        if cached is not None and any(p is cached.value for p in valid):
            # Present but only in the cache: the dirty-final audit below
            # reports it if the write-back never completed.
            continue
        violations.append(
            Violation(
                "durability",
                key,
                f"acked write at t={last.t_ack:.3f} is in neither the "
                "RSDS nor the cache",
                now,
                last.seq,
            )
        )

    for _node, obj in backend.objects():
        if obj.flags.get("dirty", False) and obj.flags.get("final", False):
            violations.append(
                Violation(
                    "dirty-final",
                    obj.key,
                    "final output still dirty in the cache after settle "
                    "(write-back lost or stuck)",
                    now,
                )
            )

    snap = backend.stats_snapshot()
    if snap.get("live_servers", 0) == len(backend.node_ids):
        under = snap.get("under_replicated", 0)
        if under:
            violations.append(
                Violation(
                    "replication",
                    "*",
                    f"{under} object(s) under-replicated with every node "
                    "live and repair complete",
                    now,
                )
            )
    return violations


def check_history(ops: List[OpRecord], ofc=None) -> List[Violation]:
    """Full checker pass: history invariants plus (when a deployment is
    supplied) the end-state audit.  Returns violations sorted by time."""
    violations = check_ops(ops)
    if ofc is not None:
        violations.extend(check_end_state(ops, ofc))
    return sorted(violations, key=lambda v: (v.t, v.seq or 0, v.invariant))


def count_by_invariant(violations: List[Violation]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for violation in violations:
        counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
    return dict(sorted(counts.items()))
