"""History-based consistency checking for the chaos harness.

Two pieces:

* :mod:`repro.checks.history` — a recorder wrapped around the
  platform's dataclient factory, capturing every read/write/delete a
  function body issues (sim-time start/ack, status, payload identity,
  store version at ack);
* :mod:`repro.checks.invariants` — a checker over that history plus
  the deployment's end state: acked-write durability, dirty-final
  audit, no stale/shadow read after ack, read-your-writes within a
  pipeline, write-version monotonicity and a replication-level audit
  after recovery.

The recorder publishes a ``checks`` collector in the deployment's obs
registry, so ``repro report`` and the chaos grid surface violation
counts by invariant.
"""

from repro.checks.history import HistoryRecorder, OpRecord, RecordingDataClient
from repro.checks.invariants import Violation, check_history

__all__ = [
    "HistoryRecorder",
    "OpRecord",
    "RecordingDataClient",
    "Violation",
    "check_history",
]
