"""History recorder at the dataclient seam.

The platform hands every invocation a :class:`~repro.faas.dataclient.
DataClient`; wrapping the factory captures the complete data-plane
history of a run — every read, write and delete a function body issues,
with simulated start/ack times, outcome, and the payload *identity*
(payload objects are descriptor instances that flow by reference
through the cache, the store and the persistor, so ``is`` comparisons
across sources are exact where version counters are not: cache versions
reset when an object is refilled after a crash).

The recorder is pure bookkeeping: it never yields, draws no randomness
and schedules nothing, so attaching it does not perturb the simulated
schedule — a run with the recorder is bit-identical to one without.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.faas.dataclient import DataClient
from repro.kvcache.errors import NoSuchKey
from repro.storage.errors import NoSuchObject, StoreUnavailable


@dataclass
class OpRecord:
    """One data-plane operation as seen at the dataclient seam."""

    seq: int
    op: str  # "read" | "write" | "delete"
    key: str
    t_start: float
    t_ack: Optional[float] = None
    #: "ok", "miss" (NoSuchKey/NoSuchObject), "unavailable"
    #: (StoreUnavailable), or "error" (anything else).
    status: str = "ok"
    error: Optional[str] = None
    #: Payload object reference (writes: what was written; ok reads:
    #: what came back).  Identity is the cross-source fingerprint.
    payload: Any = None
    size: int = 0
    #: Version of the returned object (reads; source-relative counter).
    version: Optional[int] = None
    #: RSDS metadata version observed at ack (writes; the store counter
    #: survives crashes/refills, unlike cache versions).
    store_version: Optional[int] = None
    #: An ok read whose payload was missing despite a nonzero size —
    #: the shape of a stale shadow served to a function body.
    payload_missing: bool = False
    tenant: str = ""
    request_id: int = 0
    pipeline_id: Optional[str] = None
    final_stage: bool = True
    intermediate: bool = False

    @property
    def acked(self) -> bool:
        return self.status == "ok" and self.t_ack is not None


class RecordingDataClient(DataClient):
    """Wraps a real dataclient, appending an :class:`OpRecord` per op."""

    def __init__(self, inner: DataClient, record, recorder: "HistoryRecorder"):
        self.inner = inner
        self.record = record
        self.recorder = recorder

    def _begin(self, op: str, bucket: str, name: str) -> OpRecord:
        request = getattr(self.record, "request", None)
        rec = OpRecord(
            seq=self.recorder.next_seq(),
            op=op,
            key=f"{bucket}/{name}",
            t_start=self.recorder.kernel.now,
            tenant=getattr(request, "tenant", "") or "",
            request_id=getattr(request, "request_id", 0),
            pipeline_id=getattr(request, "pipeline_id", None),
            final_stage=getattr(request, "final_stage", True),
        )
        self.recorder.ops.append(rec)
        return rec

    def _fail(self, rec: OpRecord, exc: BaseException) -> None:
        rec.t_ack = self.recorder.kernel.now
        rec.error = type(exc).__name__
        if isinstance(exc, (NoSuchObject, NoSuchKey)):
            rec.status = "miss"
        elif isinstance(exc, StoreUnavailable):
            rec.status = "unavailable"
        else:
            rec.status = "error"

    def read(self, bucket: str, name: str) -> Generator:
        rec = self._begin("read", bucket, name)
        try:
            obj = yield from self.inner.read(bucket, name)
        except BaseException as exc:
            self._fail(rec, exc)
            raise
        rec.t_ack = self.recorder.kernel.now
        rec.payload = obj.payload
        rec.size = obj.meta.size
        rec.version = obj.meta.version
        rec.payload_missing = obj.payload is None and obj.meta.size > 0
        return obj

    def write(
        self,
        bucket: str,
        name: str,
        payload: Any,
        size: int,
        content_type: str = "application/octet-stream",
        user_meta: Optional[Dict[str, Any]] = None,
        intermediate: bool = False,
        pipeline_id: Optional[str] = None,
    ) -> Generator:
        rec = self._begin("write", bucket, name)
        rec.payload = payload
        rec.size = size
        rec.intermediate = intermediate
        if pipeline_id is not None:
            rec.pipeline_id = pipeline_id
        try:
            result = yield from self.inner.write(
                bucket,
                name,
                payload,
                size,
                content_type=content_type,
                user_meta=user_meta,
                intermediate=intermediate,
                pipeline_id=pipeline_id,
            )
        except BaseException as exc:
            self._fail(rec, exc)
            raise
        rec.t_ack = self.recorder.kernel.now
        store = self.recorder.store
        if store is not None and store.contains(bucket, name):
            rec.store_version = store.peek_meta(bucket, name).version
        return result

    def delete(self, bucket: str, name: str) -> Generator:
        rec = self._begin("delete", bucket, name)
        try:
            result = yield from self.inner.delete(bucket, name)
        except BaseException as exc:
            self._fail(rec, exc)
            raise
        rec.t_ack = self.recorder.kernel.now
        return result


@dataclass
class HistorySummary:
    """The ``checks`` collector payload."""

    attached: int = 1
    ops: int = 0
    reads: int = 0
    writes: int = 0
    deletes: int = 0
    violations_total: int = 0
    violations: Dict[str, int] = field(default_factory=dict)


class HistoryRecorder:
    """Captures the full dataclient history of one deployment.

    Wraps ``ofc.platform.data_client_factory`` so every invocation's
    client is a :class:`RecordingDataClient`; registers itself as
    ``ofc.checks_recorder`` so the platform's always-on ``checks``
    collector surfaces the op counts and any violations attached after
    a checker pass.
    """

    def __init__(self, ofc):
        self.ofc = ofc
        self.kernel = ofc.kernel
        self.store = getattr(ofc, "store", None)
        self.ops: List[OpRecord] = []
        #: Filled by the chaos/faults drivers after a checker pass.
        self.violations: list = []
        self._seq = 0
        self._inner_factory = ofc.platform.data_client_factory
        ofc.platform.data_client_factory = self._make_client
        ofc.checks_recorder = self

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _make_client(self, invoker, record) -> RecordingDataClient:
        return RecordingDataClient(
            self._inner_factory(invoker, record), record, self
        )

    def detach(self) -> None:
        """Restore the original factory (recorded history is kept)."""
        self.ofc.platform.data_client_factory = self._inner_factory
        if getattr(self.ofc, "checks_recorder", None) is self:
            self.ofc.checks_recorder = None

    def snapshot(self) -> Dict[str, Any]:
        summary = HistorySummary(ops=len(self.ops))
        for op in self.ops:
            if op.op == "read":
                summary.reads += 1
            elif op.op == "write":
                summary.writes += 1
            else:
                summary.deletes += 1
        for violation in self.violations:
            name = getattr(violation, "invariant", str(violation))
            summary.violations[name] = summary.violations.get(name, 0) + 1
        summary.violations_total = len(self.violations)
        return {
            "attached": summary.attached,
            "ops": summary.ops,
            "reads": summary.reads,
            "writes": summary.writes,
            "deletes": summary.deletes,
            "violations_total": summary.violations_total,
            "violations": dict(sorted(summary.violations.items())),
        }
