"""History recorder at the dataclient seam.

The platform hands every invocation a :class:`~repro.faas.dataclient.
DataClient`; wrapping the factory captures the complete data-plane
history of a run — every read, write and delete a function body issues,
with simulated start/ack times, outcome, and the payload *identity*
(payload objects are descriptor instances that flow by reference
through the cache, the store and the persistor, so ``is`` comparisons
across sources are exact where version counters are not: cache versions
reset when an object is refilled after a crash).

The recorder is pure bookkeeping: it never yields, draws no randomness
and schedules nothing, so attaching it does not perturb the simulated
schedule — a run with the recorder is bit-identical to one without.
It is also cheap enough to leave on in perf-sensitive chaos cells:
records are slotted plain objects built by a flattened constructor
(no dataclass ``__init__`` argument parsing), the request-derived
fields are resolved once per client instead of once per op, and the
read/write/delete counters stream into the recorder so a snapshot
never scans the history.  For long soaks where only the checker's
*recent* window matters, ``ring_capacity`` bounds the kept history to
the newest N records (a ``collections.deque`` ring; the ``dropped``
count is surfaced in the snapshot so truncation is never silent).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Generator, List, Optional, Union

from repro.faas.dataclient import DataClient
from repro.kvcache.errors import NoSuchKey
from repro.storage.errors import NoSuchObject, StoreUnavailable


class OpRecord:
    """One data-plane operation as seen at the dataclient seam.

    A slotted plain class (not a dataclass): chaos cells allocate one
    per data-plane op, so the record stays as close to a bare struct
    as Python allows while keeping the keyword constructor.
    """

    __slots__ = (
        "seq",
        "op",  # "read" | "write" | "delete"
        "key",
        "t_start",
        "t_ack",
        #: "ok", "miss" (NoSuchKey/NoSuchObject), "unavailable"
        #: (StoreUnavailable), or "error" (anything else).
        "status",
        "error",
        #: Payload object reference (writes: what was written; ok reads:
        #: what came back).  Identity is the cross-source fingerprint.
        "payload",
        "size",
        #: Version of the returned object (reads; source-relative).
        "version",
        #: RSDS metadata version observed at ack (writes; the store
        #: counter survives crashes/refills, unlike cache versions).
        "store_version",
        #: An ok read whose payload was missing despite a nonzero size —
        #: the shape of a stale shadow served to a function body.
        "payload_missing",
        "tenant",
        "request_id",
        "pipeline_id",
        "final_stage",
        "intermediate",
    )

    def __init__(
        self,
        seq: int,
        op: str,
        key: str,
        t_start: float,
        t_ack: Optional[float] = None,
        status: str = "ok",
        error: Optional[str] = None,
        payload: Any = None,
        size: int = 0,
        version: Optional[int] = None,
        store_version: Optional[int] = None,
        payload_missing: bool = False,
        tenant: str = "",
        request_id: int = 0,
        pipeline_id: Optional[str] = None,
        final_stage: bool = True,
        intermediate: bool = False,
    ):
        self.seq = seq
        self.op = op
        self.key = key
        self.t_start = t_start
        self.t_ack = t_ack
        self.status = status
        self.error = error
        self.payload = payload
        self.size = size
        self.version = version
        self.store_version = store_version
        self.payload_missing = payload_missing
        self.tenant = tenant
        self.request_id = request_id
        self.pipeline_id = pipeline_id
        self.final_stage = final_stage
        self.intermediate = intermediate

    @property
    def acked(self) -> bool:
        return self.status == "ok" and self.t_ack is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OpRecord(seq={self.seq}, op={self.op!r}, key={self.key!r}, "
            f"t_start={self.t_start}, t_ack={self.t_ack}, "
            f"status={self.status!r})"
        )


class RecordingDataClient(DataClient):
    """Wraps a real dataclient, appending an :class:`OpRecord` per op."""

    def __init__(self, inner: DataClient, record, recorder: "HistoryRecorder"):
        self.inner = inner
        self.record = record
        self.recorder = recorder
        # The invocation request never changes under a live client, so
        # resolve its identity fields once instead of per op.
        request = getattr(record, "request", None)
        self._tenant = getattr(request, "tenant", "") or ""
        self._request_id = getattr(request, "request_id", 0)
        self._pipeline_id = getattr(request, "pipeline_id", None)
        self._final_stage = getattr(request, "final_stage", True)

    def _begin(self, op: str, bucket: str, name: str) -> OpRecord:
        # Flattened OpRecord construction (the ``Kernel.timeout`` trick):
        # one allocation plus direct slot stores, skipping the keyword
        # __init__ on the hottest path in a recorded run.
        recorder = self.recorder
        recorder._seq = seq = recorder._seq + 1
        if op == "read":
            recorder._reads += 1
        elif op == "write":
            recorder._writes += 1
        else:
            recorder._deletes += 1
        rec = OpRecord.__new__(OpRecord)
        rec.seq = seq
        rec.op = op
        rec.key = bucket + "/" + name
        rec.t_start = recorder.kernel.now
        rec.t_ack = None
        rec.status = "ok"
        rec.error = None
        rec.payload = None
        rec.size = 0
        rec.version = None
        rec.store_version = None
        rec.payload_missing = False
        rec.tenant = self._tenant
        rec.request_id = self._request_id
        rec.pipeline_id = self._pipeline_id
        rec.final_stage = self._final_stage
        rec.intermediate = False
        recorder.ops.append(rec)
        return rec

    def _fail(self, rec: OpRecord, exc: BaseException) -> None:
        rec.t_ack = self.recorder.kernel.now
        rec.error = type(exc).__name__
        if isinstance(exc, (NoSuchObject, NoSuchKey)):
            rec.status = "miss"
        elif isinstance(exc, StoreUnavailable):
            rec.status = "unavailable"
        else:
            rec.status = "error"

    def read(self, bucket: str, name: str) -> Generator:
        rec = self._begin("read", bucket, name)
        try:
            obj = yield from self.inner.read(bucket, name)
        except BaseException as exc:
            self._fail(rec, exc)
            raise
        rec.t_ack = self.recorder.kernel.now
        rec.payload = obj.payload
        rec.size = obj.meta.size
        rec.version = obj.meta.version
        rec.payload_missing = obj.payload is None and obj.meta.size > 0
        return obj

    def write(
        self,
        bucket: str,
        name: str,
        payload: Any,
        size: int,
        content_type: str = "application/octet-stream",
        user_meta: Optional[Dict[str, Any]] = None,
        intermediate: bool = False,
        pipeline_id: Optional[str] = None,
    ) -> Generator:
        rec = self._begin("write", bucket, name)
        rec.payload = payload
        rec.size = size
        rec.intermediate = intermediate
        if pipeline_id is not None:
            rec.pipeline_id = pipeline_id
        try:
            result = yield from self.inner.write(
                bucket,
                name,
                payload,
                size,
                content_type=content_type,
                user_meta=user_meta,
                intermediate=intermediate,
                pipeline_id=pipeline_id,
            )
        except BaseException as exc:
            self._fail(rec, exc)
            raise
        rec.t_ack = self.recorder.kernel.now
        store = self.recorder.store
        if store is not None and store.contains(bucket, name):
            rec.store_version = store.peek_meta(bucket, name).version
        return result

    def delete(self, bucket: str, name: str) -> Generator:
        rec = self._begin("delete", bucket, name)
        try:
            result = yield from self.inner.delete(bucket, name)
        except BaseException as exc:
            self._fail(rec, exc)
            raise
        rec.t_ack = self.recorder.kernel.now
        return result


class HistoryRecorder:
    """Captures the full dataclient history of one deployment.

    Wraps ``ofc.platform.data_client_factory`` so every invocation's
    client is a :class:`RecordingDataClient`; registers itself as
    ``ofc.checks_recorder`` so the platform's always-on ``checks``
    collector surfaces the op counts and any violations attached after
    a checker pass.

    ``ring_capacity`` switches the history to a bounded ring: only the
    newest N records are kept (``ops`` becomes a deque), ``seq`` keeps
    counting, and ``dropped`` reports how many records the ring shed.
    The default (None) keeps everything — required by the end-state
    checker, which audits the full history.
    """

    def __init__(self, ofc, ring_capacity: Optional[int] = None):
        self.ofc = ofc
        self.kernel = ofc.kernel
        self.store = getattr(ofc, "store", None)
        self.ring_capacity = ring_capacity
        self.ops: Union[List[OpRecord], "deque[OpRecord]"] = (
            [] if ring_capacity is None else deque(maxlen=ring_capacity)
        )
        #: Filled by the chaos/faults drivers after a checker pass.
        self.violations: list = []
        self._seq = 0
        self._reads = 0
        self._writes = 0
        self._deletes = 0
        self._inner_factory = ofc.platform.data_client_factory
        ofc.platform.data_client_factory = self._make_client
        ofc.checks_recorder = self

    @property
    def dropped(self) -> int:
        """Records shed by the ring (always 0 in unbounded mode)."""
        return self._seq - len(self.ops)

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _make_client(self, invoker, record) -> RecordingDataClient:
        return RecordingDataClient(
            self._inner_factory(invoker, record), record, self
        )

    def detach(self) -> None:
        """Restore the original factory (recorded history is kept)."""
        self.ofc.platform.data_client_factory = self._inner_factory
        if getattr(self.ofc, "checks_recorder", None) is self:
            self.ofc.checks_recorder = None

    def snapshot(self) -> Dict[str, Any]:
        """The ``checks`` collector payload (O(1): streamed counters)."""
        violations: Dict[str, int] = {}
        for violation in self.violations:
            name = getattr(violation, "invariant", str(violation))
            violations[name] = violations.get(name, 0) + 1
        snap: Dict[str, Any] = {
            "attached": 1,
            "ops": self._seq,
            "reads": self._reads,
            "writes": self._writes,
            "deletes": self._deletes,
            "violations_total": len(self.violations),
            "violations": dict(sorted(violations.items())),
        }
        if self.ring_capacity is not None:
            snap["dropped"] = self.dropped
        return snap
