"""Exception types for the distributed cache."""


class CacheError(Exception):
    """Base class for cache failures."""


class NoSuchKey(CacheError):
    """The key is not present in the cache."""


class ObjectTooLarge(CacheError):
    """Object exceeds the cache's maximum object size (10 MB)."""


class CapacityExceeded(CacheError):
    """The target server's memory pool cannot hold the object."""


class ServerDown(CacheError):
    """Operation addressed to a crashed server."""
