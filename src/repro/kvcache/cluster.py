"""Data-plane facade over the cache cluster.

All operations are generator methods driven by the simulation kernel.
Each takes a ``caller`` node id; operations whose master copy lives on
the caller's node run at RAM speed, others pay the remote path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.kvcache.coordinator import Coordinator
from repro.kvcache.errors import (
    CacheError,
    CapacityExceeded,
    NoSuchKey,
    ObjectTooLarge,
)
from repro.kvcache.objects import (
    BACKUP_WRITE,
    CacheObject,
    DISK_READ,
    LOCAL_READ,
    LOCAL_WRITE,
    MAX_OBJECT_SIZE,
    REMOTE_READ,
    REMOTE_WRITE,
)
from repro.kvcache.server import CacheServer
from repro.sim.kernel import Kernel
from repro.sim.latency import CACHE_SCALE_EVICT, CACHE_SCALE_PLAIN, MIGRATION


@dataclass
class ClusterStats:
    puts: int = 0
    gets_local: int = 0
    gets_remote: int = 0
    misses: int = 0
    deletes: int = 0
    migrations: int = 0
    migrated_bytes: int = 0
    recoveries: int = 0
    recovered_objects: int = 0
    resizes: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(self.__dict__)


class CacheCluster:
    """The distributed cache as OFC's rclib sees it."""

    def __init__(
        self,
        kernel: Kernel,
        node_ids: List[str],
        replication_factor: int = 2,
        rng=None,
        max_object_size: int = MAX_OBJECT_SIZE,
    ):
        if not node_ids:
            raise CacheError("cluster needs at least one node")
        self.kernel = kernel
        self.rng = rng
        self.max_object_size = max_object_size
        # Replication cannot exceed the number of other nodes.
        effective_rf = min(replication_factor, len(node_ids) - 1)
        self.coordinator = Coordinator(replication_factor=effective_rf)
        for node_id in node_ids:
            self.coordinator.register(CacheServer(node_id))
        self.stats = ClusterStats()

    # -- helpers ---------------------------------------------------------------

    def server(self, node_id: str):
        return self.coordinator.server(node_id)

    def _delay(self, model, nbytes: int = 0):
        return self.kernel.timeout(model.sample(self.rng, nbytes))

    @property
    def total_capacity(self) -> int:
        return sum(s.capacity for s in self.coordinator.servers.values())

    @property
    def total_used(self) -> int:
        return sum(s.used_bytes for s in self.coordinator.servers.values())

    def contains(self, key: str) -> bool:
        master_id = self.coordinator.master_of(key)
        if master_id is None:
            return False
        return self.coordinator.server(master_id).master_has(key)

    def location_of(self, key: str) -> Optional[str]:
        """Node currently holding the master (in-memory) copy, if any."""
        master_id = self.coordinator.master_of(key)
        if master_id is None:
            return None
        server = self.coordinator.server(master_id)
        return master_id if server.master_has(key) else None

    # -- data plane ---------------------------------------------------------------

    def put(
        self,
        key: str,
        value: Any,
        size: int,
        caller: str,
        flags: Optional[Dict[str, Any]] = None,
    ) -> Generator[Any, Any, str]:
        """Write an object; returns the master node id.

        Placement prefers the caller's node (data locality for the
        sandbox that produced the object).  Raises
        :class:`ObjectTooLarge` or :class:`CapacityExceeded` when the
        object cannot be admitted; OFC then falls through to the RSDS.
        """
        if size > self.max_object_size:
            raise ObjectTooLarge(f"{key}: {size} bytes")
        existing_master = self.location_of(key)
        master_id = existing_master or self.coordinator.choose_master(
            size, preferred=caller
        )
        if master_id is None:
            raise CapacityExceeded(f"no server can fit {size} bytes")
        span = self.kernel.tracer.start(
            "kvcache.put",
            caller=caller,
            placement="local" if master_id == caller else "remote",
        )
        master = self.coordinator.server(master_id)
        version = 1
        if master.master_has(key):
            old = master.master_get(key)
            version = old.version + 1
            master.master_delete(key)
        obj = CacheObject(
            key=key,
            value=value,
            size=size,
            version=version,
            created_at=self.kernel.now,
            t_access=self.kernel.now,
            flags=dict(flags or {}),
        )
        master.master_put(obj)
        write_model = LOCAL_WRITE if master_id == caller else REMOTE_WRITE
        yield self._delay(write_model, size)
        # Replicate to backups (buffered log writes, issued in parallel:
        # the slowest one bounds the latency).
        backup_ids = self.coordinator.backups_of(key) or set(
            self.coordinator.choose_backups(key, master_id)
        )
        longest = 0.0
        kept_backups = []
        for backup_id in backup_ids:
            backup = self.coordinator.server(backup_id)
            if not backup.up:
                continue
            backup.backup_put(obj.copy())
            longest = max(longest, BACKUP_WRITE.sample(self.rng, size))
            kept_backups.append(backup_id)
        if longest:
            yield longest
        self.coordinator.record_placement(key, master_id, kept_backups)
        self.stats.puts += 1
        span.finish(bytes=size)
        return master_id

    def get(self, key: str, caller: str) -> Generator[Any, Any, CacheObject]:
        """Read an object's master copy; raises NoSuchKey on miss."""
        tracer = self.kernel.tracer
        master_id = self.location_of(key)
        if master_id is None:
            self.stats.misses += 1
            if tracer.enabled:
                tracer.start("kvcache.get", caller=caller).finish(status="miss")
            raise NoSuchKey(key)
        span = tracer.start(
            "kvcache.get",
            caller=caller,
            status="local" if master_id == caller else "remote",
        )
        master = self.coordinator.server(master_id)
        obj = master.master_get(key)
        read_model = LOCAL_READ if master_id == caller else REMOTE_READ
        yield self._delay(read_model, obj.size)
        obj.n_access += 1
        obj.t_access = self.kernel.now
        if master_id == caller:
            self.stats.gets_local += 1
        else:
            self.stats.gets_remote += 1
        span.finish(bytes=obj.size)
        return CacheObject(
            key=obj.key,
            value=obj.value,
            size=obj.size,
            version=obj.version,
            created_at=obj.created_at,
            n_access=obj.n_access,
            t_access=obj.t_access,
            flags=dict(obj.flags),
        )

    def peek(self, key: str) -> Optional[CacheObject]:
        """Control-plane read without latency or access accounting."""
        master_id = self.location_of(key)
        if master_id is None:
            return None
        return self.coordinator.server(master_id).master_get(key)

    def set_flags(self, key: str, **flags: Any) -> None:
        obj = self.peek(key)
        if obj is None:
            raise NoSuchKey(key)
        obj.flags.update(flags)

    def delete(self, key: str, caller: str) -> Generator[Any, Any, None]:
        """Remove an object from the cache everywhere (master+backups)."""
        master_id = self.coordinator.master_of(key)
        if master_id is None:
            raise NoSuchKey(key)
        span = self.kernel.tracer.start("kvcache.delete", caller=caller)
        master = self.coordinator.server(master_id)
        if master.master_has(key):
            master.master_delete(key)
        for backup_id in self.coordinator.backups_of(key):
            backup = self.coordinator.server(backup_id)
            if backup.up:
                backup.backup_delete(key)
        self.coordinator.forget(key)
        model = LOCAL_WRITE if master_id == caller else REMOTE_WRITE
        yield self._delay(model)
        self.stats.deletes += 1
        span.finish()

    # -- scaling primitives -----------------------------------------------------------

    def scale_up(self, node_id: str, extra_bytes: int) -> Generator[Any, Any, int]:
        """Grow a node's memory pool; returns the new capacity."""
        if extra_bytes < 0:
            raise CacheError("extra_bytes must be non-negative")
        server = self.coordinator.server(node_id)
        server.resize(server.capacity + extra_bytes)
        yield self._delay(CACHE_SCALE_PLAIN)
        self.stats.resizes += 1
        return server.capacity

    def scale_down(
        self, node_id: str, new_capacity: int, evicting: bool = False
    ) -> Generator[Any, Any, int]:
        """Shrink a node's pool to ``new_capacity``.

        The caller (OFC's CacheAgent) must have made room first via
        eviction/migration; this op only pays the control latency
        (§7.2.1: ~289 µs plain, ~373 µs with eviction).
        """
        server = self.coordinator.server(node_id)
        server.resize(new_capacity)
        model = CACHE_SCALE_EVICT if evicting else CACHE_SCALE_PLAIN
        yield self._delay(model)
        self.stats.resizes += 1
        return server.capacity

    def migrate_master(
        self, key: str, target: Optional[str] = None
    ) -> Generator[Any, Any, Optional[str]]:
        """Optimized master hand-off (§6.4).

        A new master is elected among the *backup* nodes (which already
        hold an on-disk copy), the object is loaded from the new
        master's local disk, and the old master demotes itself to a
        backup.  No inter-node payload transfer occurs.  Returns the new
        master id, or None when no backup can take over.
        """
        master_id = self.coordinator.master_of(key)
        if master_id is None:
            raise NoSuchKey(key)
        old_master = self.coordinator.server(master_id)
        obj = old_master.master_get(key)
        candidates = [
            self.coordinator.server(b)
            for b in self.coordinator.backups_of(key)
            if (target is None or b == target)
        ]
        candidates = [
            s
            for s in candidates
            if s.up and s.backup_has(key) and s.can_fit(obj.size)
        ]
        if not candidates:
            return None
        span = self.kernel.tracer.start(
            "kvcache.migrate", source=master_id, bytes=obj.size
        )
        new_master = max(candidates, key=lambda s: s.free_bytes)
        # Promote from the new master's local (buffered) backup copy and
        # drop the old RAM copy.  No payload crosses the network, and
        # backup segments are RAM-buffered, so the whole hand-off is
        # covered by the MIGRATION model (0.18 ms per 8 MB, §7.2.1).
        promoted = new_master.promote(key)
        promoted.value = obj.value
        promoted.version = obj.version
        promoted.n_access = obj.n_access
        promoted.t_access = obj.t_access
        promoted.flags = dict(obj.flags)
        old_master.demote(key)
        self.coordinator.record_master_change(key, new_master.server_id)
        yield self._delay(MIGRATION, obj.size)
        self.stats.migrations += 1
        self.stats.migrated_bytes += obj.size
        span.finish(target=new_master.server_id)
        return new_master.server_id

    # -- failures -----------------------------------------------------------------

    def crash(self, node_id: str) -> None:
        self.coordinator.server(node_id).crash()

    def recover(self, node_id: str) -> Generator[Any, Any, int]:
        """Recover the master copies a crashed node held, by promoting
        backup copies on the surviving nodes (RAMCloud fast recovery).

        Returns the number of objects recovered; objects whose every
        backup is also down are lost from the cache (they still exist in
        the RSDS or are re-created by retried invocations).
        """
        recovered = 0
        for key in self.coordinator.keys_mastered_by(node_id):
            candidates = [
                self.coordinator.server(b)
                for b in self.coordinator.backups_of(key)
            ]
            candidates = [s for s in candidates if s.up and s.backup_has(key)]
            obj_size = candidates[0].backup_get(key).size if candidates else 0
            candidates = [s for s in candidates if s.can_fit(obj_size)]
            if not candidates:
                self.coordinator.forget(key)
                continue
            new_master = max(candidates, key=lambda s: s.free_bytes)
            yield self._delay(DISK_READ, obj_size)
            obj = new_master.promote(key)
            # The crashed node holds no copy any more: rebuild the backup
            # set from the surviving replicas and re-replicate up to the
            # configured factor.
            surviving = {
                b
                for b in self.coordinator.backups_of(key)
                if b != new_master.server_id
                and self.coordinator.server(b).up
                and self.coordinator.server(b).backup_has(key)
            }
            missing = self.coordinator.replication_factor - len(surviving)
            if missing > 0:
                for backup_id in self.coordinator.choose_backups(
                    key, new_master.server_id
                ):
                    if missing <= 0:
                        break
                    if backup_id in surviving or backup_id == node_id:
                        continue
                    backup = self.coordinator.server(backup_id)
                    backup.backup_put(obj.copy())
                    yield self._delay(BACKUP_WRITE, obj.size)
                    surviving.add(backup_id)
                    missing -= 1
            self.coordinator.record_placement(
                key, new_master.server_id, sorted(surviving)
            )
            recovered += 1
        self.stats.recoveries += 1
        self.stats.recovered_objects += recovered
        return recovered
