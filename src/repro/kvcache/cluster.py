"""Data-plane facade over the cache cluster.

All operations are generator methods driven by the simulation kernel.
Each takes a ``caller`` node id; operations whose master copy lives on
the caller's node run at RAM speed, others pay the remote path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Set

from repro.kvcache.coordinator import Coordinator
from repro.kvcache.errors import (
    CacheError,
    CapacityExceeded,
    NoSuchKey,
    ObjectTooLarge,
)
from repro.kvcache.objects import (
    BACKUP_WRITE,
    CacheObject,
    DISK_READ,
    LOCAL_READ,
    LOCAL_WRITE,
    MAX_OBJECT_SIZE,
    REMOTE_READ,
    REMOTE_WRITE,
)
from repro.kvcache.server import CacheServer
from repro.sim.kernel import Kernel
from repro.sim.latency import CACHE_SCALE_EVICT, CACHE_SCALE_PLAIN, MIGRATION


@dataclass
class ClusterStats:
    puts: int = 0
    gets_local: int = 0
    gets_remote: int = 0
    misses: int = 0
    deletes: int = 0
    migrations: int = 0
    migrated_bytes: int = 0
    recoveries: int = 0
    recovered_objects: int = 0
    resizes: int = 0
    restarts: int = 0
    backups_purged: int = 0
    lost_objects: int = 0
    under_replication_events: int = 0
    repairs: int = 0
    repaired_objects: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(self.__dict__)


class CacheCluster:
    """The distributed cache as OFC's rclib sees it."""

    def __init__(
        self,
        kernel: Kernel,
        node_ids: List[str],
        replication_factor: int = 2,
        rng=None,
        max_object_size: int = MAX_OBJECT_SIZE,
    ):
        if not node_ids:
            raise CacheError("cluster needs at least one node")
        self.kernel = kernel
        self.rng = rng
        self.max_object_size = max_object_size
        # Replication cannot exceed the number of other nodes.
        effective_rf = min(replication_factor, len(node_ids) - 1)
        self.coordinator = Coordinator(replication_factor=effective_rf)
        for node_id in node_ids:
            self.coordinator.register(CacheServer(node_id))
        self.stats = ClusterStats()
        #: Injected fault state (:class:`repro.sim.faults.FaultState`);
        #: ``None`` keeps the data plane on the zero-cost path.
        self.faults = None
        #: Object-lifecycle hooks (per-tenant accounting): called with a
        #: :class:`CacheObject` when a master copy is placed or removed
        #: on the regular data plane.  The fault paths (crash/recover)
        #: intentionally skip them — the accounting resyncs from a scan.
        self.on_object_admitted: Optional[Callable] = None
        self.on_object_removed: Optional[Callable] = None
        #: Called with ``(now, total_capacity)`` after every resize —
        #: pure accounting (cost integrals), never a schedule change.
        self.on_resize: Optional[Callable] = None
        #: Configured aggregate ceiling for quota arithmetic.  The live
        #: ``total_capacity`` can legitimately sit above the configured
        #: cap (scale_up never sizes below what the backup log already
        #: holds), so per-tenant quotas must divide the *clamped*
        #: figure or they sum past the operator's cap.
        self.quota_cap_bytes: Optional[int] = None
        # Keys whose live replica count fell below the configured
        # factor (down backup at put time, partial recovery, crashed
        # backup node).  ``repair()`` drains this set.
        self._under_replicated: Set[str] = set()

    # -- helpers ---------------------------------------------------------------

    def server(self, node_id: str):
        return self.coordinator.server(node_id)

    def _delay(self, model, nbytes: int = 0) -> float:
        # Bare-delay float for the caller to yield: bit-identical to the
        # kernel.timeout() it replaced (same queue slot, same sequence
        # number — see Process._resume's float arm) without the Timeout
        # allocation and callback registration per cache op.
        return model.sample(self.rng, nbytes)

    def _remote_delay(self, model, nbytes: int = 0) -> float:
        """Delay for an inter-node op; scaled during slow-network faults."""
        duration = model.sample(self.rng, nbytes)
        faults = self.faults
        if faults is not None:
            duration *= faults.network_latency_scale
        return duration

    @property
    def total_capacity(self) -> int:
        return sum(s.capacity for s in self.coordinator.servers.values())

    @property
    def total_used(self) -> int:
        return sum(s.used_bytes for s in self.coordinator.servers.values())

    @property
    def quota_capacity(self) -> int:
        """Capacity base for tenant-quota arithmetic: the live total,
        clamped at the configured aggregate cap (if any)."""
        total = self.total_capacity
        if self.quota_cap_bytes is None:
            return total
        return min(total, self.quota_cap_bytes)

    @property
    def under_replicated_keys(self) -> Set[str]:
        """Keys currently holding fewer live backups than configured."""
        return set(self._under_replicated)

    def stats_snapshot(self) -> Dict[str, int]:
        """Counter snapshot plus availability gauges (obs collector)."""
        snap = self.stats.snapshot()
        snap["under_replicated"] = len(self._under_replicated)
        snap["live_servers"] = len(self.coordinator.live_servers())
        return snap

    def _mark_under_replicated(self, key: str) -> None:
        if self.coordinator.replication_factor <= 0:
            return
        if key not in self._under_replicated:
            self._under_replicated.add(key)
            self.stats.under_replication_events += 1

    def contains(self, key: str) -> bool:
        master_id = self.coordinator.master_of(key)
        if master_id is None:
            return False
        return self.coordinator.server(master_id).master_has(key)

    def location_of(self, key: str) -> Optional[str]:
        """Node currently holding the master (in-memory) copy, if any."""
        master_id = self.coordinator.master_of(key)
        if master_id is None:
            return None
        server = self.coordinator.server(master_id)
        return master_id if server.master_has(key) else None

    def _highest_surviving_version(self, key: str) -> int:
        """Best version knowledge for ``key`` after a master loss:
        the coordinator's placement record and any live replica copy."""
        best = self.coordinator.version_of(key)
        for backup_id in self.coordinator.backups_of(key):
            copy = self.coordinator.server(backup_id).backup_peek(key)
            if copy is not None and copy.version > best:
                best = copy.version
        return best

    # -- data plane ---------------------------------------------------------------

    def put(
        self,
        key: str,
        value: Any,
        size: int,
        caller: str,
        flags: Optional[Dict[str, Any]] = None,
    ) -> Generator[Any, Any, str]:
        """Write an object; returns the master node id.

        Placement prefers the caller's node (data locality for the
        sandbox that produced the object).  Raises
        :class:`ObjectTooLarge` or :class:`CapacityExceeded` when the
        object cannot be admitted; OFC then falls through to the RSDS.
        """
        if size > self.max_object_size:
            raise ObjectTooLarge(f"{key}: {size} bytes")
        existing_master = self.location_of(key)
        master_id = existing_master or self.coordinator.choose_master(
            size, preferred=caller
        )
        if master_id is None:
            raise CapacityExceeded(f"no server can fit {size} bytes")
        tracer = self.kernel.tracer
        span = (
            tracer.start(
                "kvcache.put",
                caller=caller,
                placement="local" if master_id == caller else "remote",
            )
            if tracer.enabled
            else None
        )
        master = self.coordinator.server(master_id)
        version = 1
        if master.master_has(key):
            old = master.master_get(key)
            version = old.version + 1
            master.master_delete(key)
            if self.on_object_removed is not None:
                self.on_object_removed(old)
        elif self.coordinator.holds(key):
            # The previous master copy died with its node.  Seed the
            # version past the highest surviving replica / coordinator
            # record; restarting at 1 would make ``persist_payload``
            # ordering treat this newer data as stale.
            version = self._highest_surviving_version(key) + 1
        if master.backup_has(key):
            # This server held a backup copy and is becoming the
            # master: drop the stale disk copy so a later promotion
            # cannot resurrect it.
            master.backup_delete(key)
        obj = CacheObject(
            key=key,
            value=value,
            size=size,
            version=version,
            created_at=self.kernel.now,
            t_access=self.kernel.now,
            flags=dict(flags or {}),
        )
        master.master_put(obj)
        if self.on_object_admitted is not None:
            self.on_object_admitted(obj)
        if master_id == caller:
            yield self._delay(LOCAL_WRITE, size)
        else:
            yield self._remote_delay(REMOTE_WRITE, size)
        # Replicate to backups (buffered log writes, issued in parallel:
        # the slowest one bounds the latency).
        backup_ids = self.coordinator.backups_of(key) or set(
            self.coordinator.choose_backups(key, master_id)
        )
        longest = 0.0
        kept_backups = []
        for backup_id in backup_ids:
            if backup_id == master_id:
                continue
            backup = self.coordinator.server(backup_id)
            if not backup.up:
                continue
            backup.backup_put(obj.copy())
            longest = max(longest, BACKUP_WRITE.sample(self.rng, size))
            kept_backups.append(backup_id)
        if longest:
            faults = self.faults
            if faults is not None:
                longest *= faults.network_latency_scale
            yield longest
        self.coordinator.record_placement(
            key, master_id, kept_backups, version=version
        )
        # Down backups silently drop out of the placement; track the
        # key so the repair pass can restore the replication factor.
        if len(kept_backups) < self.coordinator.replication_factor:
            self._mark_under_replicated(key)
        else:
            self._under_replicated.discard(key)
        self.stats.puts += 1
        if span is not None:
            span.finish(bytes=size)
        return master_id

    def get(self, key: str, caller: str) -> Generator[Any, Any, CacheObject]:
        """Read an object's master copy; raises NoSuchKey on miss."""
        tracer = self.kernel.tracer
        master_id = self.location_of(key)
        if master_id is None:
            self.stats.misses += 1
            if tracer.enabled:
                tracer.start("kvcache.get", caller=caller).finish(status="miss")
            raise NoSuchKey(key)
        span = (
            tracer.start(
                "kvcache.get",
                caller=caller,
                status="local" if master_id == caller else "remote",
            )
            if tracer.enabled
            else None
        )
        master = self.coordinator.server(master_id)
        obj = master.master_get(key)
        if master_id == caller:
            yield self._delay(LOCAL_READ, obj.size)
        else:
            yield self._remote_delay(REMOTE_READ, obj.size)
        obj.n_access += 1
        obj.t_access = self.kernel.now
        if master_id == caller:
            self.stats.gets_local += 1
        else:
            self.stats.gets_remote += 1
        if span is not None:
            span.finish(bytes=obj.size)
        return CacheObject(
            key=obj.key,
            value=obj.value,
            size=obj.size,
            version=obj.version,
            created_at=obj.created_at,
            n_access=obj.n_access,
            t_access=obj.t_access,
            flags=dict(obj.flags),
        )

    def peek(self, key: str) -> Optional[CacheObject]:
        """Control-plane read without latency or access accounting."""
        master_id = self.location_of(key)
        if master_id is None:
            return None
        return self.coordinator.server(master_id).master_get(key)

    def set_flags(self, key: str, **flags: Any) -> None:
        obj = self.peek(key)
        if obj is None:
            # The master copy died, but surviving replicas may still be
            # promoted later: land the update on them (else a persistor
            # completion between crash and recovery is forgotten, and
            # the promoted copy re-triggers the write-back).
            if not self.coordinator.holds(key):
                raise NoSuchKey(key)
            version = self._highest_surviving_version(key)
            updated = False
            for backup_id in self.coordinator.backups_of(key):
                copy = self.coordinator.server(backup_id).backup_peek(key)
                if copy is not None and copy.version == version:
                    copy.flags.update(flags)
                    updated = True
            if not updated:
                raise NoSuchKey(key)
            return
        obj.flags.update(flags)
        # Propagate to live backup copies of the same version: a
        # post-crash promotion must see current flags, or a cleared
        # ``dirty`` resurrects and re-triggers the write-back (and a
        # master-only ``dirty`` set would be lost with the master).
        for backup_id in self.coordinator.backups_of(key):
            copy = self.coordinator.server(backup_id).backup_peek(key)
            if copy is not None and copy.version == obj.version:
                copy.flags.update(flags)

    def delete(self, key: str, caller: str) -> Generator[Any, Any, None]:
        """Remove an object from the cache everywhere (master+backups)."""
        master_id = self.coordinator.master_of(key)
        if master_id is None:
            raise NoSuchKey(key)
        tracer = self.kernel.tracer
        span = (
            tracer.start("kvcache.delete", caller=caller)
            if tracer.enabled
            else None
        )
        master = self.coordinator.server(master_id)
        if master.master_has(key):
            removed = master.master_get(key)
            master.master_delete(key)
            if self.on_object_removed is not None:
                self.on_object_removed(removed)
        for backup_id in self.coordinator.backups_of(key):
            backup = self.coordinator.server(backup_id)
            if backup.up:
                backup.backup_delete(key)
        self.coordinator.forget(key)
        self._under_replicated.discard(key)
        model = LOCAL_WRITE if master_id == caller else REMOTE_WRITE
        yield self._delay(model)
        self.stats.deletes += 1
        if span is not None:
            span.finish()

    # -- scaling primitives -----------------------------------------------------------

    def scale_up(self, node_id: str, extra_bytes: int) -> Generator[Any, Any, int]:
        """Grow a node's memory pool; returns the new capacity."""
        if extra_bytes < 0:
            raise CacheError("extra_bytes must be non-negative")
        server = self.coordinator.server(node_id)
        try:
            server.resize(server.capacity + extra_bytes)
        except CapacityExceeded:
            # Backup replication appends to the log without a capacity
            # check, so the log can sit above the configured capacity;
            # a small grow must not fail because of that.  Compact the
            # garbage and never size below what the log actually holds.
            server.log.clean()
            server.resize(
                max(server.capacity + extra_bytes, server.used_bytes)
            )
        yield self._delay(CACHE_SCALE_PLAIN)
        self.stats.resizes += 1
        if self.on_resize is not None:
            self.on_resize(self.kernel.now, self.total_capacity)
        return server.capacity

    def scale_down(
        self, node_id: str, new_capacity: int, evicting: bool = False
    ) -> Generator[Any, Any, int]:
        """Shrink a node's pool to ``new_capacity``.

        The caller (OFC's CacheAgent) must have made room first via
        eviction/migration; this op only pays the control latency
        (§7.2.1: ~289 µs plain, ~373 µs with eviction).
        """
        server = self.coordinator.server(node_id)
        server.resize(new_capacity)
        model = CACHE_SCALE_EVICT if evicting else CACHE_SCALE_PLAIN
        yield self._delay(model)
        self.stats.resizes += 1
        if self.on_resize is not None:
            self.on_resize(self.kernel.now, self.total_capacity)
        return server.capacity

    def migrate_master(
        self, key: str, target: Optional[str] = None
    ) -> Generator[Any, Any, Optional[str]]:
        """Optimized master hand-off (§6.4).

        A new master is elected among the *backup* nodes (which already
        hold an on-disk copy), the object is loaded from the new
        master's local disk, and the old master demotes itself to a
        backup.  No inter-node payload transfer occurs.  Returns the new
        master id, or None when no backup can take over.
        """
        master_id = self.coordinator.master_of(key)
        if master_id is None:
            raise NoSuchKey(key)
        old_master = self.coordinator.server(master_id)
        if not old_master.master_has(key):
            # The master copy is gone (typically its node crashed under
            # a concurrent shrink loop): surface the regular miss the
            # callers already handle, never ServerDown.
            raise NoSuchKey(key)
        obj = old_master.master_get(key)
        candidates = [
            self.coordinator.server(b)
            for b in self.coordinator.backups_of(key)
            if (target is None or b == target)
        ]
        candidates = [
            s
            for s in candidates
            if s.up and s.backup_has(key) and s.can_fit(obj.size)
        ]
        if not candidates:
            return None
        span = self.kernel.tracer.start(
            "kvcache.migrate", source=master_id, bytes=obj.size
        )
        new_master = max(candidates, key=lambda s: s.free_bytes)
        # Promote from the new master's local (buffered) backup copy and
        # drop the old RAM copy.  No payload crosses the network, and
        # backup segments are RAM-buffered, so the whole hand-off is
        # covered by the MIGRATION model (0.18 ms per 8 MB, §7.2.1).
        promoted = new_master.promote(key)
        promoted.value = obj.value
        promoted.version = obj.version
        promoted.n_access = obj.n_access
        promoted.t_access = obj.t_access
        promoted.flags = dict(obj.flags)
        old_master.demote(key)
        self.coordinator.record_master_change(key, new_master.server_id)
        yield self._remote_delay(MIGRATION, obj.size)
        self.stats.migrations += 1
        self.stats.migrated_bytes += obj.size
        span.finish(target=new_master.server_id)
        return new_master.server_id

    # -- failures -----------------------------------------------------------------

    def crash(self, node_id: str) -> None:
        """Fail-stop a node's cache server (RAM lost, disk survives)."""
        self.coordinator.server(node_id).crash()
        # Every key the node backed just lost a replica.
        for key in self.coordinator.keys_backed_by(node_id):
            self._mark_under_replicated(key)

    def restart(self, node_id: str) -> int:
        """Bring a crashed server back up; purge stale disk backups.

        While the node was down the coordinator re-placed (or forgot)
        some of the keys it backed.  Those disk copies are both a
        disk-space leak and a stale-promotion hazard, so every backup
        no longer referenced by the coordinator is dropped on restart.
        Returns the number of purged copies.
        """
        server = self.coordinator.server(node_id)
        server.restart()
        purged = 0
        for key in server.backup_keys():
            if (
                not self.coordinator.holds(key)
                or node_id not in self.coordinator.backups_of(key)
            ):
                server.backup_delete(key)
                purged += 1
        self.stats.restarts += 1
        self.stats.backups_purged += purged
        return purged

    def _lose(self, key: str) -> None:
        """Drop a key whose every copy is gone (RSDS still has it)."""
        self.coordinator.forget(key)
        self._under_replicated.discard(key)
        self.stats.lost_objects += 1

    def _reconcile_flags(self, key: str, obj) -> None:
        """Reconcile a freshly promoted copy's flags with its peers.

        Flags only transition one way between versions (the persistor
        clears ``dirty`` after the payload lands in the RSDS), so a
        clean surviving copy at the same version proves the persist
        completed and the promoted copy must not re-trigger it.
        """
        if not obj.flags.get("dirty", False):
            return
        for backup_id in self.coordinator.backups_of(key):
            copy = self.coordinator.server(backup_id).backup_peek(key)
            if (
                copy is not None
                and copy.version == obj.version
                and not copy.flags.get("dirty", True)
            ):
                obj.flags["dirty"] = False
                return

    def recover(self, node_id: str) -> Generator[Any, Any, int]:
        """Recover the master copies a crashed node held, by promoting
        backup copies on the surviving nodes (RAMCloud fast recovery).

        Returns the number of objects recovered; objects whose every
        backup is also down are lost from the cache (they still exist in
        the RSDS or are re-created by retried invocations).  The loop
        tolerates further crashes while it runs: every candidate set is
        re-validated after a simulated delay.
        """
        recovered = 0
        for key in self.coordinator.keys_mastered_by(node_id):
            candidates = [
                self.coordinator.server(b)
                for b in self.coordinator.backups_of(key)
            ]
            candidates = [s for s in candidates if s.up and s.backup_has(key)]
            obj_size = candidates[0].backup_get(key).size if candidates else 0
            candidates = [s for s in candidates if s.can_fit(obj_size)]
            if not candidates:
                self._lose(key)
                continue
            yield self._delay(DISK_READ, obj_size)
            # Another node may have crashed while the disk read was in
            # flight: re-validate before touching any copy.
            candidates = [
                s
                for s in candidates
                if s.up and s.backup_has(key) and s.can_fit(obj_size)
            ]
            if not candidates:
                self._lose(key)
                continue
            # Promote the highest surviving version (a backup that was
            # down during an update trails its peers), breaking ties
            # toward the freest server.
            new_master = max(
                candidates,
                key=lambda s: (s.backup_get(key).version, s.free_bytes),
            )
            obj = new_master.promote(key)
            self._reconcile_flags(key, obj)
            # The crashed node holds no copy any more: rebuild the backup
            # set from the surviving replicas and re-replicate up to the
            # configured factor.
            surviving = {
                b
                for b in self.coordinator.backups_of(key)
                if b != new_master.server_id
                and self.coordinator.server(b).up
                and self.coordinator.server(b).backup_has(key)
            }
            missing = self.coordinator.replication_factor - len(surviving)
            if missing > 0:
                for backup_id in self.coordinator.choose_backups(
                    key, new_master.server_id
                ):
                    if missing <= 0:
                        break
                    if backup_id in surviving or backup_id == node_id:
                        continue
                    backup = self.coordinator.server(backup_id)
                    if not backup.up:  # crashed since choose_backups
                        continue
                    try:
                        backup.backup_put(obj.copy())
                    except CapacityExceeded:
                        continue
                    yield self._remote_delay(BACKUP_WRITE, obj.size)
                    surviving.add(backup_id)
                    missing -= 1
            self.coordinator.record_placement(
                key, new_master.server_id, sorted(surviving), version=obj.version
            )
            if missing > 0:
                self._mark_under_replicated(key)
            else:
                self._under_replicated.discard(key)
            recovered += 1
        self.stats.recoveries += 1
        self.stats.recovered_objects += recovered
        return recovered

    def repair(self) -> Generator[Any, Any, int]:
        """Re-replicate under-replicated keys up to the configured
        factor (run after a crashed node rejoins, or opportunistically).
        Returns the number of keys brought back to full replication.
        """
        span = self.kernel.tracer.start("kvcache.repair")
        repaired = 0
        for key in sorted(self._under_replicated):
            master_id = self.location_of(key)
            if master_id is None:
                # The master copy is gone too: nothing to replicate
                # from; a recovery pass or a re-put handles the key.
                self._under_replicated.discard(key)
                continue
            obj = self.coordinator.server(master_id).master_get(key)
            current = {
                b
                for b in self.coordinator.backups_of(key)
                if b != master_id and self.coordinator.server(b).backup_has(key)
            }
            missing = self.coordinator.replication_factor - len(current)
            for backup_id in self.coordinator.choose_backups(key, master_id):
                if missing <= 0:
                    break
                if backup_id in current:
                    continue
                backup = self.coordinator.server(backup_id)
                if not backup.up:
                    continue
                try:
                    backup.backup_put(obj.copy())
                except CapacityExceeded:
                    continue
                yield self._remote_delay(BACKUP_WRITE, obj.size)
                current.add(backup_id)
                missing -= 1
            self.coordinator.record_placement(
                key, master_id, sorted(current), version=obj.version
            )
            if missing <= 0:
                self._under_replicated.discard(key)
                repaired += 1
        self.stats.repairs += 1
        self.stats.repaired_objects += repaired
        span.finish(repaired=repaired)
        return repaired
