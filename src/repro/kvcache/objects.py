"""Cache object records and op latency models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.sim.latency import GB, LatencyModel, MB

#: Maximum object size admitted to the cache; the paper raised
#: RAMCloud's 1 MB default to 10 MB (§6.1 footnote).
MAX_OBJECT_SIZE = 10 * MB


@dataclass
class CacheObject:
    """One cached object (either a master or a backup copy).

    ``n_access``/``t_access`` are the paper's RAMCloud extensions used
    by the periodic eviction policy (§6.3).
    """

    key: str
    value: Any
    size: int
    version: int = 1
    created_at: float = 0.0
    #: Read-access counter (reset on write).
    n_access: int = 0
    #: Epoch of the last read access.
    t_access: float = 0.0
    #: Free-form flags used by OFC (e.g. dirty, intermediate, final).
    flags: Dict[str, Any] = field(default_factory=dict)

    def copy(self) -> "CacheObject":
        return CacheObject(
            key=self.key,
            value=self.value,
            size=self.size,
            version=self.version,
            created_at=self.created_at,
            n_access=self.n_access,
            t_access=self.t_access,
            flags=dict(self.flags),
        )


# ---------------------------------------------------------------------------
# Op latencies.
#
# Local (caller is the master's node) operations are RAM-speed.  Remote
# operations pay the full OFC redirection path (proxy, coordinator
# lookup, remote server); the paper's RemoteHit numbers (§7.2.1: +2.5 ms
# on wand_denoise, +12.76 % worst case single-stage) calibrate the
# remote-read base near 2.3 ms.
# ---------------------------------------------------------------------------

LOCAL_READ = LatencyModel(base_s=15e-6, bandwidth_bps=8 * GB, jitter=0.05)
LOCAL_WRITE = LatencyModel(base_s=30e-6, bandwidth_bps=5 * GB, jitter=0.05)
REMOTE_READ = LatencyModel(base_s=2.3e-3, bandwidth_bps=1.1 * GB, jitter=0.05)
REMOTE_WRITE = LatencyModel(base_s=2.5e-3, bandwidth_bps=1.0 * GB, jitter=0.05)
#: Reading a backup copy from local disk when promoting it to master.
DISK_READ = LatencyModel(base_s=90e-6, bandwidth_bps=500 * MB, jitter=0.05)
#: Writing a replica to a backup's buffered log (async flush to disk).
BACKUP_WRITE = LatencyModel(base_s=60e-6, bandwidth_bps=1.0 * GB, jitter=0.05)
