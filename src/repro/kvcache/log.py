"""Log-structured memory for master copies.

RAMCloud stores master data in an append-only log divided into
segments; deletions leave dead bytes that a cleaner later reclaims by
relocating live entries and freeing the segment.  This module models
that structure faithfully enough to expose its externally visible
behaviour: memory *footprint* (allocated segments) can exceed *live*
bytes until the cleaner runs, and the cleaner's work is proportional to
the live bytes it relocates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.kvcache.errors import CacheError
from repro.sim.latency import MB

SEGMENT_SIZE = 8 * MB


@dataclass
class Segment:
    """One log segment: capacity plus live/dead byte accounting."""

    capacity: int = SEGMENT_SIZE
    live: Dict[str, int] = field(default_factory=dict)
    dead_bytes: int = 0
    #: Running sum of ``live.values()``, maintained by the owning log's
    #: append/delete (integer arithmetic, so it is exactly the sum).
    live_total: int = 0

    @property
    def live_bytes(self) -> int:
        return self.live_total

    @property
    def used_bytes(self) -> int:
        return self.live_bytes + self.dead_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    @property
    def utilization(self) -> float:
        """Fraction of capacity occupied by live entries."""
        if self.capacity == 0:
            return 0.0
        return self.live_bytes / self.capacity


@dataclass
class LogStats:
    appends: int = 0
    deletes: int = 0
    cleanings: int = 0
    segments_freed: int = 0
    relocated_bytes: int = 0


class ObjectLog:
    """Append-only segmented log with a utilization-driven cleaner."""

    def __init__(self, segment_size: int = SEGMENT_SIZE):
        if segment_size <= 0:
            raise CacheError("segment size must be positive")
        self.segment_size = segment_size
        self._segments: List[Segment] = []
        self._head: Segment = self._new_segment()
        self._locations: Dict[str, Segment] = {}
        self.stats = LogStats()
        #: Running total of live bytes across segments (exact: ints).
        self._live_total = 0
        #: Memoized ``footprint_bytes``; ``None`` marks it stale (every
        #: mutation goes through append/delete/clean, which invalidate).
        self._footprint_cache: Optional[int] = 0

    def _new_segment(self, capacity: int = 0) -> Segment:
        segment = Segment(capacity=capacity or self.segment_size)
        self._segments.append(segment)
        return segment

    # -- accounting ---------------------------------------------------------

    @property
    def live_bytes(self) -> int:
        return self._live_total

    @property
    def footprint_bytes(self) -> int:
        """Bytes of allocated segments (what the memory pool must hold).

        A never-written (fully empty) segment is only a reservation and
        is not charged against the pool, so an empty log has footprint 0.
        """
        cached = self._footprint_cache
        if cached is None:
            cached = self._footprint_cache = sum(
                seg.capacity for seg in self._segments if seg.used_bytes > 0
            )
        return cached

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def __contains__(self, key: str) -> bool:
        return key in self._locations

    def __len__(self) -> int:
        return len(self._locations)

    def keys(self):
        return self._locations.keys()

    # -- mutation -----------------------------------------------------------

    def append(self, key: str, size: int) -> None:
        """Append an entry; an existing entry for ``key`` becomes dead."""
        if size < 0:
            raise CacheError("entry size must be non-negative")
        if key in self._locations:
            self.delete(key)
        if size > self.segment_size:
            # Jumbo entry: dedicated segment of exact size.
            segment = self._new_segment(capacity=size)
        elif size > self._head.free_bytes:
            self._head = self._new_segment()
            segment = self._head
        else:
            segment = self._head
        segment.live[key] = size
        segment.live_total += size
        self._live_total += size
        self._locations[key] = segment
        self._footprint_cache = None
        self.stats.appends += 1

    def delete(self, key: str) -> int:
        """Mark the entry dead; returns its size."""
        segment = self._locations.pop(key, None)
        if segment is None:
            raise CacheError(f"key not in log: {key}")
        size = segment.live.pop(key)
        segment.live_total -= size
        segment.dead_bytes += size
        self._live_total -= size
        self._footprint_cache = None
        self.stats.deletes += 1
        # A fully dead, non-head segment is reclaimed immediately.
        if segment is not self._head and not segment.live:
            self._segments.remove(segment)
            self.stats.segments_freed += 1
        return size

    def clean(self, max_utilization: float = 0.75) -> Tuple[int, int]:
        """Relocate live entries out of under-utilized closed segments.

        Returns (segments freed, live bytes relocated).  Relocation uses
        the normal append path, so the cleaner itself can open new head
        segments — exactly like RAMCloud's cleaner.
        """
        victims = [
            seg
            for seg in list(self._segments)
            if seg is not self._head and seg.utilization < max_utilization
        ]
        freed = 0
        relocated = 0
        for segment in victims:
            if segment not in self._segments:
                continue  # already freed by a delete during relocation
            entries = list(segment.live.items())
            for key, size in entries:
                self.delete(key)  # may auto-free the segment on last entry
                self.append(key, size)
                relocated += size
            if segment in self._segments:
                self._segments.remove(segment)
                self._footprint_cache = None
                self.stats.segments_freed += 1
            freed += 1
        self.stats.cleanings += 1
        self.stats.relocated_bytes += relocated
        return freed, relocated
