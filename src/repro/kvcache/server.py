"""Per-node cache storage server (master + backup roles)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.kvcache.errors import CacheError, CapacityExceeded, NoSuchKey, ServerDown
from repro.kvcache.log import ObjectLog
from repro.kvcache.objects import CacheObject


@dataclass
class ServerStats:
    master_puts: int = 0
    master_gets: int = 0
    backup_puts: int = 0
    promotions: int = 0
    evictions: int = 0
    resizes: int = 0


class CacheServer:
    """One storage server: a RAM master log plus an on-disk backup area.

    The memory pool's ``capacity`` is the OFC-controlled quantity: the
    CacheAgent grows it with memory hoarded from sandboxes and shrinks
    it when sandboxes need the memory back (§6.4).
    """

    def __init__(
        self, server_id: str, capacity: int = 0, disk_capacity: int = 480 * 10**9
    ):
        self.server_id = server_id
        self.capacity = capacity
        self.disk_capacity = disk_capacity
        self.up = True
        self.log = ObjectLog()
        self._master: Dict[str, CacheObject] = {}
        self._backup: Dict[str, CacheObject] = {}
        #: Running sum of backup copy sizes (exact: ints); object sizes
        #: are immutable, so put/delete/promote keep it in sync.
        self._backup_bytes = 0
        self.stats = ServerStats()

    # -- capacity -----------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Allocated master-log footprint (what capacity must cover)."""
        return self.log.footprint_bytes

    @property
    def live_bytes(self) -> int:
        return self.log.live_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    @property
    def disk_used_bytes(self) -> int:
        return self._backup_bytes

    def resize(self, capacity: int) -> None:
        """Set the memory pool size; shrinking below the current
        footprint first runs the log cleaner, and fails if the live data
        still does not fit (the CacheAgent must evict/migrate first)."""
        if capacity < 0:
            raise CacheError("capacity must be non-negative")
        if capacity < self.log.footprint_bytes:
            self.log.clean()
        if capacity < self.log.footprint_bytes:
            raise CapacityExceeded(
                f"{self.server_id}: cannot shrink to {capacity} with "
                f"{self.log.footprint_bytes} bytes in the log"
            )
        self.capacity = capacity
        self.stats.resizes += 1

    def can_fit(self, size: int) -> bool:
        """Whether a master put of ``size`` bytes fits (after cleaning)."""
        if size <= self.free_bytes:
            return True
        return self.log.live_bytes + size <= self.capacity

    # -- master role ---------------------------------------------------------

    def _check_up(self) -> None:
        if not self.up:
            raise ServerDown(self.server_id)

    def master_put(self, obj: CacheObject) -> None:
        self._check_up()
        if not self.can_fit(obj.size):
            raise CapacityExceeded(
                f"{self.server_id}: {obj.size} bytes do not fit "
                f"(free={self.free_bytes})"
            )
        if self.free_bytes < obj.size:
            self.log.clean()
        self.log.append(obj.key, obj.size)
        self._master[obj.key] = obj
        self.stats.master_puts += 1

    def master_get(self, key: str) -> CacheObject:
        self._check_up()
        try:
            obj = self._master[key]
        except KeyError:
            raise NoSuchKey(key) from None
        self.stats.master_gets += 1
        return obj

    def master_has(self, key: str) -> bool:
        return self.up and key in self._master

    def master_delete(self, key: str) -> CacheObject:
        self._check_up()
        try:
            obj = self._master.pop(key)
        except KeyError:
            raise NoSuchKey(key) from None
        self.log.delete(key)
        self.stats.evictions += 1
        return obj

    def master_keys(self):
        return list(self._master.keys())

    def master_objects(self):
        return list(self._master.values())

    # -- backup role ----------------------------------------------------------

    def backup_put(self, obj: CacheObject) -> None:
        self._check_up()
        if self.disk_used_bytes + obj.size > self.disk_capacity:
            raise CapacityExceeded(f"{self.server_id}: backup disk full")
        prev = self._backup.get(obj.key)
        if prev is not None:
            self._backup_bytes -= prev.size
        self._backup[obj.key] = obj
        self._backup_bytes += obj.size
        self.stats.backup_puts += 1

    def backup_get(self, key: str) -> CacheObject:
        self._check_up()
        try:
            return self._backup[key]
        except KeyError:
            raise NoSuchKey(key) from None

    def backup_has(self, key: str) -> bool:
        return self.up and key in self._backup

    def backup_peek(self, key: str) -> Optional[CacheObject]:
        """Control-plane read of a backup copy (None when down/absent)."""
        if not self.up:
            return None
        return self._backup.get(key)

    def backup_delete(self, key: str) -> Optional[CacheObject]:
        self._check_up()
        obj = self._backup.pop(key, None)
        if obj is not None:
            self._backup_bytes -= obj.size
        return obj

    def backup_keys(self):
        return list(self._backup.keys())

    # -- promotion (migration / recovery) --------------------------------------

    def promote(self, key: str) -> CacheObject:
        """Turn this server's backup copy of ``key`` into the master copy."""
        self._check_up()
        obj = self.backup_get(key)
        self._backup.pop(key)
        self._backup_bytes -= obj.size
        self.master_put(obj)
        self.stats.promotions += 1
        return obj

    def demote(self, key: str) -> CacheObject:
        """Drop the master copy from RAM, keep an on-disk backup copy."""
        obj = self.master_delete(key)
        self.backup_put(obj)
        return obj

    # -- failures ---------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: all RAM contents are lost, disk contents survive."""
        self.up = False
        for key in self.master_keys():
            self._master.pop(key)
            self.log.delete(key)

    def restart(self) -> None:
        self.up = True
