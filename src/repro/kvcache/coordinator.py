"""Cluster coordinator: membership and object placement.

The coordinator tracks which server masters each key and where its
backup copies live.  OFC's modified load balancer queries it to route
invocations to the node holding the master copy of their input (§6.5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.kvcache.errors import CacheError, NoSuchKey
from repro.kvcache.server import CacheServer


class Coordinator:
    """Placement and membership authority for the cache cluster."""

    def __init__(self, replication_factor: int = 2):
        if replication_factor < 0:
            raise CacheError("replication factor must be non-negative")
        self.replication_factor = replication_factor
        self.servers: Dict[str, CacheServer] = {}
        self._master_of: Dict[str, str] = {}
        self._backups_of: Dict[str, Set[str]] = {}
        # Last version recorded for each key.  Survives master loss, so
        # a re-put after a crash can seed its version past the copies
        # that died with the node (crash-consistency fix).
        self._version_of: Dict[str, int] = {}

    # -- membership -----------------------------------------------------------

    def register(self, server: CacheServer) -> None:
        if server.server_id in self.servers:
            raise CacheError(f"duplicate server id: {server.server_id}")
        self.servers[server.server_id] = server

    def server(self, server_id: str) -> CacheServer:
        try:
            return self.servers[server_id]
        except KeyError:
            raise CacheError(f"unknown server: {server_id}") from None

    def live_servers(self) -> List[CacheServer]:
        return [s for s in self.servers.values() if s.up]

    # -- placement queries -------------------------------------------------------

    def master_of(self, key: str) -> Optional[str]:
        return self._master_of.get(key)

    def backups_of(self, key: str) -> Set[str]:
        return set(self._backups_of.get(key, set()))

    def holds(self, key: str) -> bool:
        return key in self._master_of

    def keys_mastered_by(self, server_id: str) -> List[str]:
        return [k for k, sid in self._master_of.items() if sid == server_id]

    def version_of(self, key: str) -> int:
        """Last version recorded for ``key`` (0 when unknown)."""
        return self._version_of.get(key, 0)

    def keys_backed_by(self, server_id: str) -> List[str]:
        return [k for k, ids in self._backups_of.items() if server_id in ids]

    # -- placement decisions -------------------------------------------------------

    def choose_master(
        self, size: int, preferred: Optional[str] = None
    ) -> Optional[str]:
        """Pick a live server with room, preferring ``preferred``."""
        if preferred is not None:
            server = self.servers.get(preferred)
            if server is not None and server.up and server.can_fit(size):
                return preferred
        candidates = [s for s in self.live_servers() if s.can_fit(size)]
        if not candidates:
            return None
        return max(candidates, key=lambda s: s.free_bytes).server_id

    def choose_backups(self, key: str, master_id: str) -> List[str]:
        """Pick up to ``replication_factor`` live servers, excluding the
        master, spreading by current disk usage."""
        candidates = [
            s for s in self.live_servers() if s.server_id != master_id
        ]
        candidates.sort(key=lambda s: s.disk_used_bytes)
        return [s.server_id for s in candidates[: self.replication_factor]]

    # -- placement bookkeeping ------------------------------------------------------

    def record_placement(
        self,
        key: str,
        master_id: str,
        backup_ids: List[str],
        version: Optional[int] = None,
    ) -> None:
        self._master_of[key] = master_id
        self._backups_of[key] = set(backup_ids)
        if version is not None:
            self._version_of[key] = version

    def record_master_change(self, key: str, new_master: str) -> None:
        if key not in self._master_of:
            raise NoSuchKey(key)
        old_master = self._master_of[key]
        backups = self._backups_of.setdefault(key, set())
        backups.discard(new_master)
        backups.add(old_master)
        self._master_of[key] = new_master

    def forget(self, key: str) -> None:
        self._master_of.pop(key, None)
        self._backups_of.pop(key, None)
        self._version_of.pop(key, None)
