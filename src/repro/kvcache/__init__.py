"""RAMCloud-like distributed in-memory key-value cache.

This package reproduces the slice of RAMCloud that OFC relies on
(§6.1): a coordinator plus per-worker storage servers, each combining a
*master* (in-RAM primary copies, log-structured) and a *backup* (on-disk
replica copies for other masters).  On top of vanilla RAMCloud, the
paper's extensions are implemented here as well:

* per-object read-access counter ``n_access`` and last-access epoch
  ``t_access`` (§6.3, used by the eviction policy);
* a 10 MB maximum object size (the paper raised RAMCloud's 1 MB limit);
* dynamically resizable per-server memory pools (§6.4);
* the optimized master hand-off migration that promotes a backup to
  master without any inter-node payload transfer (§6.4).
"""

from repro.kvcache.cluster import CacheCluster
from repro.kvcache.coordinator import Coordinator
from repro.kvcache.errors import (
    CacheError,
    CapacityExceeded,
    NoSuchKey,
    ObjectTooLarge,
    ServerDown,
)
from repro.kvcache.log import ObjectLog, Segment
from repro.kvcache.objects import CacheObject
from repro.kvcache.server import CacheServer

__all__ = [
    "CacheCluster",
    "CacheError",
    "CacheObject",
    "CacheServer",
    "CapacityExceeded",
    "Coordinator",
    "NoSuchKey",
    "ObjectLog",
    "ObjectTooLarge",
    "Segment",
    "ServerDown",
]
