"""repro.obs — unified observability: tracing, metrics, exports.

* :mod:`repro.obs.trace` — :class:`Tracer` with nestable spans keyed to
  simulated time; a shared no-op :data:`NULL_TRACER` keeps the
  instrumented hot paths free when tracing is disabled (the default).
* :mod:`repro.obs.registry` — :class:`MetricsRegistry` holding
  counters/gauges/histograms with labels, plus lazy collectors that
  absorb the pre-existing ad-hoc stats dataclasses.
* :mod:`repro.obs.export` — the common JSON/CSV export format consumed
  by ``repro report``, the ``--trace`` CLI flag and the CI bench gate.
"""

from repro.obs.export import (
    export_csv,
    export_json,
    load_json,
    read_csv_rows,
    spans_payload,
    write_document,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    active_tracers,
    all_finished_spans,
    enable_tracing,
    merged_summary,
    NULL_TRACER,
    NullTracer,
    reset_tracing,
    Span,
    Tracer,
    tracer_for_clock,
    tracing_enabled,
)

__all__ = [
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "active_tracers",
    "all_finished_spans",
    "enable_tracing",
    "export_csv",
    "export_json",
    "load_json",
    "merged_summary",
    "read_csv_rows",
    "reset_tracing",
    "spans_payload",
    "tracer_for_clock",
    "tracing_enabled",
    "write_document",
]
