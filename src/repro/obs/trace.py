"""Tracing keyed to simulated time.

A :class:`Tracer` produces nestable :class:`Span` objects whose start
and end instants come from a *clock* callable — in this repo, a
:class:`~repro.sim.kernel.Kernel`'s ``now`` — so traces line up exactly
with the discrete-event timeline the paper's figures are drawn from.

Tracing is **off by default**: every :class:`~repro.sim.kernel.Kernel`
asks :func:`tracer_for_clock` for its tracer, and unless
:func:`enable_tracing` was called first the shared :data:`NULL_TRACER`
is returned.  The null tracer hands out one immortal no-op span, so an
instrumented call site costs a method call and a small kwargs dict —
nothing is recorded and no per-span object is allocated.

Typical use from the CLI (``--trace``) or a test::

    enable_tracing()
    try:
        ...build kernels, run the experiment...
        summary = merged_summary()
    finally:
        reset_tracing()
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "active_tracers",
    "all_finished_spans",
    "enable_tracing",
    "merged_summary",
    "reset_tracing",
    "tracer_for_clock",
    "tracing_enabled",
]


class Span:
    """One timed operation; nests via ``parent_id`` / :meth:`child`."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "labels", "_tracer")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        labels: Dict[str, object],
    ):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.labels = labels

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} has not finished")
        return self.end - self.start

    def child(self, name: str, **labels: object) -> "Span":
        """Start a nested span under this one."""
        return self._tracer.start(name, parent=self, **labels)

    def annotate(self, **labels: object) -> "Span":
        self.labels.update(labels)
        return self

    def finish(self, **labels: object) -> "Span":
        """Close the span at the clock's current instant (idempotent)."""
        if self.end is None:
            if labels:
                self.labels.update(labels)
            self.end = self._tracer._clock()
            self._tracer._record(self)
        return self

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration_s": None if self.end is None else self.duration,
            "labels": dict(self.labels),
        }

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()

    def __repr__(self) -> str:
        state = f"end={self.end}" if self.finished else "open"
        return f"<Span {self.name!r} id={self.span_id} start={self.start} {state}>"


class Tracer:
    """Collects finished spans; timestamps come from ``clock``."""

    #: Call sites may gate expensive label computation on this flag.
    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        max_spans: int = 1_000_000,
    ):
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._ids = itertools.count(1)
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.started = 0
        self.dropped = 0

    def start(self, name: str, parent: Optional[Span] = None, **labels: object) -> Span:
        self.started += 1
        return Span(
            self,
            name,
            next(self._ids),
            parent.span_id if parent is not None else None,
            self._clock(),
            labels,
        )

    def _record(self, span: Span) -> None:
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped += 1

    def count(self, name: str) -> int:
        return sum(1 for s in self.spans if s.name == name)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Aggregate finished spans by name: count/total/min/max/mean."""
        out: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            d = span.duration
            agg = out.get(span.name)
            if agg is None:
                out[span.name] = {
                    "count": 1,
                    "total_s": d,
                    "min_s": d,
                    "max_s": d,
                }
            else:
                agg["count"] += 1
                agg["total_s"] += d
                agg["min_s"] = min(agg["min_s"], d)
                agg["max_s"] = max(agg["max_s"], d)
        for agg in out.values():
            agg["mean_s"] = agg["total_s"] / agg["count"]
        return out


class _NullSpan(Span):
    """The immortal span the null tracer hands to every call site."""

    __slots__ = ()

    def __init__(self):
        super().__init__(NULL_TRACER, "null", 0, None, 0.0, {})

    def child(self, name: str, **labels: object) -> "Span":
        return self

    def annotate(self, **labels: object) -> "Span":
        return self

    def finish(self, **labels: object) -> "Span":
        return self


class NullTracer(Tracer):
    """No-op tracer: records nothing, allocates nothing per call."""

    enabled = False

    def __init__(self):
        super().__init__(max_spans=0)

    def start(self, name: str, parent: Optional[Span] = None, **labels: object) -> Span:
        return NULL_SPAN

    def _record(self, span: Span) -> None:  # pragma: no cover - unreachable
        pass


NULL_TRACER = NullTracer()
NULL_SPAN = _NullSpan()

# -- global switch -----------------------------------------------------------
#
# Experiments build their kernels deep inside bench functions, so the
# CLI cannot hand a tracer down explicitly.  Instead the kernel asks
# this module for one at construction time; enable_tracing() flips all
# kernels built afterwards to real tracers, which are kept here so the
# caller can collect every trace after the run.

_enabled = False
_tracers: List[Tracer] = []


def enable_tracing() -> None:
    """Make subsequently-built kernels record real traces."""
    global _enabled
    _enabled = True


def disable_tracing() -> None:
    global _enabled
    _enabled = False


def reset_tracing() -> None:
    """Disable tracing and drop every collected tracer."""
    disable_tracing()
    _tracers.clear()


def tracing_enabled() -> bool:
    return _enabled


def tracer_for_clock(clock: Callable[[], float]) -> Tracer:
    """The tracer a new kernel should use (null unless enabled)."""
    if not _enabled:
        return NULL_TRACER
    tracer = Tracer(clock)
    _tracers.append(tracer)
    return tracer


def active_tracers() -> List[Tracer]:
    return list(_tracers)


def all_finished_spans() -> List[Span]:
    return [span for tracer in _tracers for span in tracer.spans]


def merged_summary() -> Dict[str, Dict[str, float]]:
    """Per-name span aggregates across every collected tracer."""
    merged: Dict[str, Dict[str, float]] = {}
    for tracer in _tracers:
        for name, agg in tracer.summary().items():
            into = merged.get(name)
            if into is None:
                merged[name] = dict(agg)
            else:
                into["count"] += agg["count"]
                into["total_s"] += agg["total_s"]
                into["min_s"] = min(into["min_s"], agg["min_s"])
                into["max_s"] = max(into["max_s"], agg["max_s"])
    for agg in merged.values():
        agg["mean_s"] = agg["total_s"] / agg["count"]
    return merged
