"""Central metrics registry: counters, gauges, histograms, collectors.

Two ways for a value to reach a snapshot:

* **Instruments** — :class:`Counter`, :class:`Gauge` and
  :class:`Histogram` created through the registry, each keeping one
  value (or distribution) per label set.
* **Collectors** — callables registered with
  :meth:`MetricsRegistry.register_collector` that return a flat
  ``{name: value}`` dict when a snapshot is taken.  This is how the
  pre-existing ad-hoc stat dataclasses (``OFCMetrics``,
  ``RcLibStats``, ``ClusterStats``, ``StoreStats``, …) are absorbed
  without rewriting every increment site: they keep their attribute
  API and the registry pulls their snapshots lazily, at zero cost
  during the run itself.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    kind = "abstract"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help

    def series(self) -> List[dict]:
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing value per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._values.values())

    def series(self) -> List[dict]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]


class Gauge(_Instrument):
    """Last-written value per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(labels)] = value

    def add(self, amount: float, **labels: Any) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def series(self) -> List[dict]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]


#: Default histogram buckets, in seconds: spans sub-millisecond cache
#: hits through multi-second RSDS transfers.
DEFAULT_BUCKETS = (
    0.0001,
    0.001,
    0.01,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
)


class Histogram(_Instrument):
    """Distribution per label set: count/sum/min/max + bucket counts."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._values: Dict[LabelKey, dict] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        stats = self._values.get(key)
        if stats is None:
            stats = self._values[key] = {
                "count": 0,
                "sum": 0.0,
                "min": value,
                "max": value,
                "bucket_counts": [0] * (len(self.buckets) + 1),
            }
        stats["count"] += 1
        stats["sum"] += value
        stats["min"] = min(stats["min"], value)
        stats["max"] = max(stats["max"], value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                stats["bucket_counts"][i] += 1
                return
        stats["bucket_counts"][-1] += 1  # overflow bucket

    def stats(self, **labels: Any) -> Optional[dict]:
        found = self._values.get(_label_key(labels))
        if found is None:
            return None
        out = dict(found)
        out["bucket_counts"] = list(found["bucket_counts"])
        out["mean"] = found["sum"] / found["count"] if found["count"] else 0.0
        return out

    def series(self) -> List[dict]:
        out = []
        for key, stats in sorted(self._values.items()):
            entry = dict(stats)
            entry["bucket_counts"] = list(stats["bucket_counts"])
            entry["mean"] = stats["sum"] / stats["count"] if stats["count"] else 0.0
            out.append({"labels": dict(key), "value": entry})
        return out


class MetricsRegistry:
    """Get-or-create instrument factory plus lazy collectors."""

    def __init__(self):
        self._instruments: Dict[str, _Instrument] = {}
        self._collectors: Dict[str, Callable[[], Dict[str, Any]]] = {}

    # -- instruments -----------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        instrument = cls(name, help, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    # -- collectors ------------------------------------------------------

    def register_collector(
        self, name: str, fn: Callable[[], Dict[str, Any]], replace: bool = False
    ) -> None:
        """Attach a lazy source of ``{metric: value}`` pairs.

        The callable runs only when :meth:`snapshot` is taken, so
        bridging an existing stats object costs nothing during a run.
        ``replace=True`` rebinds an already-registered name (last
        writer wins) instead of raising — for sources that are
        legitimately re-created on one deployment, like a second
        :class:`~repro.faults.injector.FaultInjector`.
        """
        if name in self._collectors and not replace:
            raise ValueError(f"collector {name!r} already registered")
        self._collectors[name] = fn

    # -- snapshot --------------------------------------------------------

    def snapshot(self) -> dict:
        """One JSON-safe dict with every instrument and collector."""
        metrics = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            entry = {
                "kind": instrument.kind,
                "help": instrument.help,
                "series": instrument.series(),
            }
            if isinstance(instrument, Histogram):
                entry["buckets"] = list(instrument.buckets)
            metrics[name] = entry
        collected = {
            name: dict(self._collectors[name]())
            for name in sorted(self._collectors)
        }
        return {"metrics": metrics, "collected": collected}
