"""Machine-readable exports of metrics snapshots and trace summaries.

The JSON document written by :func:`export_json` is the repo's common
observability format: ``repro report``, the ``--trace`` CLI flag and
the CI bench gate (``scripts/check_bench.py``) all emit it, and
:func:`load_json` round-trips it for programmatic consumers.
"""

from __future__ import annotations

import csv
import json
import os
from typing import IO, List, Optional, Union

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "export_csv",
    "export_json",
    "load_json",
    "read_csv_rows",
    "spans_payload",
    "write_document",
]

PathOrIO = Union[str, "os.PathLike[str]", IO[str]]


def spans_payload(
    tracers: List[Tracer], include_spans: bool = False
) -> dict:
    """Aggregate one or more tracers into a JSON-safe dict."""
    merged: dict = {}
    total = 0
    started = 0
    dropped = 0
    for tracer in tracers:
        total += len(tracer.spans)
        started += tracer.started
        dropped += tracer.dropped
        for name, agg in tracer.summary().items():
            into = merged.get(name)
            if into is None:
                merged[name] = dict(agg)
            else:
                into["count"] += agg["count"]
                into["total_s"] += agg["total_s"]
                into["min_s"] = min(into["min_s"], agg["min_s"])
                into["max_s"] = max(into["max_s"], agg["max_s"])
    for agg in merged.values():
        agg["mean_s"] = agg["total_s"] / agg["count"]
    payload = {
        "finished": total,
        "started": started,
        "dropped": dropped,
        "summary": merged,
    }
    if include_spans:
        payload["spans"] = [
            span.to_dict() for tracer in tracers for span in tracer.spans
        ]
    return payload


def _open_sink(sink: PathOrIO):
    """Returns (file object, needs_close)."""
    if hasattr(sink, "write"):
        return sink, False
    path = os.fspath(sink)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    return open(path, "w", encoding="utf-8"), True


def write_document(sink: PathOrIO, document: dict) -> dict:
    """Serialize an observability document as indented, sorted JSON."""
    out, needs_close = _open_sink(sink)
    try:
        json.dump(document, out, indent=2, sort_keys=True, default=str)
        out.write("\n")
    finally:
        if needs_close:
            out.close()
    return document


def export_json(
    sink: PathOrIO,
    registry: Optional[MetricsRegistry] = None,
    tracers: Optional[List[Tracer]] = None,
    meta: Optional[dict] = None,
    include_spans: bool = False,
) -> dict:
    """Write the unified observability document; returns it as a dict."""
    document: dict = {"format": "repro-obs", "version": 1}
    if meta:
        document["meta"] = dict(meta)
    if registry is not None:
        document.update(registry.snapshot())
    if tracers is not None:
        document["spans"] = spans_payload(tracers, include_spans=include_spans)
    return write_document(sink, document)


def load_json(source: PathOrIO) -> dict:
    if hasattr(source, "read"):
        return json.load(source)
    with open(os.fspath(source), encoding="utf-8") as f:
        return json.load(f)


def export_csv(sink: PathOrIO, registry: MetricsRegistry) -> int:
    """Flatten a registry snapshot to CSV rows; returns the row count.

    Columns: ``source,metric,kind,labels,field,value``.  Instrument
    series produce one row per (label set, field); collector entries
    produce one row each with empty labels.
    """
    snapshot = registry.snapshot()
    out, needs_close = _open_sink(sink)
    try:
        writer = csv.writer(out, lineterminator="\n")
        writer.writerow(["source", "metric", "kind", "labels", "field", "value"])
        count = 0
        for name, entry in snapshot["metrics"].items():
            for point in entry["series"]:
                labels = json.dumps(point["labels"], sort_keys=True)
                value = point["value"]
                if isinstance(value, dict):  # histogram stats
                    for field in ("count", "sum", "min", "max", "mean"):
                        writer.writerow(
                            ["metric", name, entry["kind"], labels,
                             field, value[field]]
                        )
                        count += 1
                else:
                    writer.writerow(
                        ["metric", name, entry["kind"], labels, "value", value]
                    )
                    count += 1
        for collector, values in snapshot["collected"].items():
            for key, value in values.items():
                writer.writerow(
                    ["collected", f"{collector}.{key}", "counter", "{}",
                     "value", value]
                )
                count += 1
        return count
    finally:
        if needs_close:
            out.close()


def read_csv_rows(source: PathOrIO) -> List[dict]:
    """Parse an :func:`export_csv` file back into dict rows."""
    if hasattr(source, "read"):
        reader = csv.DictReader(source)
        return list(reader)
    with open(os.fspath(source), encoding="utf-8", newline="") as f:
        return list(csv.DictReader(f))


def csv_value(rows: List[dict], metric: str, field: str = "value") -> float:
    """Look up one numeric value in parsed CSV rows (test helper)."""
    for row in rows:
        if row["metric"] == metric and row["field"] == field:
            return float(row["value"])
    raise KeyError(f"{metric}/{field} not found")
