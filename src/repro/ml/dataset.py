"""Feature datasets for the tree learners.

Rows are plain dicts of ``feature name -> value`` (the shape in which
OFC extracts features from invocation requests, §5.1.2).  Values may be
numeric or nominal (strings/bools); the dataset infers each column's
type, which is exactly the situation the paper describes: the platform
knows argument names and values, but nothing about their semantics.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np


class Dataset:
    """A labelled set of feature dicts with inferred column types."""

    def __init__(
        self,
        rows: Sequence[Dict[str, Any]],
        labels: Sequence[int],
        weights: Optional[Sequence[float]] = None,
        feature_names: Optional[List[str]] = None,
    ):
        if len(rows) != len(labels):
            raise ValueError("rows and labels must have the same length")
        self.rows: List[Dict[str, Any]] = [dict(r) for r in rows]
        self.labels = np.asarray(labels, dtype=np.int64)
        if weights is None:
            self.weights = np.ones(len(rows), dtype=float)
        else:
            self.weights = np.asarray(weights, dtype=float)
            if len(self.weights) != len(rows):
                raise ValueError("weights length mismatch")
        if feature_names is not None:
            self.feature_names = list(feature_names)
        else:
            names: List[str] = []
            for row in self.rows:
                for key in row:
                    if key not in names:
                        names.append(key)
            self.feature_names = names
        self._types: Dict[str, str] = {}
        for name in self.feature_names:
            self._types[name] = self._infer_type(name)

    def _infer_type(self, name: str) -> str:
        """A column is nominal if *any* observed value is symbolic.

        Arguments are opaque (§5.1.2): nothing stops a tenant from
        sending a string where another invocation sent a number, so
        inference must scan the whole column.
        """
        saw_value = False
        for row in self.rows:
            value = row.get(name)
            if value is None:
                continue
            saw_value = True
            if isinstance(value, (str, bool)):
                return "nominal"
        return "numeric" if saw_value else "numeric"

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def n_classes(self) -> int:
        if len(self.labels) == 0:
            return 0
        return int(self.labels.max()) + 1

    def feature_type(self, name: str) -> str:
        return self._types[name]

    def column(self, name: str) -> np.ndarray:
        """The column as a numpy array (object dtype for nominal)."""
        if self._types[name] == "numeric":
            values = []
            for row in self.rows:
                raw = row.get(name)
                try:
                    values.append(float(raw) if raw is not None else 0.0)
                except (TypeError, ValueError):
                    values.append(0.0)
            return np.asarray(values)
        return np.asarray(
            [row.get(name) for row in self.rows], dtype=object
        )

    def nominal_values(self, name: str) -> List[Any]:
        """The ensemble of values a nominal feature takes (§5.1.2)."""
        seen: List[Any] = []
        for row in self.rows:
            value = row.get(name)
            if value not in seen:
                seen.append(value)
        return seen

    # -- manipulation ---------------------------------------------------------

    def subset(self, indices: Sequence[int]) -> "Dataset":
        indices = list(indices)
        return Dataset(
            [self.rows[i] for i in indices],
            self.labels[indices],
            self.weights[indices],
            feature_names=self.feature_names,
        )

    def bootstrap(self, rng: np.random.Generator) -> "Dataset":
        """A bagging sample (with replacement) of the same size."""
        indices = rng.integers(0, len(self), size=len(self))
        return self.subset(indices)

    def split_folds(
        self, k: int, rng: Optional[np.random.Generator] = None
    ) -> List[Tuple["Dataset", "Dataset"]]:
        """K-fold partition; returns (train, test) pairs."""
        if k < 2:
            raise ValueError("need at least 2 folds")
        if len(self) < k:
            raise ValueError("fewer rows than folds")
        indices = np.arange(len(self))
        if rng is not None:
            rng.shuffle(indices)
        folds = np.array_split(indices, k)
        pairs = []
        for i in range(k):
            test_idx = folds[i]
            train_idx = np.concatenate([folds[j] for j in range(k) if j != i])
            pairs.append((self.subset(train_idx), self.subset(test_idx)))
        return pairs
