"""Feature datasets for the tree learners.

Rows are plain dicts of ``feature name -> value`` (the shape in which
OFC extracts features from invocation requests, §5.1.2).  Values may be
numeric or nominal (strings/bools); the dataset infers each column's
type, which is exactly the situation the paper describes: the platform
knows argument names and values, but nothing about their semantics.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np


class Dataset:
    """A labelled set of feature dicts with inferred column types."""

    def __init__(
        self,
        rows: Sequence[Dict[str, Any]],
        labels: Sequence[int],
        weights: Optional[Sequence[float]] = None,
        feature_names: Optional[List[str]] = None,
    ):
        if len(rows) != len(labels):
            raise ValueError("rows and labels must have the same length")
        self.rows: List[Dict[str, Any]] = [dict(r) for r in rows]
        self.labels = np.asarray(labels, dtype=np.int64)
        if weights is None:
            self.weights = np.ones(len(rows), dtype=float)
        else:
            self.weights = np.asarray(weights, dtype=float)
            if len(self.weights) != len(rows):
                raise ValueError("weights length mismatch")
        if feature_names is not None:
            self.feature_names = list(feature_names)
        else:
            names: List[str] = []
            for row in self.rows:
                for key in row:
                    if key not in names:
                        names.append(key)
            self.feature_names = names
        self._types: Dict[str, str] = {}
        for name in self.feature_names:
            self._types[name] = self._infer_type(name)
        # Rows never change after construction, so materialized columns
        # and their stable sort orders are cached per feature.
        self._column_cache: Dict[str, np.ndarray] = {}
        self._order_cache: Dict[str, np.ndarray] = {}

    def _infer_type(self, name: str) -> str:
        """A column is nominal if *any* observed value is symbolic.

        Arguments are opaque (§5.1.2): nothing stops a tenant from
        sending a string where another invocation sent a number, so
        inference must scan the whole column.
        """
        saw_value = False
        for row in self.rows:
            value = row.get(name)
            if value is None:
                continue
            saw_value = True
            if isinstance(value, (str, bool)):
                return "nominal"
        return "numeric" if saw_value else "numeric"

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def n_classes(self) -> int:
        if len(self.labels) == 0:
            return 0
        return int(self.labels.max()) + 1

    def feature_type(self, name: str) -> str:
        return self._types[name]

    def column(self, name: str) -> np.ndarray:
        """The column as a numpy array (object dtype for nominal)."""
        cached = self._column_cache.get(name)
        if cached is not None:
            return cached
        if self._types[name] == "numeric":
            values = []
            for row in self.rows:
                raw = row.get(name)
                try:
                    values.append(float(raw) if raw is not None else 0.0)
                except (TypeError, ValueError):
                    values.append(0.0)
            column = np.asarray(values)
        else:
            column = np.asarray(
                [row.get(name) for row in self.rows], dtype=object
            )
        self._column_cache[name] = column
        return column

    def sort_order(self, name: str) -> np.ndarray:
        """Stable (mergesort) argsort of a numeric column, cached.

        This is the presort the tree learner walks instead of
        re-sorting at every node; callers must treat it as read-only.
        """
        order = self._order_cache.get(name)
        if order is None:
            order = np.argsort(self.column(name), kind="mergesort")
            self._order_cache[name] = order
        return order

    def adopt_sort_orders(self, prev: "Dataset") -> int:
        """Reuse ``prev``'s cached numeric sort orders when ``prev``'s
        rows are a prefix of this dataset's rows (append-only curation,
        §5.3.3): only the appended tail is sorted and merged in.

        The merge is exactly equivalent to a fresh stable sort — equal
        values keep index order because all appended indices are larger
        than every prefix index.  Columns whose prefix changed (e.g. a
        feature flipped nominal because of a new symbolic value) are
        verified and skipped.  Returns the number of orders adopted.
        """
        n_prev = len(prev)
        n = len(self)
        if n_prev > n:
            return 0
        adopted = 0
        for name, prev_order in prev._order_cache.items():
            if (
                self._types.get(name) != "numeric"
                or prev._types.get(name) != "numeric"
            ):
                continue
            column = self.column(name)
            prev_column = prev.column(name)
            if not np.array_equal(column[:n_prev], prev_column):
                continue
            tail = column[n_prev:]
            if len(tail) == 0:
                self._order_cache[name] = prev_order
                adopted += 1
                continue
            if np.isnan(tail).any() or np.isnan(prev_column).any():
                # searchsorted has no total order over NaN; fall back
                # to the fresh sort for this column.
                continue
            tail_order = np.argsort(tail, kind="mergesort")
            tail_sorted = tail[tail_order]
            prefix_sorted = prev_column[prev_order]
            # Ties place appended rows after prefix rows (side="right"),
            # matching stable-sort index order.
            positions = np.searchsorted(
                prefix_sorted, tail_sorted, side="right"
            )
            merged = np.empty(n, dtype=prev_order.dtype)
            targets = positions + np.arange(len(tail_sorted))
            mask = np.ones(n, dtype=bool)
            mask[targets] = False
            merged[targets] = tail_order + n_prev
            merged[mask] = prev_order
            self._order_cache[name] = merged
            adopted += 1
        return adopted

    def nominal_values(self, name: str) -> List[Any]:
        """The ensemble of values a nominal feature takes (§5.1.2)."""
        seen: List[Any] = []
        for row in self.rows:
            value = row.get(name)
            if value not in seen:
                seen.append(value)
        return seen

    # -- manipulation ---------------------------------------------------------

    def subset(self, indices: Sequence[int]) -> "Dataset":
        indices = list(indices)
        return Dataset(
            [self.rows[i] for i in indices],
            self.labels[indices],
            self.weights[indices],
            feature_names=self.feature_names,
        )

    def bootstrap(self, rng: np.random.Generator) -> "Dataset":
        """A bagging sample (with replacement) of the same size."""
        indices = rng.integers(0, len(self), size=len(self))
        return self.subset(indices)

    def split_folds(
        self, k: int, rng: Optional[np.random.Generator] = None
    ) -> List[Tuple["Dataset", "Dataset"]]:
        """K-fold partition; returns (train, test) pairs."""
        if k < 2:
            raise ValueError("need at least 2 folds")
        if len(self) < k:
            raise ValueError("fewer rows than folds")
        indices = np.arange(len(self))
        if rng is not None:
            rng.shuffle(indices)
        folds = np.array_split(indices, k)
        pairs = []
        for i in range(k):
            test_idx = folds[i]
            train_idx = np.concatenate([folds[j] for j in range(k) if j != i])
            pairs.append((self.subset(train_idx), self.subset(test_idx)))
        return pairs
