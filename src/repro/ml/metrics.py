"""Evaluation metrics for the classifiers (§7.1).

``eo_accuracy`` is the paper's exact-or-over metric: the fraction of
predictions whose interval index is >= the true index, the quantity the
maturation criterion (§5.3.1) is built on.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from repro.ml.dataset import Dataset


def accuracy(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) == 0:
        return 0.0
    return float((y_true == y_pred).mean())


def eo_accuracy(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Exact-or-over accuracy: prediction interval >= true interval."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) == 0:
        return 0.0
    return float((y_pred >= y_true).mean())


def confusion_matrix(
    y_true: Sequence[int], y_pred: Sequence[int], n_classes: int = 0
) -> np.ndarray:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if n_classes == 0:
        n_classes = int(max(y_true.max(initial=0), y_pred.max(initial=0))) + 1
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        matrix[t, p] += 1
    return matrix


def precision_recall(
    y_true: Sequence[int], y_pred: Sequence[int], positive: int = 1
) -> Tuple[float, float]:
    """Precision and recall of the ``positive`` class."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    tp = int(((y_pred == positive) & (y_true == positive)).sum())
    fp = int(((y_pred == positive) & (y_true != positive)).sum())
    fn = int(((y_pred != positive) & (y_true == positive)).sum())
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    return precision, recall


def f_measure(
    y_true: Sequence[int], y_pred: Sequence[int], positive: int = 1
) -> float:
    """Harmonic mean of precision and recall (the paper's global score)."""
    precision, recall = precision_recall(y_true, y_pred, positive)
    if precision + recall == 0.0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def cross_validate(
    make_classifier: Callable[[], object],
    dataset: Dataset,
    k: int = 10,
    rng=None,
    metrics: Dict[str, Callable] = None,
) -> Dict[str, float]:
    """K-fold cross-validation; returns the mean of each metric.

    ``metrics`` maps names to ``metric(y_true, y_pred) -> float``;
    defaults to exact and exact-or-over accuracy (Table 1's columns).
    """
    if metrics is None:
        metrics = {"exact": accuracy, "exact_or_over": eo_accuracy}
    sums = {name: 0.0 for name in metrics}
    folds = dataset.split_folds(k, rng=rng)
    for train, test in folds:
        classifier = make_classifier()
        classifier.fit(train)
        y_pred = classifier.predict(test.rows)
        for name, metric in metrics.items():
            sums[name] += metric(test.labels, y_pred)
    return {name: value / len(folds) for name, value in sums.items()}
