"""Compiled decision-tree inference: the ML fast path.

``J48Classifier.predict_one`` historically walked a pointer-chasing
``_Node`` tree, doing one dict lookup, one ``try: float(...)`` and a
handful of attribute loads per level — per row, on the invocation
critical path (§7.1.2).  This module compiles a fitted tree, once,
after ``fit()``, in two stages:

1. **Flatten** the ``_Node`` tree into parallel arrays —
   ``node_feature[i]`` (feature *position* tested at node ``i``, -1
   for a leaf), ``node_threshold[i]`` (numeric cut or ``None``),
   ``node_left[i]``/``node_right[i]`` (numeric children),
   ``node_children[i]`` (``value -> child id`` for nominal splits) and
   ``node_prediction[i]`` (the node's majority class, returned when a
   value is missing/unseen at node ``i``) — plus a *feature codec*
   that turns a row dict into a positional list in one pass (one
   ``dict.get`` per tested feature, numeric coercion hoisted out of
   the walk).

2. **Generate code**: the arrays are emitted as a dedicated Python
   function — numeric coercion per feature up top, then the tree as
   nested ``if value <= threshold`` branches and per-node nominal
   dispatch tables — and ``exec``-compiled.  Prediction is then one
   call into straight-line branchy bytecode: no per-node attribute
   loads, no ``try`` per level, no interpretive walk at all.

Trees deeper than the CPython indentation limit allows (or with
non-finite thresholds, which cannot be spelled as literals) skip stage
2 and use the positional array walk, which is the same for every
semantic purpose — and the arrays, not the generated function, are
what pickles (the function is regenerated on unpickling, which is how
warm-model cache entries travel between processes).

Predictions are bit-identical to the recursive walk — including the
fall-back-to-majority behaviour on missing features, non-numeric
values at numeric nodes and unseen nominal values
(``tests/ml/test_compiled_parity.py`` proves it property-style).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

#: Leaf marker in ``node_feature``.
LEAF = -1

#: Deepest tree the code generator will emit.  CPython's tokenizer
#: refuses more than 100 indentation levels; the encode prologue and
#: dispatch chains use a few, so stay comfortably below.
MAX_CODEGEN_DEPTH = 80


class CompiledTree:
    """A fitted tree flattened into parallel arrays plus a row codec."""

    __slots__ = (
        "feature_names",
        "feature_numeric",
        "node_feature",
        "node_threshold",
        "node_left",
        "node_right",
        "node_children",
        "node_prediction",
        "n_nodes",
        "depth",
        "_codec",
        "_fn",
        "_batch",
    )

    def __init__(self, root, feature_types: Dict[str, str]):
        self.feature_names: List[str] = []
        self.feature_numeric: List[bool] = []
        self.node_feature: List[int] = []
        self.node_threshold: List[Any] = []
        self.node_left: List[int] = []
        self.node_right: List[int] = []
        self.node_children: List[Any] = []
        self.node_prediction: List[int] = []
        feature_ids: Dict[str, int] = {}

        def feature_id(name: str) -> int:
            fid = feature_ids.get(name)
            if fid is None:
                fid = feature_ids[name] = len(self.feature_names)
                self.feature_names.append(name)
                self.feature_numeric.append(
                    feature_types.get(name) == "numeric"
                )
            return fid

        def emit(node) -> int:
            i = len(self.node_feature)
            self.node_feature.append(LEAF)
            self.node_threshold.append(None)
            self.node_left.append(LEAF)
            self.node_right.append(LEAF)
            self.node_children.append(None)
            self.node_prediction.append(node.prediction)
            return i

        max_depth = 0
        # Iterative DFS: ids are assigned pre-order, children patched in
        # after their subtrees are emitted (no recursion limit issues).
        stack = [(root, emit(root), 0)]
        while stack:
            node, i, d = stack.pop()
            if d > max_depth:
                max_depth = d
            if node.is_leaf:
                continue
            self.node_feature[i] = feature_id(node.feature)
            if node.threshold is not None:
                self.node_threshold[i] = node.threshold
                self.node_left[i] = li = emit(node.left)
                self.node_right[i] = ri = emit(node.right)
                stack.append((node.left, li, d + 1))
                stack.append((node.right, ri, d + 1))
            else:
                table = {}
                for value, child in node.children.items():
                    table[value] = ci = emit(child)
                    stack.append((child, ci, d + 1))
                self.node_children[i] = table
        self.n_nodes = len(self.node_feature)
        self.depth = max_depth
        # Pre-zipped codec: one (name, is_numeric) pass per row.
        self._codec = list(zip(self.feature_names, self.feature_numeric))
        self._install_codegen()

    def _install_codegen(self) -> None:
        compiled = self._codegen()
        if compiled is None:
            self._fn: Optional[Callable[[Dict[str, Any]], int]] = None
            self._batch: Optional[Callable[[Sequence], List]] = None
        else:
            self._fn, self._batch = compiled

    # -- pickling ------------------------------------------------------------
    # The generated functions cannot pickle; the arrays can, and fully
    # determine them.  Warm-model cache entries rely on this round trip.

    def __getstate__(self):
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in ("_fn", "_batch")
        }

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)
        self._install_codegen()

    # -- code generation -----------------------------------------------------

    def _emit_body(
        self,
        lines: List[str],
        namespace: Dict[str, Any],
        base_indent: int,
        terminal: str,
    ) -> None:
        """Append the tree's branch code to ``lines``.

        ``terminal`` is a format string with a ``{i}`` placeholder that
        ends a path at node ``i`` (``return _p[{i}]`` for the per-row
        function; append-and-continue for the batch loop).

        Feature fetches are *lazy*: each feature's get + numeric
        coercion (mirroring ``encode``: float() failures become None,
        i.e. missing) is emitted at the first node on the path that
        tests it, so a prediction only ever touches the features its
        own path needs.
        """
        feat = self.node_feature
        thr = self.node_threshold
        numeric = self.feature_numeric
        codec_names = self.feature_names
        # Iterative emit (mirrors the walk): each stack entry is a node
        # id, the indentation its code starts at, and the set of
        # features already fetched on the path leading to it.
        stack: List[Any] = [(0, base_indent, frozenset())]
        while stack:
            entry = stack.pop()
            if isinstance(entry, str):
                lines.append(entry)  # deferred 'else:' / 'elif:' line
                continue
            i, ind, fetched = entry
            pad = " " * ind
            f = feat[i]
            if f < 0:
                lines.append(terminal.format(i=i, pad=pad))
                continue
            if f not in fetched:
                # Plain subscript: a specialized dict load, roughly
                # half the cost of a ``row.get(...)`` method call.  A
                # missing key raises KeyError, which the enclosing
                # except routes through the array walk — the walk's
                # ``get``-based codec maps it to the same per-node
                # majority fallback.
                lines.append(f"{pad}v{f} = row[{codec_names[f]!r}]")
                if numeric[f]:
                    lines.append(f"{pad}if type(v{f}) is not float:")
                    lines.append(f"{pad} try:")
                    lines.append(f"{pad}  v{f} = float(v{f})")
                    lines.append(f"{pad} except (TypeError, ValueError):")
                    lines.append(f"{pad}  v{f} = None")
                fetched = fetched | {f}
            t = thr[i]
            if t is not None:
                # repr(float) round-trips; plain float() also normalises
                # numpy scalars, whose own repr is not a bare literal.
                lines.append(f"{pad}if v{f} <= {float(t)!r}:")
                # LIFO: right subtree is pushed first so the left body
                # is emitted directly under its 'if'.
                stack.append((self.node_right[i], ind + 1, fetched))
                stack.append(f"{pad}else:")
                stack.append((self.node_left[i], ind + 1, fetched))
            else:
                # Nominal: dict lookup keeps exact semantics (equality
                # matching, TypeError on unhashable), then an int
                # dispatch chain over the few observed branch values.
                table = {v: j for j, v in enumerate(self.node_children[i])}
                namespace[f"_t{i}"] = table
                lines.append(f"{pad}_j = _t{i}.get(v{f}, -1)")
                stack.append(
                    f"{pad}else:\n" + terminal.format(i=i, pad=pad + " ")
                )
                children = list(self.node_children[i].values())
                for j in range(len(children) - 1, -1, -1):
                    kw = "if" if j == 0 else "elif"
                    stack.append((children[j], ind + 1, fetched))
                    stack.append(f"{pad}{kw} _j == {j}:")

    def _codegen(self):
        """Emit the tree as two dedicated Python functions — per-row
        and batch — and ``exec``-compile them.

        Returns ``None`` (callers fall back to the array walk) when the
        tree is too deep for CPython's 100-level indentation limit or a
        threshold has no exact source-literal spelling (``repr`` of a
        finite float round-trips; ``inf``/``nan`` do not).

        The tree bodies carry no missing-value checks: a None at a
        numeric node raises TypeError on ``<=``, and the except clause
        re-runs the row through the array walk, which returns that
        node's majority.  Rows with every tested numeric feature
        present (the overwhelmingly common case) pay nothing — a
        CPython try block is free until it raises.  A genuinely
        unhashable nominal value raises TypeError in both the
        generated dispatch and the fallback walk, so it still
        propagates to the caller exactly as the recursive walk does.
        """
        if self.depth > MAX_CODEGEN_DEPTH:
            return None
        if any(
            t is not None and not math.isfinite(t) for t in self.node_threshold
        ):
            return None

        namespace: Dict[str, Any] = {}
        # Predictions return through a shared table rather than baked
        # literals so the exact label objects of the recursive walk
        # (possibly numpy scalars) come back unchanged.
        namespace["_p"] = self.node_prediction

        lines: List[str] = ["def _tree_predict(row):", " try:"]
        self._emit_body(lines, namespace, 2, "{pad}return _p[{i}]")
        lines.append(" except (KeyError, TypeError):")
        lines.append("  return _fb(row)")

        # The batch variant keeps the row loop inside the generated
        # code: no per-row Python call, no comprehension dispatch.
        lines.append("def _tree_batch(rows):")
        lines.append(" _out = []")
        lines.append(" _a = _out.append")
        lines.append(" for row in rows:")
        lines.append("  try:")
        self._emit_body(
            lines, namespace, 3, "{pad}_a(_p[{i}])\n{pad}continue"
        )
        lines.append("  except (KeyError, TypeError):")
        lines.append("   _a(_fb(row))")
        lines.append(" return _out")

        source = "\n".join(lines)
        exec(compile(source, "<compiled-tree>", "exec"), namespace)
        namespace["_fb"] = self._walk_row
        return namespace["_tree_predict"], namespace["_tree_batch"]

    # -- row codec -----------------------------------------------------------

    def encode(self, row: Dict[str, Any]) -> List[Any]:
        """One positional value per tested feature; numeric coercion
        (mirroring ``float(value)`` at every numeric node, with failures
        mapped to ``None``) happens here, once per row."""
        get = row.get
        values: List[Any] = []
        append = values.append
        for name, numeric in self._codec:
            v = get(name)
            if numeric and type(v) is not float:
                try:
                    v = float(v)
                except (TypeError, ValueError):
                    v = None
            append(v)
        return values

    # -- inference -----------------------------------------------------------

    def predict_encoded(self, values: List[Any]) -> int:
        feat = self.node_feature
        thr = self.node_threshold
        left = self.node_left
        right = self.node_right
        kids = self.node_children
        pred = self.node_prediction
        i = 0
        while True:
            f = feat[i]
            if f < 0:
                return pred[i]
            t = thr[i]
            v = values[f]
            if t is not None:
                if v is None:
                    return pred[i]  # missing/non-numeric: node majority
                i = left[i] if v <= t else right[i]
            else:
                child = kids[i].get(v)
                if child is None:
                    return pred[i]  # unseen nominal value: node majority
                i = child
        raise AssertionError("unreachable")  # pragma: no cover

    def _walk_row(self, row: Dict[str, Any]) -> int:
        """Array-walk fallback — also the generated function's escape
        hatch for rows with missing/uncoercible numeric values."""
        return self.predict_encoded(self.encode(row))

    def predict_one(self, row: Dict[str, Any]) -> int:
        fn = self._fn
        if fn is not None:
            return fn(row)
        return self.predict_encoded(self.encode(row))

    def predict(self, rows: Sequence[Dict[str, Any]]) -> np.ndarray:
        batch = self._batch
        if batch is not None:
            return np.asarray(batch(rows))
        walk = self.predict_encoded
        encode = self.encode
        return np.asarray([walk(encode(row)) for row in rows])
