"""Random-tree family: RandomTree and RandomForest (Table 1).

Both follow Weka's formulation: a RandomTree considers a random subset
of ``K = floor(log2(p)) + 1`` features at each node and is unpruned; a
RandomForest bags ``n_trees`` RandomTrees and takes a majority vote.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.ml.dataset import Dataset
from repro.ml.tree import J48Classifier


def _default_subset_size(n_features: int) -> int:
    return max(1, int(math.log2(max(n_features, 2))) + 1)


class RandomTreeClassifier:
    """A single unpruned tree with per-node random feature subsets."""

    def __init__(
        self,
        feature_subset: Optional[int] = None,
        min_leaf: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        self.feature_subset = feature_subset
        self.min_leaf = min_leaf
        self.rng = rng or np.random.default_rng(0)
        self._tree: Optional[J48Classifier] = None

    def fit(self, dataset: Dataset) -> "RandomTreeClassifier":
        subset = self.feature_subset or _default_subset_size(
            len(dataset.feature_names)
        )
        self._tree = J48Classifier(
            min_leaf=self.min_leaf,
            prune=False,
            feature_subset=subset,
            rng=self.rng,
        )
        self._tree.fit(dataset)
        return self

    def predict_one(self, row: Dict[str, Any]) -> int:
        if self._tree is None:
            raise RuntimeError("classifier is not fitted")
        return self._tree.predict_one(row)

    def predict(self, rows: Sequence[Dict[str, Any]]) -> np.ndarray:
        return np.asarray([self.predict_one(row) for row in rows])


class RandomForestClassifier:
    """Bagged RandomTrees with majority voting."""

    def __init__(
        self,
        n_trees: int = 30,
        feature_subset: Optional[int] = None,
        min_leaf: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        if n_trees < 1:
            raise ValueError("need at least one tree")
        self.n_trees = n_trees
        self.feature_subset = feature_subset
        self.min_leaf = min_leaf
        self.rng = rng or np.random.default_rng(0)
        self._trees: list = []

    def fit(self, dataset: Dataset) -> "RandomForestClassifier":
        self._trees = []
        for _ in range(self.n_trees):
            sample = dataset.bootstrap(self.rng)
            tree = RandomTreeClassifier(
                feature_subset=self.feature_subset,
                min_leaf=self.min_leaf,
                rng=self.rng,
            )
            tree.fit(sample)
            self._trees.append(tree)
        return self

    def predict_one(self, row: Dict[str, Any]) -> int:
        if not self._trees:
            raise RuntimeError("classifier is not fitted")
        votes = Counter(tree.predict_one(row) for tree in self._trees)
        return votes.most_common(1)[0][0]

    def predict(self, rows: Sequence[Dict[str, Any]]) -> np.ndarray:
        return np.asarray([self.predict_one(row) for row in rows])
