"""Memory-interval discretization (§5.1.1).

OpenWhisk permits sandbox memory in [0, 2] GB; OFC divides that range
into fixed-size intervals and formulates memory prediction as
classification over interval indices.  The amount of memory to allocate
is the *upper bound* of the predicted interval, and the paper's
conservative policy additionally bumps the prediction one interval up
once the model is mature (§5.3.1).
"""

from __future__ import annotations

import math


class MemoryIntervals:
    """Maps memory amounts (MB) to classification intervals and back."""

    def __init__(self, interval_mb: float = 16.0, max_mb: float = 2048.0):
        if interval_mb <= 0 or max_mb <= 0:
            raise ValueError("interval and max must be positive")
        self.interval_mb = interval_mb
        self.max_mb = max_mb
        self.n_classes = int(math.ceil(max_mb / interval_mb))
        # Upper bounds are queried once per mature prediction, on the
        # invocation critical path: precompute the (tiny) table once.
        # Entries use the exact expression the arithmetic path used,
        # so lookups are bit-identical to the multiply they replace.
        self._top = self.n_classes - 1
        self._upper = tuple(
            (i + 1) * self.interval_mb for i in range(self.n_classes)
        )

    def label(self, memory_mb: float) -> int:
        """Interval index containing ``memory_mb`` (clamped to range)."""
        if memory_mb <= 0:
            return 0
        # The tiny epsilon keeps exact upper bounds in their own
        # interval despite floating-point division error.
        index = int(math.ceil(memory_mb / self.interval_mb - 1e-9)) - 1
        return max(0, min(index, self._top))

    def upper_bound_mb(self, label: int) -> float:
        """The allocation for a predicted interval: its upper bound."""
        return self._upper[max(0, min(label, self._top))]

    def bump(self, label: int, intervals: int = 1) -> int:
        """Conservative adjustment: ``intervals`` steps up (§5.3.1)."""
        return min(label + intervals, self._top)

    def allocation_mb(self, label: int, bump_intervals: int = 0) -> float:
        """Fused ``bump`` + ``upper_bound_mb``: the critical-path
        sizing query as a single clamped table lookup."""
        return self._upper[max(0, min(label + bump_intervals, self._top))]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryIntervals({self.interval_mb} MB x {self.n_classes} "
            f"up to {self.max_mb} MB)"
        )
