"""HoeffdingTree (VFDT): an incremental decision-tree learner.

The fourth classifier of Table 1.  Leaves accumulate sufficient
statistics (per-class counts; per-class Gaussian estimators for numeric
attributes, value/class contingency tables for nominal ones) and are
split once the Hoeffding bound guarantees the best split beats the
runner-up with confidence 1-delta.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.ml.dataset import Dataset

_EPS = 1e-12


def _entropy_from_counts(counts: Dict[int, float]) -> float:
    total = sum(counts.values())
    if total <= 0:
        return 0.0
    result = 0.0
    for value in counts.values():
        if value > 0:
            p = value / total
            result -= p * math.log2(p)
    return result


class _GaussianEstimator:
    """Running mean/variance (Welford) for one (attribute, class)."""

    __slots__ = ("n", "mean", "m2", "min", "max")

    def __init__(self):
        self.n = 0.0
        self.mean = 0.0
        self.m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float, weight: float = 1.0) -> None:
        self.n += weight
        delta = value - self.mean
        self.mean += weight * delta / self.n
        self.m2 += weight * delta * (value - self.mean)
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def std(self) -> float:
        if self.n <= 1:
            return 0.0
        return math.sqrt(max(self.m2 / (self.n - 1), 0.0))

    def probability_leq(self, value: float) -> float:
        """P(X <= value) under the fitted Gaussian."""
        if self.n == 0:
            return 0.0
        std = self.std
        if std < _EPS:
            return 1.0 if value >= self.mean else 0.0
        z = (value - self.mean) / std
        return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


class _LeafStats:
    """Sufficient statistics held at one growing leaf."""

    def __init__(self, feature_types: Dict[str, str]):
        self.feature_types = feature_types
        self.class_counts: Dict[int, float] = {}
        self.nominal: Dict[str, Dict[Any, Dict[int, float]]] = {}
        self.numeric: Dict[str, Dict[int, _GaussianEstimator]] = {}
        self.seen_since_eval = 0

    @property
    def total_weight(self) -> float:
        return sum(self.class_counts.values())

    def majority(self) -> int:
        if not self.class_counts:
            return 0
        return max(self.class_counts.items(), key=lambda kv: kv[1])[0]

    def add(self, row: Dict[str, Any], label: int, weight: float) -> None:
        self.class_counts[label] = self.class_counts.get(label, 0.0) + weight
        self.seen_since_eval += 1
        for name, kind in self.feature_types.items():
            value = row.get(name)
            if value is None:
                continue
            if kind == "nominal":
                table = self.nominal.setdefault(name, {})
                counts = table.setdefault(value, {})
                counts[label] = counts.get(label, 0.0) + weight
            else:
                try:
                    numeric = float(value)
                except (TypeError, ValueError):
                    continue  # opaque value that is not numeric: skip
                estimators = self.numeric.setdefault(name, {})
                estimator = estimators.setdefault(label, _GaussianEstimator())
                estimator.add(numeric, weight)

    # -- candidate split evaluation -----------------------------------------

    def best_splits(self) -> List[tuple]:
        """Top candidate splits as (gain, feature, threshold_or_None)."""
        parent_entropy = _entropy_from_counts(self.class_counts)
        total = self.total_weight
        candidates: List[tuple] = [(0.0, None, None)]  # "no split" baseline
        for name, kind in self.feature_types.items():
            if kind == "nominal":
                table = self.nominal.get(name)
                if not table or len(table) < 2:
                    continue
                children_entropy = 0.0
                for counts in table.values():
                    weight = sum(counts.values())
                    children_entropy += (
                        weight * _entropy_from_counts(counts) / total
                    )
                candidates.append((parent_entropy - children_entropy, name, None))
            else:
                estimators = self.numeric.get(name)
                if not estimators or len(estimators) < 2:
                    continue
                gain, threshold = self._best_numeric_split(
                    estimators, parent_entropy, total
                )
                if threshold is not None:
                    candidates.append((gain, name, threshold))
        candidates.sort(key=lambda c: c[0], reverse=True)
        return candidates

    def _best_numeric_split(self, estimators, parent_entropy, total):
        lo = min(e.min for e in estimators.values())
        hi = max(e.max for e in estimators.values())
        if not math.isfinite(lo) or hi - lo < _EPS:
            return 0.0, None
        best_gain, best_threshold = 0.0, None
        for i in range(1, 10):
            threshold = lo + (hi - lo) * i / 10.0
            left: Dict[int, float] = {}
            right: Dict[int, float] = {}
            for label, est in estimators.items():
                p_left = est.probability_leq(threshold)
                left[label] = est.n * p_left
                right[label] = est.n * (1.0 - p_left)
            lw, rw = sum(left.values()), sum(right.values())
            if lw < _EPS or rw < _EPS:
                continue
            children_entropy = (
                lw * _entropy_from_counts(left)
                + rw * _entropy_from_counts(right)
            ) / total
            gain = parent_entropy - children_entropy
            if gain > best_gain:
                best_gain, best_threshold = gain, threshold
        return best_gain, best_threshold


class _HNode:
    __slots__ = ("stats", "feature", "threshold", "children", "prediction")

    def __init__(self, stats: Optional[_LeafStats]):
        self.stats = stats  # non-None while the node is a growing leaf
        self.feature: Optional[str] = None
        self.threshold: Optional[float] = None
        self.children: Dict[Any, "_HNode"] = {}
        self.prediction = 0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class HoeffdingTreeClassifier:
    """Very Fast Decision Tree (Domingos & Hulten)."""

    def __init__(
        self,
        delta: float = 1e-5,
        tie_threshold: float = 0.05,
        grace_period: int = 50,
        n_classes: Optional[int] = None,
    ):
        self.delta = delta
        self.tie_threshold = tie_threshold
        self.grace_period = grace_period
        self.n_classes = n_classes
        self._root: Optional[_HNode] = None
        self._feature_types: Dict[str, str] = {}

    # -- batch API (fit on a Dataset, like the other classifiers) --------------

    def fit(self, dataset: Dataset) -> "HoeffdingTreeClassifier":
        self._feature_types = {
            name: dataset.feature_type(name) for name in dataset.feature_names
        }
        if self.n_classes is None:
            self.n_classes = dataset.n_classes
        self._root = _HNode(_LeafStats(self._feature_types))
        for row, label, weight in zip(
            dataset.rows, dataset.labels, dataset.weights
        ):
            self.learn_one(row, int(label), float(weight))
        return self

    # -- incremental API --------------------------------------------------------

    def learn_one(
        self, row: Dict[str, Any], label: int, weight: float = 1.0
    ) -> None:
        if self._root is None:
            if not self._feature_types:
                self._feature_types = {
                    name: (
                        "nominal"
                        if isinstance(value, (str, bool))
                        else "numeric"
                    )
                    for name, value in row.items()
                }
            self._root = _HNode(_LeafStats(self._feature_types))
        node = self._sort_to_leaf(row)
        stats = node.stats
        stats.add(row, label, weight)
        node.prediction = stats.majority()
        if stats.seen_since_eval >= self.grace_period:
            stats.seen_since_eval = 0
            self._try_split(node)

    def _sort_to_leaf(self, row: Dict[str, Any]) -> _HNode:
        node = self._root
        while not node.is_leaf:
            if node.threshold is not None:
                try:
                    value = float(row.get(node.feature, 0.0))
                    side = "<=" if value <= node.threshold else ">"
                except (TypeError, ValueError):
                    side = "<="
                node = node.children[side]
            else:
                child = node.children.get(row.get(node.feature))
                if child is None:
                    # Unseen nominal value: grow a new branch.
                    child = _HNode(_LeafStats(self._feature_types))
                    child.prediction = node.prediction
                    node.children[row.get(node.feature)] = child
                node = child
        return node

    def _hoeffding_bound(self, n: float) -> float:
        value_range = math.log2(max(self.n_classes or 2, 2))
        return math.sqrt(
            value_range * value_range * math.log(1.0 / self.delta) / (2.0 * n)
        )

    def _try_split(self, node: _HNode) -> None:
        stats = node.stats
        n = stats.total_weight
        if n < 2 or len(stats.class_counts) < 2:
            return
        candidates = stats.best_splits()
        if len(candidates) < 2 or candidates[0][1] is None:
            return
        g1 = candidates[0][0]
        g2 = candidates[1][0]
        bound = self._hoeffding_bound(n)
        if g1 - g2 > bound or bound < self.tie_threshold:
            _gain, feature, threshold = candidates[0]
            node.feature = feature
            node.threshold = threshold
            majority = stats.majority()
            if threshold is not None:
                for side in ("<=", ">"):
                    child = _HNode(_LeafStats(self._feature_types))
                    child.prediction = majority
                    node.children[side] = child
            else:
                for value in stats.nominal.get(feature, {}):
                    child = _HNode(_LeafStats(self._feature_types))
                    counts = stats.nominal[feature][value]
                    child.prediction = max(
                        counts.items(), key=lambda kv: kv[1]
                    )[0]
                    node.children[value] = child
            node.stats = None

    # -- prediction ----------------------------------------------------------------

    def predict_one(self, row: Dict[str, Any]) -> int:
        if self._root is None:
            raise RuntimeError("classifier is not fitted")
        node = self._root
        while not node.is_leaf:
            if node.threshold is not None:
                try:
                    numeric = float(row.get(node.feature, 0.0))
                except (TypeError, ValueError):
                    numeric = 0.0
                node = node.children["<=" if numeric <= node.threshold else ">"]
            else:
                child = node.children.get(row.get(node.feature))
                if child is None:
                    break
                node = child
        return node.prediction

    def predict(self, rows: Sequence[Dict[str, Any]]) -> np.ndarray:
        return np.asarray([self.predict_one(row) for row in rows])
