"""Machine-learning module (from-scratch reimplementations).

The paper evaluates four decision-tree classifiers from Weka — J48
(C4.5), RandomForest, RandomTree and HoeffdingTree — on the task of
predicting a function invocation's memory interval from request
features, and uses J48 both for memory prediction and for the binary
cache-benefit classifier (§5).  This package reimplements all four on
numpy, plus the dataset plumbing, interval discretization and the
evaluation metrics (exact / exact-or-over accuracy, precision/recall/F,
k-fold cross-validation) used by Table 1 and §7.1.
"""

from repro.ml.dataset import Dataset
from repro.ml.forest import RandomForestClassifier, RandomTreeClassifier
from repro.ml.hoeffding import HoeffdingTreeClassifier
from repro.ml.intervals import MemoryIntervals
from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    cross_validate,
    eo_accuracy,
    f_measure,
    precision_recall,
)
from repro.ml.tree import J48Classifier

__all__ = [
    "Dataset",
    "HoeffdingTreeClassifier",
    "J48Classifier",
    "MemoryIntervals",
    "RandomForestClassifier",
    "RandomTreeClassifier",
    "accuracy",
    "confusion_matrix",
    "cross_validate",
    "eo_accuracy",
    "f_measure",
    "precision_recall",
]
