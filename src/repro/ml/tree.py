"""J48: a C4.5-style decision tree classifier.

Implements the parts of C4.5 the paper relies on (§5.1.1):

* gain-ratio split selection;
* binary splits on numeric attributes, multiway splits on nominal ones
  (no semantic knowledge of argument values is needed — for nominal
  features only their observed ensemble matters, §5.1.2);
* sample weights (the ModelTrainer over-weights underprediction
  examples, §5.3.3);
* pessimistic error pruning with C4.5's default confidence factor.

Prediction is a fast tree walk over a feature dict — the property that
makes J48 usable on the invocation critical path (§7.1.2).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.ml.compiled import CompiledTree
from repro.ml.dataset import Dataset

_EPS = 1e-12


@lru_cache(maxsize=4096)
def _zero_error_bound(n: float, cf: float) -> float:
    """C4.5's exact binomial bound for zero observed errors, cached —
    pruning evaluates it twice per node and node weights repeat."""
    return 1.0 - cf ** (1.0 / n)


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total <= 0:
        return 0.0
    probs = counts[counts > 0] / total
    return float(-(probs * np.log2(probs)).sum())


def _upper_error_bound(n: float, e: float, z: float, cf: float = 0.25) -> float:
    """C4.5's pessimistic (one-sided upper) error rate estimate.

    Uses the exact binomial bound for the e == 0 and e < 1 special
    cases (as C4.5 does) and the normal approximation otherwise.
    """
    if n <= 0:
        return 0.0
    if e < _EPS:
        return _zero_error_bound(n, cf)
    if e < 1.0:
        base = _zero_error_bound(n, cf)
        return base + e * (_upper_error_bound(n, 1.0, z, cf) - base)
    f = e / n
    z2 = z * z
    numerator = (
        f
        + z2 / (2 * n)
        + z * math.sqrt(max(0.0, f / n - f * f / n + z2 / (4 * n * n)))
    )
    return numerator / (1 + z2 / n)


class _Node:
    __slots__ = (
        "is_leaf",
        "prediction",
        "class_counts",
        "feature",
        "threshold",
        "left",
        "right",
        "children",
    )

    def __init__(self, prediction: int, class_counts: np.ndarray):
        self.is_leaf = True
        self.prediction = prediction
        self.class_counts = class_counts
        self.feature: Optional[str] = None
        self.threshold: Optional[float] = None
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.children: Optional[Dict[Any, "_Node"]] = None

    def subtree_nodes(self) -> List["_Node"]:
        nodes = [self]
        if not self.is_leaf:
            for child in self._child_list():
                nodes.extend(child.subtree_nodes())
        return nodes

    def _child_list(self) -> List["_Node"]:
        if self.children is not None:
            return list(self.children.values())
        return [c for c in (self.left, self.right) if c is not None]


class _Split:
    __slots__ = ("feature", "threshold", "partitions", "gain_ratio")

    def __init__(self, feature, threshold, partitions, gain_ratio):
        self.feature = feature
        self.threshold = threshold
        self.partitions = partitions  # list of (value_or_side, index array)
        self.gain_ratio = gain_ratio


class J48Classifier:
    """C4.5 decision tree.

    Parameters mirror Weka's J48 defaults: ``min_leaf`` instances per
    branch (2) and pruning confidence 0.25.  ``feature_subset`` draws a
    random subset of features at each node (used by the random-tree
    family, off for plain J48).
    """

    def __init__(
        self,
        min_leaf: int = 2,
        prune: bool = True,
        confidence: float = 0.25,
        max_depth: Optional[int] = None,
        feature_subset: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.min_leaf = min_leaf
        self.prune = prune
        self.confidence = confidence
        self.max_depth = max_depth
        self.feature_subset = feature_subset
        self.rng = rng
        self._root: Optional[_Node] = None
        self._compiled: Optional[CompiledTree] = None
        self._majority: int = 0
        self._n_classes: int = 0
        # One-sided z for the pruning confidence (C4.5's CF), cached
        # per confidence level across classifier instances.
        self._z = _cached_normal_quantile(1.0 - confidence)

    # -- training ------------------------------------------------------------

    def fit(self, dataset: Dataset) -> "J48Classifier":
        if len(dataset) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._n_classes = max(dataset.n_classes, 1)
        self._columns = {
            name: dataset.column(name) for name in dataset.feature_names
        }
        self._types = {
            name: dataset.feature_type(name) for name in dataset.feature_names
        }
        self._labels = dataset.labels
        self._weights = dataset.weights
        self._feature_names = dataset.feature_names
        counts = np.bincount(
            self._labels, weights=self._weights, minlength=self._n_classes
        )
        self._majority = int(counts.argmax())
        # Presort every numeric column once (reusing the dataset's
        # cached orders — shared across refits of the same function);
        # nodes then partition the sorted orders instead of re-sorting.
        orders = {
            name: dataset.sort_order(name)
            for name in self._feature_names
            if self._types[name] == "numeric"
        }
        self._membership = np.zeros(len(dataset), dtype=bool)
        self._root = self._build(np.arange(len(dataset)), depth=0, orders=orders)
        del self._membership
        if self.prune:
            self._prune_node(self._root)
        self._compiled = CompiledTree(self._root, self._types)
        # Release training references (the tree keeps what it needs).
        del self._columns, self._labels, self._weights
        return self

    def _class_counts(self, indices: np.ndarray) -> np.ndarray:
        return np.bincount(
            self._labels[indices],
            weights=self._weights[indices],
            minlength=self._n_classes,
        )

    def _child_orders(
        self,
        orders: Dict[str, np.ndarray],
        child_idx: np.ndarray,
        split_feature: str,
    ) -> Dict[str, np.ndarray]:
        """Filter every presorted order down to a child's index set.

        O(|child| x features) via a reusable membership mask — replaces
        the per-node O(m log m) argsort of the historical code.  The
        split feature's own order is the (already sorted) child slice.
        """
        mask = self._membership
        mask[child_idx] = True
        filtered = {
            name: child_idx
            if name == split_feature
            else order[mask[order]]
            for name, order in orders.items()
        }
        mask[child_idx] = False
        return filtered

    def _build(
        self,
        indices: np.ndarray,
        depth: int,
        orders: Dict[str, np.ndarray],
    ) -> _Node:
        counts = self._class_counts(indices)
        node = _Node(int(counts.argmax()), counts)
        if (
            len(indices) < 2 * self.min_leaf
            or np.count_nonzero(counts) <= 1
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node
        split = self._choose_split(indices, counts, orders)
        if split is None:
            return node
        node.is_leaf = False
        node.feature = split.feature
        node.threshold = split.threshold
        if split.threshold is not None:
            (_, left_idx), (_, right_idx) = split.partitions
            node.left = self._build(
                left_idx,
                depth + 1,
                self._child_orders(orders, left_idx, split.feature),
            )
            node.right = self._build(
                right_idx,
                depth + 1,
                self._child_orders(orders, right_idx, split.feature),
            )
        else:
            node.children = {
                value: self._build(
                    part_idx,
                    depth + 1,
                    self._child_orders(orders, part_idx, ""),
                )
                for value, part_idx in split.partitions
            }
        return node

    def _candidate_features(self) -> Sequence[str]:
        if self.feature_subset is None or self.feature_subset >= len(
            self._feature_names
        ):
            return self._feature_names
        rng = self.rng or np.random.default_rng(0)
        picked = rng.choice(
            len(self._feature_names), size=self.feature_subset, replace=False
        )
        return [self._feature_names[i] for i in picked]

    def _choose_split(
        self,
        indices: np.ndarray,
        parent_counts: np.ndarray,
        orders: Dict[str, np.ndarray],
    ) -> Optional[_Split]:
        parent_entropy = _entropy(parent_counts)
        total_weight = parent_counts.sum()
        best: Optional[_Split] = None
        for feature in self._candidate_features():
            if self._types[feature] == "numeric":
                split = self._numeric_split(
                    feature, orders[feature], parent_entropy, total_weight
                )
            else:
                split = self._nominal_split(
                    feature, indices, parent_entropy, total_weight
                )
            if split is not None and (
                best is None or split.gain_ratio > best.gain_ratio
            ):
                best = split
        return best

    def _numeric_split(
        self,
        feature: str,
        sorted_indices: np.ndarray,
        parent_entropy: float,
        total_weight: float,
    ) -> Optional[_Split]:
        # ``sorted_indices`` is the node's presorted order for this
        # feature (maintained top-down from the dataset's cached global
        # sort) — no per-node argsort.
        sorted_values = self._columns[feature][sorted_indices]
        labels = self._labels[sorted_indices]
        weights = self._weights[sorted_indices]
        n = len(sorted_values)
        # Cumulative weighted class counts for O(1) entropy per cut.
        one_hot = np.zeros((n, self._n_classes))
        one_hot[np.arange(n), labels] = weights
        cum = one_hot.cumsum(axis=0)
        total_counts = cum[-1]
        # Candidate cut positions: where the value actually changes.
        change = np.nonzero(np.diff(sorted_values) > _EPS)[0]
        best_gain_ratio = -1.0
        best_pos = None
        for pos in change:
            left_counts = cum[pos]
            left_w = left_counts.sum()
            right_counts = total_counts - left_counts
            right_w = right_counts.sum()
            if left_w < self.min_leaf or right_w < self.min_leaf:
                continue
            children_entropy = (
                left_w * _entropy(left_counts) + right_w * _entropy(right_counts)
            ) / total_weight
            gain = parent_entropy - children_entropy
            if gain <= _EPS:
                continue
            p_left = left_w / total_weight
            split_info = -(
                p_left * math.log2(p_left)
                + (1 - p_left) * math.log2(1 - p_left)
            )
            gain_ratio = gain / max(split_info, _EPS)
            if gain_ratio > best_gain_ratio:
                best_gain_ratio = gain_ratio
                best_pos = pos
        if best_pos is None:
            return None
        threshold = float(
            (sorted_values[best_pos] + sorted_values[best_pos + 1]) / 2.0
        )
        left_idx = sorted_indices[: best_pos + 1]
        right_idx = sorted_indices[best_pos + 1 :]
        return _Split(
            feature,
            threshold,
            [("<=", left_idx), (">", right_idx)],
            best_gain_ratio,
        )

    def _nominal_split(
        self,
        feature: str,
        indices: np.ndarray,
        parent_entropy: float,
        total_weight: float,
    ) -> Optional[_Split]:
        values = self._columns[feature][indices]
        partitions: Dict[Any, List[int]] = {}
        for i, value in zip(indices, values):
            partitions.setdefault(value, []).append(int(i))
        if len(partitions) < 2:
            return None
        children_entropy = 0.0
        split_info = 0.0
        parts = []
        for value, part in partitions.items():
            part_idx = np.asarray(part)
            counts = self._class_counts(part_idx)
            weight = counts.sum()
            if weight < self.min_leaf:
                return None  # C4.5 requires all branches to be viable
            children_entropy += weight * _entropy(counts) / total_weight
            p = weight / total_weight
            split_info -= p * math.log2(p)
            parts.append((value, part_idx))
        gain = parent_entropy - children_entropy
        if gain <= _EPS:
            return None
        return _Split(feature, None, parts, gain / max(split_info, _EPS))

    # -- pruning (subtree replacement, pessimistic error) ----------------------

    def _prune_node(self, node: _Node) -> float:
        """Returns the estimated error count for the (possibly pruned)
        subtree rooted at ``node``."""
        n = float(node.class_counts.sum())
        leaf_errors = n - float(node.class_counts.max()) if n > 0 else 0.0
        leaf_estimate = n * _upper_error_bound(
            n, leaf_errors, self._z, self.confidence
        )
        if node.is_leaf:
            return leaf_estimate
        subtree_estimate = sum(
            self._prune_node(child) for child in node._child_list()
        )
        if leaf_estimate <= subtree_estimate + 0.1:
            node.is_leaf = True
            node.feature = None
            node.threshold = None
            node.left = node.right = None
            node.children = None
            return leaf_estimate
        return subtree_estimate

    # -- prediction ----------------------------------------------------------

    def predict_one(self, row: Dict[str, Any]) -> int:
        compiled = self._compiled
        if compiled is None:
            raise RuntimeError("classifier is not fitted")
        return compiled.predict_encoded(compiled.encode(row))

    def predict(self, rows: Sequence[Dict[str, Any]]) -> np.ndarray:
        compiled = self._compiled
        if compiled is None:
            raise RuntimeError("classifier is not fitted")
        return compiled.predict(rows)

    def predict_one_recursive(self, row: Dict[str, Any]) -> int:
        """The historical pointer-chasing walk over ``_Node`` objects.

        Kept as the reference implementation: the parity tests assert
        the compiled fast path returns exactly what this returns, and
        the ``ml_predict`` microbench reports its speedup over it.
        """
        node = self._root
        if node is None:
            raise RuntimeError("classifier is not fitted")
        while not node.is_leaf:
            value = row.get(node.feature)
            if node.threshold is not None:
                try:
                    numeric = float(value)
                except (TypeError, ValueError):
                    break  # unseen/missing: fall back to this node's majority
                node = node.left if numeric <= node.threshold else node.right
            else:
                child = node.children.get(value)
                if child is None:
                    break
                node = child
        return node.prediction

    def predict_recursive(self, rows: Sequence[Dict[str, Any]]) -> np.ndarray:
        return np.asarray([self.predict_one_recursive(row) for row in rows])

    # -- introspection -------------------------------------------------------

    @property
    def compiled(self) -> Optional[CompiledTree]:
        return self._compiled

    @property
    def n_nodes(self) -> int:
        if self._compiled is not None:
            return self._compiled.n_nodes
        if self._root is None:
            return 0
        return len(self._root.subtree_nodes())

    @property
    def depth(self) -> int:
        if self._compiled is not None:
            return self._compiled.depth

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(child) for child in node._child_list())

        if self._root is None:
            return 0
        return walk(self._root)


@lru_cache(maxsize=64)
def _cached_normal_quantile(p: float) -> float:
    """Memoized inverse normal CDF — one value per confidence level,
    shared across every classifier the trainer ever constructs."""
    return _normal_quantile(p)


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Implemented locally so the tree has no scipy dependency on the
    prediction path.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    a = [
        -3.969683028665376e01,
        2.209460984245205e02,
        -2.759285104469687e02,
        1.383577518672690e02,
        -3.066479806614716e01,
        2.506628277459239e00,
    ]
    b = [
        -5.447609879822406e01,
        1.615858368580409e02,
        -1.556989798598866e02,
        6.680131188771972e01,
        -1.328068155288572e01,
    ]
    c = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e00,
        -2.549732539343734e00,
        4.374664141464968e00,
        2.938163982698783e00,
    ]
    d = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e00,
        3.754408661907416e00,
    ]
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p <= 1 - p_low:
        q = p - 0.5
        r = q * q
        return (
            (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5])
            * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1)
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(
        ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
    ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
