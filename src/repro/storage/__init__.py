"""Remote shared data store (RSDS) substrate.

A Swift/S3-like object store running on the simulation kernel: buckets,
objects with metadata and version numbers, registrable read/write
webhooks (the interposition point OFC's consistency protocol relies on,
§6.2 of the paper), and configurable latency profiles so the same store
class can stand in for OpenStack Swift, AWS S3 or an ElastiCache-Redis
style in-memory object cache (IMOC).
"""

from repro.storage.errors import (
    BucketExists,
    NoSuchBucket,
    NoSuchObject,
    StorageError,
)
from repro.storage.latency_profiles import (
    LatencyProfile,
    REDIS_PROFILE,
    S3_PROFILE,
    SWIFT_PROFILE,
)
from repro.storage.meta import ObjectMeta, StoredObject
from repro.storage.object_store import ObjectStore, StoreStats

__all__ = [
    "BucketExists",
    "LatencyProfile",
    "NoSuchBucket",
    "NoSuchObject",
    "ObjectMeta",
    "ObjectStore",
    "REDIS_PROFILE",
    "S3_PROFILE",
    "SWIFT_PROFILE",
    "StorageError",
    "StoreStats",
    "StoredObject",
]
