"""The object store itself.

All blocking operations are generator methods, used from simulation
processes as ``result = yield from store.get(...)``.

The store supports **webhooks** (§6.2): callbacks registered by OFC and
triggered on *external* reads and writes.  A read hook may block the GET
until the latest payload has been persisted; a write hook lets OFC
invalidate cached copies before an external overwrite.  Operations
issued by OFC itself (the rclib proxy and persistor functions) pass
``internal=True`` and bypass the hooks, mirroring how Swift middleware
distinguishes the cache's own traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.sim.kernel import Kernel
from repro.sim.resources import Resource
from repro.storage.errors import (
    BucketExists,
    NoSuchBucket,
    NoSuchObject,
    StoreUnavailable,
)
from repro.storage.latency_profiles import LatencyProfile, SWIFT_PROFILE
from repro.storage.meta import ObjectMeta, StoredObject

#: A webhook is a generator function: ``hook(op, meta) -> Generator``.
Webhook = Callable[[str, ObjectMeta], Generator]


@dataclass
class StoreStats:
    """Operation counters for one store instance."""

    gets: int = 0
    puts: int = 0
    deletes: int = 0
    stats_ops: int = 0
    lists: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    shadow_puts: int = 0
    hook_blocks: int = 0
    unavailable_errors: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class _Bucket:
    name: str
    objects: Dict[str, StoredObject] = field(default_factory=dict)


class ObjectStore:
    """A bucket/object store with simulated latencies and webhooks."""

    def __init__(
        self,
        kernel: Kernel,
        profile: LatencyProfile = SWIFT_PROFILE,
        rng=None,
        concurrency: int = 64,
    ):
        self.kernel = kernel
        self.profile = profile
        self.rng = rng
        self.stats = StoreStats()
        self._buckets: Dict[str, _Bucket] = {}
        self._slots = Resource(kernel, concurrency)
        self._read_hooks: List[Webhook] = []
        self._write_hooks: List[Webhook] = []
        #: Injected fault state (:class:`repro.sim.faults.FaultState`);
        #: ``None`` keeps the data plane on the zero-cost path.
        self.faults = None

    # -- webhook registration ---------------------------------------------

    def register_read_hook(self, hook: Webhook) -> None:
        self._read_hooks.append(hook)

    def register_write_hook(self, hook: Webhook) -> None:
        self._write_hooks.append(hook)

    # -- bucket management (instantaneous control-plane helpers) -----------

    def create_bucket(self, name: str) -> None:
        if name in self._buckets:
            raise BucketExists(name)
        self._buckets[name] = _Bucket(name)

    def ensure_bucket(self, name: str) -> None:
        self._buckets.setdefault(name, _Bucket(name))

    def has_bucket(self, name: str) -> bool:
        return name in self._buckets

    def _bucket(self, name: str) -> _Bucket:
        try:
            return self._buckets[name]
        except KeyError:
            raise NoSuchBucket(name) from None

    def _object(self, bucket: str, name: str) -> StoredObject:
        objects = self._bucket(bucket).objects
        try:
            return objects[name]
        except KeyError:
            raise NoSuchObject(f"{bucket}/{name}") from None

    # -- data plane ---------------------------------------------------------

    def _delay(self, model, nbytes: int = 0):
        duration = model.sample(self.rng, nbytes)
        faults = self.faults
        if faults is not None:
            duration *= faults.rsds_latency_scale
        return self.kernel.timeout(duration)

    def _check_available(self, op: str) -> None:
        """Raise :class:`StoreUnavailable` during an injected outage."""
        faults = self.faults
        if faults is not None and faults.rsds_down:
            self.stats.unavailable_errors += 1
            raise StoreUnavailable(f"rsds outage: {op}")

    def get(
        self, bucket: str, name: str, internal: bool = False
    ) -> Generator[Any, Any, StoredObject]:
        """GET an object; returns a :class:`StoredObject` copy."""
        span = self.kernel.tracer.start("rsds.get", internal=internal)
        yield self._slots.acquire()
        try:
            self._check_available("get")
            obj = self._object(bucket, name)  # fail before paying latency
            if not internal:
                for hook in self._read_hooks:
                    self.stats.hook_blocks += 1
                    yield from hook("read", obj.meta)
                obj = self._object(bucket, name)  # hook may have updated it
            yield self._delay(self.profile.read, obj.meta.size)
            self.stats.gets += 1
            self.stats.bytes_read += obj.meta.size
            return StoredObject(meta=obj.meta.copy(), payload=obj.payload)
        finally:
            self._slots.release()
            span.finish()

    def put(
        self,
        bucket: str,
        name: str,
        payload: Any,
        size: int,
        content_type: str = "application/octet-stream",
        user_meta: Optional[Dict[str, Any]] = None,
        shadow: bool = False,
        internal: bool = False,
    ) -> Generator[Any, Any, ObjectMeta]:
        """PUT (create or overwrite) an object.

        With ``shadow=True`` only a zero-payload placeholder is written:
        the object's ``version`` advances but ``rsds_version`` does not,
        and the previous payload (if any) is dropped.  The transfer cost
        is that of an empty body.
        """
        span = self.kernel.tracer.start(
            "rsds.put", internal=internal, shadow=shadow
        )
        yield self._slots.acquire()
        try:
            self._check_available("put")
            bkt = self._bucket(bucket)
            existing = bkt.objects.get(name)
            if not internal and existing is not None:
                for hook in self._write_hooks:
                    self.stats.hook_blocks += 1
                    yield from hook("write", existing.meta)
            if shadow:
                yield self._delay(self.profile.shadow_write)
            else:
                yield self._delay(self.profile.write, size)
            now = self.kernel.now
            if existing is None:
                meta = ObjectMeta(
                    bucket=bucket,
                    name=name,
                    created_at=now,
                )
            else:
                meta = existing.meta
            meta.size = size
            meta.content_type = content_type
            meta.updated_at = now
            meta.version += 1
            if user_meta:
                meta.user_meta.update(user_meta)
            if shadow:
                stored_payload = None
                self.stats.shadow_puts += 1
            else:
                stored_payload = payload
                meta.rsds_version = meta.version
                self.stats.bytes_written += size
            bkt.objects[name] = StoredObject(meta=meta, payload=stored_payload)
            self.stats.puts += 1
            return meta.copy()
        finally:
            self._slots.release()
            span.finish()

    def persist_payload(
        self, bucket: str, name: str, payload: Any, version: int
    ) -> Generator[Any, Any, bool]:
        """Fill in the payload of a shadow object (persistor back-end).

        Returns False (and writes nothing) when ``version`` is older than
        the object's current version, which is how successive updates are
        kept in order (§6.2).
        """
        span = self.kernel.tracer.start("rsds.persist")
        yield self._slots.acquire()
        try:
            self._check_available("persist")
            obj = self._object(bucket, name)
            if version < obj.meta.version:
                return False
            yield self._delay(self.profile.write, obj.meta.size)
            obj.payload = payload
            obj.meta.rsds_version = version
            self.stats.puts += 1
            self.stats.bytes_written += obj.meta.size
            return True
        finally:
            self._slots.release()
            span.finish()

    def delete(
        self, bucket: str, name: str, internal: bool = False
    ) -> Generator[Any, Any, None]:
        span = self.kernel.tracer.start("rsds.delete", internal=internal)
        yield self._slots.acquire()
        try:
            self._check_available("delete")
            obj = self._object(bucket, name)
            if not internal:
                for hook in self._write_hooks:
                    self.stats.hook_blocks += 1
                    yield from hook("delete", obj.meta)
            yield self._delay(self.profile.delete)
            self._bucket(bucket).objects.pop(name, None)
            self.stats.deletes += 1
        finally:
            self._slots.release()
            span.finish()

    def stat(
        self, bucket: str, name: str
    ) -> Generator[Any, Any, ObjectMeta]:
        """HEAD: metadata only, no payload transfer, no hooks."""
        yield self._slots.acquire()
        try:
            obj = self._object(bucket, name)
            yield self._delay(self.profile.stat)
            self.stats.stats_ops += 1
            return obj.meta.copy()
        finally:
            self._slots.release()

    def list_objects(self, bucket: str) -> Generator[Any, Any, List[str]]:
        yield self._slots.acquire()
        try:
            names = sorted(self._bucket(bucket).objects)
            yield self._delay(self.profile.list)
            self.stats.lists += 1
            return names
        finally:
            self._slots.release()

    # -- synchronous inspection helpers (control plane, for OFC & tests) ----

    def peek_meta(self, bucket: str, name: str) -> ObjectMeta:
        """Read metadata without simulated latency (OFC-internal path)."""
        return self._object(bucket, name).meta

    def contains(self, bucket: str, name: str) -> bool:
        bkt = self._buckets.get(bucket)
        return bkt is not None and name in bkt.objects

    def object_count(self, bucket: Optional[str] = None) -> int:
        if bucket is not None:
            return len(self._bucket(bucket).objects)
        return sum(len(b.objects) for b in self._buckets.values())
