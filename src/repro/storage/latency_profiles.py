"""Latency profiles for the storage backends the paper compares.

Calibration targets, taken from the paper's own measurements:

* **Swift** (the RSDS used by OFC's prototype): for ``wand_edge`` with a
  16 kB input, OFC saves ~42 ms on Extract and ~108 ms on Load versus
  OWK-Swift (§7.2.1), which pins the per-GET overhead near 40 ms and the
  per-PUT overhead near 100 ms for small objects.
* **S3** (motivation experiment, Figure 3): comparable to Swift; E&L is
  up to 97 % of a small image-processing invocation and ~52 % of a 30 MB
  MapReduce run, which additionally pins the large-transfer bandwidth.
* **Redis** (the IMOC baseline): sub-millisecond operations over the
  data-center network; E&L "becomes negligible" (§2.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.latency import GB, LatencyModel, MB


@dataclass(frozen=True)
class LatencyProfile:
    """Per-operation latency models of one storage backend.

    ``shadow_write`` is the cost of a zero-payload placeholder PUT: it
    skips the data path entirely, so it is much cheaper than a normal
    write (the paper measures ~11 ms on Swift, §7.2.1).
    """

    name: str
    read: LatencyModel
    write: LatencyModel
    delete: LatencyModel
    stat: LatencyModel
    list: LatencyModel
    shadow_write: LatencyModel


SWIFT_PROFILE = LatencyProfile(
    name="swift",
    read=LatencyModel(base_s=40e-3, bandwidth_bps=220 * MB, jitter=0.06),
    write=LatencyModel(base_s=108e-3, bandwidth_bps=180 * MB, jitter=0.06),
    delete=LatencyModel(base_s=25e-3, jitter=0.06),
    stat=LatencyModel(base_s=12e-3, jitter=0.06),
    list=LatencyModel(base_s=20e-3, jitter=0.06),
    shadow_write=LatencyModel(base_s=11e-3, jitter=0.05),
)

S3_PROFILE = LatencyProfile(
    name="s3",
    read=LatencyModel(base_s=42e-3, bandwidth_bps=180 * MB, jitter=0.08),
    write=LatencyModel(base_s=85e-3, bandwidth_bps=150 * MB, jitter=0.08),
    delete=LatencyModel(base_s=30e-3, jitter=0.08),
    stat=LatencyModel(base_s=15e-3, jitter=0.08),
    list=LatencyModel(base_s=25e-3, jitter=0.08),
    shadow_write=LatencyModel(base_s=12e-3, jitter=0.05),
)

REDIS_PROFILE = LatencyProfile(
    name="redis",
    read=LatencyModel(base_s=0.35e-3, bandwidth_bps=1.1 * GB, jitter=0.05),
    write=LatencyModel(base_s=0.45e-3, bandwidth_bps=1.0 * GB, jitter=0.05),
    delete=LatencyModel(base_s=0.3e-3, jitter=0.05),
    stat=LatencyModel(base_s=0.25e-3, jitter=0.05),
    list=LatencyModel(base_s=0.5e-3, jitter=0.05),
    shadow_write=LatencyModel(base_s=0.4e-3, jitter=0.05),
)
