"""Exception types for the object store."""


class StorageError(Exception):
    """Base class for object-store failures."""


class NoSuchBucket(StorageError):
    """The referenced bucket does not exist."""


class NoSuchObject(StorageError):
    """The referenced object does not exist in the bucket."""


class BucketExists(StorageError):
    """Attempted to create a bucket that already exists."""
