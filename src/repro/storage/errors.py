"""Exception types for the object store."""


class StorageError(Exception):
    """Base class for object-store failures."""


class NoSuchBucket(StorageError):
    """The referenced bucket does not exist."""


class NoSuchObject(StorageError):
    """The referenced object does not exist in the bucket."""


class BucketExists(StorageError):
    """Attempted to create a bucket that already exists."""


class StoreUnavailable(StorageError):
    """Transient failure: the store is down or timing out.

    Raised while an injected RSDS outage episode is active.  Callers on
    the write-back path retry with backoff (the persistor); callers on
    the synchronous path degrade (rclib buffers in the cache and
    persists later) or surface the failure to the invocation.
    """
