"""Object metadata and stored-object records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class ObjectMeta:
    """Metadata of one stored object.

    Two version numbers implement the paper's shadow-object protocol
    (§6.2): ``version`` is the latest logical version of the object,
    ``rsds_version`` is the version whose payload the RSDS actually
    holds.  A discrepancy means the current payload only exists in the
    cache and the RSDS entry is a *shadow*.
    """

    bucket: str
    name: str
    size: int = 0
    content_type: str = "application/octet-stream"
    created_at: float = 0.0
    updated_at: float = 0.0
    version: int = 0
    rsds_version: int = 0
    #: Free-form tags; OFC stores pre-extracted ML features here (§5.1.2).
    user_meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.bucket}/{self.name}"

    @property
    def is_shadow(self) -> bool:
        """True when the RSDS does not hold the latest payload."""
        return self.version > self.rsds_version

    def copy(self) -> "ObjectMeta":
        return ObjectMeta(
            bucket=self.bucket,
            name=self.name,
            size=self.size,
            content_type=self.content_type,
            created_at=self.created_at,
            updated_at=self.updated_at,
            version=self.version,
            rsds_version=self.rsds_version,
            user_meta=dict(self.user_meta),
        )


@dataclass
class StoredObject:
    """An object as returned by a GET: metadata plus payload.

    Payloads are opaque Python values (the workload layer stores media
    descriptors); their simulated byte size lives in ``meta.size``.
    ``payload`` is ``None`` for shadow objects whose data has not been
    persisted yet.
    """

    meta: ObjectMeta
    payload: Optional[Any] = None

    @property
    def size(self) -> int:
        return self.meta.size
