"""ModelTrainer: per-function model lifecycle (§5.3).

The trainer listens to invocation completions, curates a small but
valuable training set per function, checks the maturation criterion,
and (re)trains two J48 models per function:

* the **memory model** — a classifier over memory intervals;
* the **cache-benefit model** — a binary classifier predicting whether
  Extract+Load would dominate the invocation without a cache (§5.2).

Training-set curation after maturity (§5.3.3): only underpredictions
and extreme overpredictions (k - k* > 6 intervals) are added, and
underprediction samples carry a higher weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.config import OFCConfig
from repro.faas.records import InvocationRecord
from repro.ml.dataset import Dataset
from repro.ml.intervals import MemoryIntervals
from repro.ml.tree import J48Classifier
from repro.storage.latency_profiles import LatencyProfile, SWIFT_PROFILE


@dataclass
class TrainingSample:
    features: Dict[str, Any]
    memory_label: int
    cache_label: int
    weight: float = 1.0


@dataclass
class FunctionModels:
    """All ML state OFC keeps for one function."""

    function_key: str
    memory_model: Optional[J48Classifier] = None
    benefit_model: Optional[J48Classifier] = None
    mature: bool = False
    #: Invocations observed when the model matured (§7.1.3).
    matured_after: Optional[int] = None
    samples: List[TrainingSample] = field(default_factory=list)
    invocations_seen: int = 0
    retrains: int = 0
    #: Retrains skipped because curation added nothing since the last
    #: fit (a J48 refit on an identical sample set is a no-op).
    retrains_skipped: int = 0
    #: Fingerprint of the curated sample set: bumped on every append.
    #: Curation is append-only, so a version match means the set is
    #: unchanged since it was last seen.
    samples_version: int = 0
    #: ``samples_version`` the current models were fitted on.
    fitted_version: int = -1

    def __post_init__(self) -> None:
        self._memory_cache: Optional[tuple] = None
        self._benefit_cache: Optional[tuple] = None

    def __getstate__(self):
        # Dataset caches are derived state; keep serialized models
        # (warm-model cache entries) lean.
        state = self.__dict__.copy()
        state["_memory_cache"] = None
        state["_benefit_cache"] = None
        return state

    def add_sample(self, sample: TrainingSample) -> None:
        self.samples.append(sample)
        self.samples_version += 1

    def memory_dataset(self) -> Dataset:
        cached = self._memory_cache
        if cached is not None and cached[0] == self.samples_version:
            return cached[1]
        dataset = Dataset(
            [s.features for s in self.samples],
            [s.memory_label for s in self.samples],
            weights=[s.weight for s in self.samples],
        )
        if cached is not None:
            # Append-only curation: merge the previous dataset's
            # per-feature sort orders instead of re-sorting from scratch.
            dataset.adopt_sort_orders(cached[1])
        self._memory_cache = (self.samples_version, dataset)
        return dataset

    def benefit_dataset(self) -> Dataset:
        cached = self._benefit_cache
        if cached is not None and cached[0] == self.samples_version:
            return cached[1]
        dataset = Dataset(
            [s.features for s in self.samples],
            [s.cache_label for s in self.samples],
        )
        memory = self._memory_cache
        if memory is not None and memory[0] == self.samples_version:
            # Same rows as the memory dataset — share its sort orders.
            dataset.adopt_sort_orders(memory[1])
        elif cached is not None:
            dataset.adopt_sort_orders(cached[1])
        self._benefit_cache = (self.samples_version, dataset)
        return dataset


class ModelTrainer:
    """Accumulates telemetry and maintains the per-function models."""

    def __init__(
        self,
        config: Optional[OFCConfig] = None,
        registry=None,
        rsds_profile: LatencyProfile = SWIFT_PROFILE,
    ):
        self.config = config or OFCConfig()
        self.registry = registry
        self.rsds_profile = rsds_profile
        self.intervals = MemoryIntervals(
            interval_mb=self.config.interval_mb,
            max_mb=self.config.max_memory_mb,
        )
        self._models: Dict[str, FunctionModels] = {}
        # Aggregate prediction quality (Table 2 lines 7-8).
        self.good_predictions = 0
        self.bad_predictions = 0

    def models_for(self, function_key: str) -> FunctionModels:
        if function_key not in self._models:
            self._models[function_key] = FunctionModels(function_key)
        return self._models[function_key]

    # -- labels ------------------------------------------------------------

    def _cache_benefit_label(self, record: InvocationRecord) -> int:
        """Would E+L dominate this invocation *without* a cache?

        Uses the known RSDS latency profile and the observed transfer
        volumes, so the label is cache-independent even when the
        invocation itself was served from the cache.
        """
        est_extract = self.rsds_profile.read.mean(record.bytes_in)
        est_load = self.rsds_profile.write.mean(record.bytes_out)
        transform = record.phases.transform
        total = est_extract + est_load + transform
        if total <= 0.0:
            return 0
        fraction = (est_extract + est_load) / total
        return int(fraction > self.config.cache_benefit_threshold)

    # -- ingestion -----------------------------------------------------------

    def on_completion(self, record: InvocationRecord) -> None:
        """Platform completion listener: learn from one invocation."""
        if record.status != "ok" or not record.features:
            return
        models = self.models_for(record.request.key)
        models.invocations_seen += 1
        true_label = self.intervals.label(record.peak_memory_mb)
        sample = TrainingSample(
            features=dict(record.features),
            memory_label=true_label,
            cache_label=self._cache_benefit_label(record),
        )
        retrain_now = False
        if models.mature and record.predicted_interval is not None:
            predicted = record.predicted_interval
            if predicted >= true_label:
                self.good_predictions += 1
            else:
                self.bad_predictions += 1
            under = predicted < true_label
            extreme_over = (
                predicted - true_label > self.config.extreme_over_intervals
            )
            if under:
                sample.weight = self.config.underprediction_weight
                models.add_sample(sample)
                # §5.3.1: memory exhaustion corrections happen quickly.
                if record.oom_kills > 0:
                    retrain_now = True
            elif extreme_over:
                models.add_sample(sample)
            # Exact/near predictions are not added (the set stays small).
        else:
            models.add_sample(sample)
        if retrain_now or models.invocations_seen % self.config.retrain_every == 0:
            self.retrain(models)

    # -- training -----------------------------------------------------------

    def retrain(self, models: FunctionModels, force: bool = False) -> None:
        if len(models.samples) < 2:
            return
        if (
            not force
            and models.memory_model is not None
            and models.fitted_version == models.samples_version
        ):
            # Curation added nothing since the last fit; J48 is
            # deterministic, so refitting would rebuild the exact same
            # trees.  (Pre-maturity this never triggers: every
            # completion appends a sample.)
            models.retrains_skipped += 1
            return
        dataset = models.memory_dataset()
        if dataset.n_classes < 1:
            return
        models.memory_model = J48Classifier().fit(dataset)
        benefit = models.benefit_dataset()
        models.benefit_model = J48Classifier().fit(benefit)
        models.retrains += 1
        models.fitted_version = models.samples_version
        self._publish_models(models)
        if (
            not models.mature
            and models.invocations_seen >= self.config.min_history_for_maturity
        ):
            if self._check_maturity(models):
                models.mature = True
                models.matured_after = models.invocations_seen

    def _publish_models(self, models: FunctionModels) -> None:
        if self.registry is not None and models.function_key in self.registry:
            self.registry.store_model(
                models.function_key, "memory", models.memory_model
            )
            self.registry.store_model(
                models.function_key, "benefit", models.benefit_model
            )

    def adopt_models(self, models: FunctionModels) -> None:
        """Install externally trained per-function state.

        Used by the shared warm-model cache: a cache hit injects the
        deserialized :class:`FunctionModels` exactly as the cold
        pretraining path would have left it, then republishes the
        fitted models to the function registry.
        """
        self._models[models.function_key] = models
        if models.memory_model is not None:
            self._publish_models(models)

    def _check_maturity(self, models: FunctionModels) -> bool:
        """The §5.3.1 maturation criterion.

        Evaluated against the accumulated invocation history with the
        freshly trained model (the check the online system can afford);
        a pruned J48 on an unpredictable function stays close to the
        majority class and keeps failing the 90 % EO bar.
        """
        dataset = models.memory_dataset()
        if len(dataset) < 6 or models.memory_model is None:
            return False
        eo_hits = 0
        under_total = 0
        under_near = 0
        total = 0
        predictions = models.memory_model.predict(dataset.rows)
        for true_label, predicted in zip(dataset.labels, predictions):
            total += 1
            if predicted >= true_label:
                eo_hits += 1
            else:
                under_total += 1
                if predicted == true_label - 1:
                    under_near += 1
        if total == 0:
            return False
        if eo_hits / total < self.config.maturity_eo_threshold:
            return False
        if under_total == 0:
            return True
        return under_near / under_total >= self.config.maturity_near_threshold

    # -- aggregate stats -------------------------------------------------------

    def all_models(self) -> List[FunctionModels]:
        return list(self._models.values())

    def maturity_report(self) -> Dict[str, Optional[int]]:
        """function key -> invocations needed to mature (None if not yet)."""
        return {
            key: models.matured_after for key, models in self._models.items()
        }
