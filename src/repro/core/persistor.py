"""Persistor: asynchronous write-back of cached payloads (§6.2).

Each dirty write that rclib buffers in the cache schedules a persistor
— a helper function injected into the FaaS platform — that pushes the
payload to the RSDS and updates the object's version metadata.  Version
numbers keep successive updates ordered; the webhook path can *boost* a
pending persist by awaiting its completion event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.kvcache.errors import NoSuchKey
from repro.sim.kernel import Event, Kernel
from repro.sim.latency import PLATFORM_OVERHEAD
from repro.storage.errors import NoSuchObject, StoreUnavailable
from repro.storage.object_store import ObjectStore

#: Retry policy for transient RSDS failures: capped exponential backoff.
RETRY_BASE_DELAY = 0.1
RETRY_MAX_DELAY = 5.0
RETRY_MAX_ATTEMPTS = 8
#: With requeueing on, how many exhausted retry cycles a persistor may
#: re-enter before giving up terminally (backstop against an RSDS that
#: never comes back; ~64 cycles is several sim-minutes of outage).
REQUEUE_MAX_CYCLES = 64


@dataclass
class PersistorStats:
    scheduled: int = 0
    completed: int = 0
    superseded: int = 0
    bytes_persisted: int = 0
    boosts: int = 0
    retries: int = 0
    gave_up: int = 0
    requeues: int = 0


class PersistorService:
    """Schedules and tracks persistor helper functions."""

    def __init__(
        self,
        kernel: Kernel,
        store: ObjectStore,
        cluster,  # CacheCluster or any repro.cache CacheBackend
        rng=None,
        on_persisted: Optional[Callable[[str, bool, int], None]] = None,
        requeue: bool = True,
    ):
        self.kernel = kernel
        self.store = store
        self.cluster = cluster
        self.rng = rng
        #: After a full retry cycle fails, park and re-enter instead of
        #: giving up — the completion event stays pending so boosts keep
        #: blocking until the payload actually lands (chaos-harness
        #: finding: the give-up path let acked write-back data go stale
        #: for readers, and lose entirely if the cache copy then died).
        self.requeue = requeue
        #: Callback ``(key, final, version)`` after a successful persist
        #: (the CacheAgent discards final outputs here, §6.3).
        self.on_persisted = on_persisted
        self._pending: Dict[str, Event] = {}
        self.stats = PersistorStats()

    def pending_for(self, key: str) -> Optional[Event]:
        return self._pending.get(key)

    def schedule(
        self,
        bucket: str,
        name: str,
        payload: Any,
        version: int,
        final: bool,
        size: int = 0,
        create_if_missing: bool = False,
    ) -> Event:
        """Inject a persistor function for one (object, version).

        ``create_if_missing`` handles relaxed-consistency write-back
        (§6.2): no shadow exists in the RSDS, so the persistor performs
        a full PUT instead of filling a placeholder.
        """
        key = f"{bucket}/{name}"
        done = self.kernel.event()
        self._pending[key] = done
        self.stats.scheduled += 1

        def persistor():
            # The persistor runs as a FaaS helper function: it pays the
            # platform dispatch overhead before touching the RSDS.
            span = self.kernel.tracer.start("persistor.flush", final=final)
            yield PLATFORM_OVERHEAD.sample(self.rng)
            ok = False
            gave_up = False
            cycles = 0
            while True:
                backoff = RETRY_BASE_DELAY
                gave_up = False
                for attempt in range(RETRY_MAX_ATTEMPTS):
                    try:
                        ok = yield from self._flush_once(
                            bucket, name, payload, version, size,
                            create_if_missing,
                        )
                        break
                    except StoreUnavailable:
                        # Transient RSDS failure: back off and retry.
                        # The healthy path takes the break on attempt 0
                        # without any extra yields, so no-fault
                        # schedules are unchanged.
                        if attempt == RETRY_MAX_ATTEMPTS - 1:
                            gave_up = True
                            break
                        self.stats.retries += 1
                        yield backoff
                        backoff = min(backoff * 2.0, RETRY_MAX_DELAY)
                if not gave_up:
                    break
                if not self.requeue or cycles >= REQUEUE_MAX_CYCLES:
                    break
                # Requeue: park through the outage and start a fresh
                # retry cycle.  Crucially the ``done`` event stays
                # pending, so boost() waiters (read webhooks, bypass
                # reads) keep blocking instead of racing a stale RSDS
                # copy.
                cycles += 1
                self.stats.requeues += 1
                yield RETRY_MAX_DELAY
            if gave_up:
                # Leave the cached copy dirty: eviction / agent
                # write-back re-schedules the persist once the RSDS
                # recovers, so the update is never silently dropped.
                self.stats.gave_up += 1
                span.finish(status="unavailable")
                if self._pending.get(key) is done:
                    del self._pending[key]
                done.succeed(False)
                return
            if ok and self.store.contains(bucket, name):
                self.stats.completed += 1
                meta = self.store.peek_meta(bucket, name)
                self.stats.bytes_persisted += meta.size
                # Clear the dirty flag on the cached copy, if any.
                try:
                    self.cluster.set_flags(key, dirty=False)
                except NoSuchKey:
                    pass
                if self.on_persisted is not None:
                    self.on_persisted(key, final, version)
            else:
                self.stats.superseded += 1
            span.finish(status="completed" if ok else "superseded")
            if self._pending.get(key) is done:
                del self._pending[key]
            done.succeed(ok)

        self.kernel.process(persistor(), name=f"persistor-{key}")
        return done

    def _flush_once(self, bucket, name, payload, version, size, create_if_missing):
        """One persist attempt; True when the payload landed."""
        try:
            return (
                yield from self.store.persist_payload(
                    bucket, name, payload, version
                )
            )
        except NoSuchObject:
            if create_if_missing:
                self.store.ensure_bucket(bucket)
                yield from self.store.put(
                    bucket, name, payload, size, internal=True
                )
                return True
            # The object was deleted while this persist was queued
            # (e.g. a pipeline cleanup removed its intermediates).
            return False

    def boost(self, key: str):
        """Generator: wait until a pending persist of ``key`` completes.

        Used by the RSDS read webhook (§6.2) to hold an external GET
        until the latest payload is available.  No-op when nothing is
        pending.
        """
        event = self._pending.get(key)
        if event is not None:
            self.stats.boosts += 1
            yield event
