"""Feature extraction from invocation requests (§5.1.2).

Features come from two places:

* the input object's metadata, pre-extracted at object-creation time
  and stored alongside it in the RSDS (``ObjectMeta.user_meta``) so the
  invocation critical path never parses media;
* the function-specific scalar arguments, whose names are known to the
  platform but whose semantics are not — they are passed through
  opaquely (decision trees need no semantic information).

Arguments holding object identifiers (the ``input_ref`` and anything a
tenant annotated as a reference) are excluded: an object name is not a
predictive feature.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.faas.records import InvocationRequest
from repro.faas.registry import FunctionSpec
from repro.storage.object_store import ObjectStore

#: Request arguments that are never features (platform-internal).
_EXCLUDED_ARGS = {"refs", "_stage_index"}


def extract_features(
    request: InvocationRequest,
    spec: FunctionSpec,
    store: Optional[ObjectStore] = None,
) -> Dict[str, Any]:
    """Features for one invocation: object metadata + opaque arguments."""
    features: Dict[str, Any] = {}
    if store is not None and request.input_ref:
        bucket, _sep, name = request.input_ref.partition("/")
        if store.contains(bucket, name):
            meta = store.peek_meta(bucket, name)
            features["in_size"] = float(meta.size)
            for key, value in meta.user_meta.items():
                if isinstance(value, (int, float, bool, str)):
                    features[key] = value
    ref_args = set(spec.annotations.get("ref_args", ()))
    for name, value in request.args.items():
        if name in _EXCLUDED_ARGS or name in ref_args:
            continue
        if isinstance(value, (int, float)):
            features[f"arg_{name}"] = float(value)
        elif isinstance(value, (str, bool)):
            features[f"arg_{name}"] = value
        # Anything else (lists, objects) is opaque and skipped.
    return features
