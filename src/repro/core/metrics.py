"""OFC-internal metrics (Table 2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class OFCMetrics:
    """Counters matching the rows of Table 2, plus timing totals."""

    scale_ups: int = 0
    scale_up_time_s: float = 0.0
    scale_downs_plain: int = 0  # no eviction
    scale_downs_migration: int = 0
    scale_downs_eviction: int = 0
    scale_down_time_s: float = 0.0
    migrations: int = 0
    migrated_bytes: int = 0
    evictions_periodic: int = 0
    evictions_pressure: int = 0
    pipeline_cleanups: int = 0
    intermediate_objects_removed: int = 0
    #: Time series of (simulated time, total cache bytes) for Figure 10.
    cache_size_series: List[Tuple[float, int]] = field(default_factory=list)

    def record_cache_size(self, now: float, total_bytes: int) -> None:
        self.cache_size_series.append((now, total_bytes))

    def cache_size_summary(self) -> Dict[str, float]:
        """Figure 10's time series, reduced to programmatic headlines."""
        series = self.cache_size_series
        return {
            "cache_size_samples": len(series),
            "cache_size_final_bytes": series[-1][1] if series else 0,
            "cache_size_peak_bytes": (
                max(point[1] for point in series) if series else 0
            ),
        }

    def snapshot(self) -> Dict[str, float]:
        snap = {
            "scale_ups": self.scale_ups,
            "scale_up_time_s": round(self.scale_up_time_s, 6),
            "scale_downs_plain": self.scale_downs_plain,
            "scale_downs_migration": self.scale_downs_migration,
            "scale_downs_eviction": self.scale_downs_eviction,
            "scale_down_time_s": round(self.scale_down_time_s, 6),
            "migrations": self.migrations,
            "migrated_bytes": self.migrated_bytes,
            "evictions_periodic": self.evictions_periodic,
            "evictions_pressure": self.evictions_pressure,
            "pipeline_cleanups": self.pipeline_cleanups,
            "intermediate_objects_removed": self.intermediate_objects_removed,
        }
        snap.update(self.cache_size_summary())
        return snap
