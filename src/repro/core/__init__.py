"""OFC: the paper's primary contribution.

This package wires the FaaS platform (:mod:`repro.faas`), the RSDS
(:mod:`repro.storage`) and the distributed cache (:mod:`repro.kvcache`)
into the Opportunistic FaaS Cache:

* :class:`~repro.core.predictor.Predictor` — per-invocation memory and
  cache-benefit prediction on the critical path (§5.1, §5.2);
* :class:`~repro.core.trainer.ModelTrainer` — training-set curation,
  the maturation criterion, selective retraining (§5.3);
* :class:`~repro.core.monitor.Monitor` — cgroup polling, dynamic cap
  raising for long invocations, post-hoc peak reporting (§5.3.1);
* :class:`~repro.core.proxy.RcLibClient` — transparent interposition of
  function reads/writes, shadow objects and write-back (§6.2);
* :class:`~repro.core.persistor.PersistorService` — asynchronous
  persistence of cached payloads to the RSDS via helper functions;
* :class:`~repro.core.cache_agent.CacheAgent` — per-node vertical
  scaling, slack pool, admission/eviction policy (§6.3, §6.4);
* :class:`~repro.core.routing.OFCScheduler` — locality-aware request
  routing (§6.5);
* :class:`~repro.core.ofc.OFCPlatform` — the assembled system.
"""

from repro.core.cache_agent import CacheAgent
from repro.core.config import OFCConfig
from repro.core.features import extract_features
from repro.core.metrics import OFCMetrics
from repro.core.monitor import Monitor
from repro.core.ofc import OFCPlatform
from repro.core.persistor import PersistorService
from repro.core.predictor import Predictor
from repro.core.proxy import RcLibClient
from repro.core.routing import OFCScheduler
from repro.core.trainer import ModelTrainer

__all__ = [
    "CacheAgent",
    "extract_features",
    "ModelTrainer",
    "Monitor",
    "OFCConfig",
    "OFCMetrics",
    "OFCPlatform",
    "PersistorService",
    "Predictor",
    "RcLibClient",
    "OFCScheduler",
]
