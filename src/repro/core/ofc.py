"""OFCPlatform: the assembled system (Figure 4).

Wires every OFC component into a stock :class:`FaaSPlatform` through
its extension hooks, plus the RSDS webhooks that preserve strong
consistency for external (non-FaaS) clients.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, Generator, List, Optional

from repro.core.config import OFCConfig
from repro.core.metrics import OFCMetrics
from repro.core.monitor import Monitor
from repro.core.persistor import PersistorService
from repro.core.predictor import Predictor
from repro.core.proxy import RcLibClient, RcLibStats
from repro.core.routing import OFCScheduler
from repro.core.tenancy import make_quota_policy, TenantCacheAccounting
from repro.core.trainer import ModelTrainer
from repro.faas.pipeline import Pipeline, PipelineRecord
from repro.faas.platform import FaaSPlatform, PlatformConfig
from repro.faas.records import InvocationRecord, InvocationRequest
from repro.kvcache.errors import NoSuchKey
from repro.kvcache.objects import LOCAL_READ
from repro.obs.registry import MetricsRegistry
from repro.sim import fastpath
from repro.sim.kernel import Kernel
from repro.sim.latency import OFC_CONTROL_OVERHEAD, PLATFORM_OVERHEAD
from repro.sim.rng import RngRegistry
from repro.storage.errors import StoreUnavailable
from repro.storage.latency_profiles import LatencyProfile, SWIFT_PROFILE
from repro.storage.object_store import ObjectStore


class OFCPlatform:
    """The opportunistic FaaS cache, end to end.

    Typical use::

        ofc = OFCPlatform(seed=1)
        ofc.start()
        ofc.platform.register_function(spec)
        record = ofc.invoke(InvocationRequest(function="f", tenant="t"))
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        config: Optional[OFCConfig] = None,
        platform_config: Optional[PlatformConfig] = None,
        rsds_profile: LatencyProfile = SWIFT_PROFILE,
        seed: int = 0,
    ):
        self.kernel = kernel or Kernel()
        self.config = config or OFCConfig()
        self.rng = RngRegistry(seed)
        # Streams whose every draw is one fixed lognormal jitter config
        # are served batched (pre-drawn vectors, bit-identical — see
        # repro.sim.rng).  "rsds" (profile-dependent jitters) and
        # "platform" (shared with invokers: COLD_START's sigma differs)
        # mix parameters and must stay scalar.
        if fastpath.rng_batching_enabled():
            cache_rng = self.rng.batched_stream(
                "cache", "lognormal", mean=0.0, sigma=LOCAL_READ.jitter
            )
            predictor_rng = self.rng.batched_stream(
                "predictor",
                "lognormal",
                mean=0.0,
                sigma=OFC_CONTROL_OVERHEAD.jitter,
            )
            persistor_rng = self.rng.batched_stream(
                "persistor", "lognormal", mean=0.0, sigma=PLATFORM_OVERHEAD.jitter
            )
        else:
            cache_rng = self.rng.stream("cache")
            predictor_rng = self.rng.stream("predictor")
            persistor_rng = self.rng.stream("persistor")
        self.store = ObjectStore(
            self.kernel, profile=rsds_profile, rng=self.rng.stream("rsds")
        )
        platform_config = platform_config or PlatformConfig()
        self.platform = FaaSPlatform(
            self.kernel,
            self.store,
            platform_config,
            rng=self.rng.stream("platform"),
        )
        # The pluggable cache architecture (see repro.cache; imported
        # here, not at module scope — repro.cache itself pulls in
        # repro.core.config, and a module-level import would cycle).
        # The default "ofc" backend is a pass-through over CacheCluster —
        # bit-identical to the pre-seam build; "faast"/"infinicache"
        # swap the whole cache subsystem behind the same surface.
        from repro.cache import make_backend

        self.backend = make_backend(
            self.config.cache_backend,
            self.kernel,
            platform_config.node_ids,
            config=self.config,
            rng=cache_rng,
            max_object_size=self.config.max_cacheable_bytes,
        )
        #: The raw RAMCloud-style cluster (None on non-ofc backends;
        #: existing benches/tests reach it directly).
        self.cluster = getattr(self.backend, "cluster", None)
        self.metrics = OFCMetrics()
        self.rclib_stats = RcLibStats()
        # Keys with a cache-fill already in flight, shared across every
        # per-invocation RcLibClient: concurrent misses on one key must
        # schedule exactly one fill (see RcLibClient._populate_async).
        self._inflight_fills: set = set()
        # Per-tenant accounting and admission; with the default "none"
        # policy this is pure bookkeeping and the simulated schedule is
        # bit-identical to a build without it.
        self.tenancy = TenantCacheAccounting(
            policy=make_quota_policy(
                self.config.tenant_quota_policy,
                static_fraction=self.config.tenant_static_fraction,
                proportional_floor=self.config.tenant_proportional_floor,
            )
        )
        self.backend.on_object_admitted = self._on_object_admitted
        self.backend.on_object_removed = self._on_object_removed
        self.trainer = ModelTrainer(
            self.config, self.platform.registry, rsds_profile=rsds_profile
        )
        self.predictor = Predictor(
            self.kernel,
            self.trainer,
            store=self.store,
            config=self.config,
            rng=predictor_rng,
        )
        self.persistor = PersistorService(
            self.kernel,
            self.store,
            self.backend,
            rng=persistor_rng,
            on_persisted=self._on_persisted,
            requeue=self.config.persistor_requeue,
        )
        self.backend.attach(
            platform=self.platform,
            persistor=self.persistor,
            metrics=self.metrics,
            tenancy=self.tenancy,
        )
        #: Per-node harvest agents (empty on non-ofc backends).
        self.agents: Dict[str, Any] = getattr(self.backend, "agents", {})
        # Hook everything into the platform.
        self.platform.scheduler = OFCScheduler(self.backend)
        self.platform.sizing_policy = self.predictor.sizing_policy
        self.platform.data_client_factory = self._make_data_client
        self.platform.monitor_factory = self._make_monitor
        self.platform.completion_listeners.append(self.trainer.on_completion)
        self.platform.pipeline_listeners.append(self._on_pipeline_complete)
        if self.config.strict_consistency:
            self.store.register_read_hook(self._read_webhook)
            self.store.register_write_hook(self._write_webhook)
        #: Attached by :class:`repro.checks.HistoryRecorder`; None in
        #: ordinary runs (the ``checks`` collector then reports zeros).
        self.checks_recorder = None
        self.obs = self._build_registry()
        self._started = False

    # -- observability -------------------------------------------------------

    def _build_registry(self) -> MetricsRegistry:
        """One registry absorbing every component's ad-hoc counters.

        The pre-existing stats dataclasses keep their attribute APIs;
        lazy collectors pull their snapshots only when the registry
        itself is snapshotted, so the run pays nothing.
        """
        registry = MetricsRegistry()
        registry.register_collector("ofc", self.metrics.snapshot)
        registry.register_collector("table2", self.table2_snapshot)
        registry.register_collector("rclib", self._rclib_snapshot)
        registry.register_collector("kvcache", self.backend.stats_snapshot)
        registry.register_collector("cache_backend", self.backend.cost_snapshot)
        registry.register_collector("rsds", self.store.stats.snapshot)
        registry.register_collector(
            "persistor", lambda: asdict(self.persistor.stats)
        )
        registry.register_collector("invokers", self._invoker_snapshot)
        registry.register_collector("tenancy", self.tenancy.snapshot)
        registry.register_collector("checks", self._checks_snapshot)
        return registry

    def _checks_snapshot(self) -> Dict[str, Any]:
        """History-checker counters (zeros unless a recorder attached)."""
        recorder = self.checks_recorder
        if recorder is None:
            return {"attached": 0, "ops": 0, "violations_total": 0}
        return recorder.snapshot()

    def _on_object_admitted(self, obj) -> None:
        self.tenancy.on_object_admitted(obj.flags.get("tenant"), obj.size)

    def _on_object_removed(self, obj) -> None:
        self.tenancy.on_object_removed(obj.flags.get("tenant"), obj.size)

    def _rclib_snapshot(self) -> Dict[str, float]:
        snap: Dict[str, float] = asdict(self.rclib_stats)
        snap["hit_ratio"] = self.rclib_stats.hit_ratio
        return snap

    def _invoker_snapshot(self) -> Dict[str, float]:
        """Cluster-wide sums of the per-node invoker counters."""
        totals: Dict[str, float] = {}
        for invoker in self.platform.invokers:
            for key, value in asdict(invoker.stats).items():
                totals[key] = totals.get(key, 0) + value
        totals["nodes"] = len(self.platform.invokers)
        return totals

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start the cache backend (on "ofc": the per-node agents,
        which size the initial cache)."""
        if self._started:
            return
        self._started = True
        self.backend.start()
        # Let the initial scale-up land before any invocation arrives.
        self.kernel.run(until=self.kernel.now)

    # -- hook factories ----------------------------------------------------------

    def _make_data_client(self, invoker, record: InvocationRecord) -> RcLibClient:
        return RcLibClient(
            self.kernel,
            invoker.node_id,
            self.backend,
            self.store,
            self.persistor,
            self.config,
            record,
            self.rclib_stats,
            tenancy=self.tenancy,
            inflight_fills=self._inflight_fills,
        )

    def _make_monitor(self, record: InvocationRecord, invoker) -> Monitor:
        return Monitor(record, invoker, config=self.config)

    # -- consistency callbacks (§6.2) -----------------------------------------------

    def _read_webhook(self, op: str, meta) -> Generator:
        """Hold an external GET until the latest payload is persisted."""
        key = meta.key
        if not meta.is_shadow:
            return
        pending = self.persistor.pending_for(key)
        if pending is not None:
            yield from self.persistor.boost(key)
            return
        # Nothing in flight but the RSDS copy is stale: push from cache.
        cached = self.backend.peek(key)
        if cached is not None:
            done = self.persistor.schedule(
                meta.bucket, meta.name, cached.value, meta.version, final=False
            )
            yield done

    def _write_webhook(self, op: str, meta) -> Generator:
        """Invalidate the cached copy before an external write (§6.2)."""
        key = meta.key
        if self.backend.contains(key):
            try:
                yield from self.backend.delete(key, caller="external")
            except NoSuchKey:
                pass

    def _on_persisted(self, key: str, final: bool, version: int) -> None:
        """Discard final outputs from the cache once written back (§6.3)."""
        if not final:
            return

        def discard():
            cached = self.backend.peek(key)
            if (
                cached is not None
                and cached.version <= version
                and not cached.flags.get("dirty", False)
            ):
                try:
                    yield from self.backend.delete(key, caller="external")
                except NoSuchKey:
                    pass
            agent = self.agents.get(self.backend.location_of(key) or "")
            if agent is not None:
                agent._queue_retarget()

        self.kernel.process(discard(), name=f"discard-final-{key}")

    def _on_pipeline_complete(self, record: PipelineRecord) -> None:
        """Remove the pipeline's intermediate objects from the cache and
        drop their RSDS shadows (§6.3: removed, never persisted)."""

        def cleanup():
            removed = 0
            # backend.objects() is lazy per node, in the same order the
            # pre-seam loop walked the cluster's servers (bit-identity).
            for node_id, obj in self.backend.objects():
                if obj.flags.get("pipeline_id") != record.pipeline_id:
                    continue
                if not obj.flags.get("intermediate", False):
                    continue
                bucket, _sep, name = obj.key.partition("/")
                try:
                    yield from self.backend.delete(obj.key, caller=node_id)
                    removed += 1
                except NoSuchKey:
                    continue
                if self.store.contains(bucket, name):
                    try:
                        yield from self.store.delete(
                            bucket, name, internal=True
                        )
                    except StoreUnavailable:
                        # Outage mid-cleanup: the orphan shadow stays
                        # in the RSDS; harmless (zero payload).
                        continue
            self.metrics.pipeline_cleanups += 1
            self.metrics.intermediate_objects_removed += removed

        self.kernel.process(
            cleanup(), name=f"pipeline-cleanup-{record.pipeline_id}"
        )

    # -- public API ------------------------------------------------------------------

    def invoke(self, request: InvocationRequest) -> InvocationRecord:
        """Blocking invoke (runs the kernel until the record completes)."""
        process = self.kernel.process(self.platform.invoke(request))
        return self.kernel.run_until(process)

    def invoke_pipeline(
        self,
        pipeline: Pipeline,
        tenant: str,
        base_args: Optional[Dict[str, Any]] = None,
        input_refs: Optional[List[str]] = None,
    ) -> PipelineRecord:
        process = self.kernel.process(
            self.platform.invoke_pipeline(
                pipeline, tenant, base_args=base_args, input_refs=input_refs
            )
        )
        return self.kernel.run_until(process)

    # -- reporting (Table 2) ----------------------------------------------

    def table2_snapshot(self) -> Dict[str, Any]:
        failed = sum(1 for r in self.platform.records if r.status == "failed")
        snap = self.metrics.snapshot()
        snap.update(
            {
                "good_predictions": self.trainer.good_predictions,
                "bad_predictions": self.trainer.bad_predictions,
                "failed_invocations": failed,
                "cache_hit_ratio": round(self.rclib_stats.hit_ratio, 4),
                "ephemeral_data_bytes": self.rclib_stats.ephemeral_bytes,
            }
        )
        return snap
