"""CacheAgent: per-node cache sizing and reclamation (§6.3, §6.4).

Each worker node runs one agent.  It listens to sandbox lifecycle
events on its Invoker and keeps the local cache server's memory pool at
exactly the node's *unused* memory (total - sandboxes - slack).  When a
sandbox needs memory back (the Invoker's ``ensure_capacity`` hook), the
agent shrinks the cache in the paper's order:

1. discard final outputs already persisted to the RSDS;
2. migrate hot input objects' master copies to another node via the
   optimized hand-off (no payload transfer), else evict clean objects
   LRU;
3. write back dirty outputs and discard them on completion.

It also runs the periodic eviction policy (every 300 s: evict objects
with fewer than 5 reads or idle for more than 30 min) and maintains the
slack pool from a sliding window of memory churn.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, List, Optional

from repro.core.config import OFCConfig
from repro.core.metrics import OFCMetrics
from repro.core.persistor import PersistorService
from repro.faas.invoker import Invoker
from repro.faas.sandbox import Sandbox
from repro.kvcache.cluster import CacheCluster
from repro.kvcache.errors import CapacityExceeded, NoSuchKey
from repro.sim.kernel import Kernel
from repro.sim.latency import MB


class CacheAgent:
    """One node's cache management loop."""

    def __init__(
        self,
        kernel: Kernel,
        invoker: Invoker,
        cluster: CacheCluster,
        persistor: PersistorService,
        config: Optional[OFCConfig] = None,
        metrics: Optional[OFCMetrics] = None,
        tenancy=None,
    ):
        self.kernel = kernel
        self.invoker = invoker
        self.cluster = cluster
        self.persistor = persistor
        self.config = config or OFCConfig()
        self.metrics = metrics or OFCMetrics()
        #: Per-tenant accounting (:mod:`repro.core.tenancy`); when set,
        #: reclamation evicts over-quota tenants' objects first and the
        #: periodic sweep resynchronises the usage ledger.
        self.tenancy = tenancy
        self.node_id = invoker.node_id
        self.server = cluster.server(invoker.node_id)
        self._retarget_queued = False
        # Shrinks are serialized per node: two interleaved shrink loops
        # would migrate the same objects back and forth between nodes.
        self._shrink_active = False
        self._shrink_waiters: List = []
        self._churn_samples: deque = deque(
            maxlen=self.config.churn_window_samples
        )
        self._last_committed_mb: Optional[float] = None
        # Wire into the invoker.
        invoker.slack_mb = self.config.slack_initial_mb
        invoker.listeners.append(self._on_sandbox_event)
        invoker.ensure_capacity = self.ensure_capacity
        self._started = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Spawn the periodic eviction and slack-adjustment loops."""
        if self._started:
            return
        self._started = True
        self.kernel.process(
            self._eviction_loop(), name=f"cache-evict-{self.node_id}"
        )
        self.kernel.process(
            self._slack_loop(), name=f"cache-slack-{self.node_id}"
        )
        self._queue_retarget()

    # -- target sizing ------------------------------------------------------------

    def target_capacity_bytes(self) -> int:
        """The cache gets everything sandboxes and slack do not hold,
        up to the optional per-node harvest ceiling."""
        free_mb = (
            self.invoker.total_memory_mb
            - self.invoker.committed_mb
            - self.invoker.slack_mb
        )
        if self.config.cache_cap_mb is not None:
            free_mb = min(free_mb, self.config.cache_cap_mb)
        return max(0, int(free_mb * MB))

    def _on_sandbox_event(self, event: str, sandbox: Sandbox) -> None:
        self._queue_retarget()

    def _queue_retarget(self) -> None:
        if self._retarget_queued:
            return
        self._retarget_queued = True
        self.kernel.process(
            self._retarget(), name=f"cache-retarget-{self.node_id}"
        )

    def _retarget(self) -> Generator:
        self._retarget_queued = False
        target = self.target_capacity_bytes()
        current = self.server.capacity
        span = self.kernel.tracer.start("cache.retarget", node=self.node_id)
        if target > current:
            started = self.kernel.now
            yield from self.cluster.scale_up(self.node_id, target - current)
            self.invoker.cache_reserved_mb = self.server.capacity / MB
            self.metrics.scale_ups += 1
            self.metrics.scale_up_time_s += self.kernel.now - started
            span.annotate(direction="grow")
        elif target < current:
            yield from self._shrink_to(target)
            span.annotate(direction="shrink")
        else:
            span.annotate(direction="steady")
        self.metrics.record_cache_size(
            self.kernel.now, self.cluster.total_capacity
        )
        span.finish()

    # -- shrinking ------------------------------------------------------------------

    def _fits(self, target_bytes: int) -> bool:
        if self.server.used_bytes <= target_bytes:
            return True
        self.server.log.clean()
        return self.server.used_bytes <= target_bytes

    def _local_masters(self) -> List:
        return self.server.master_objects()

    #: When reclamation must touch data, free this much extra so the
    #: running invocation's output still fits in the shrunken pool.
    SHRINK_HEADROOM = 16 * MB

    def _shrink_to(self, target_bytes: int) -> Generator:
        """Free master-log space until ``target_bytes`` suffices, then
        apply the resize.  Implements the §6.4 reclamation order."""
        while self._shrink_active:
            gate = self.kernel.event()
            self._shrink_waiters.append(gate)
            yield gate
        if self.server.capacity <= target_bytes:
            return  # a prior shrink already did the work
        self._shrink_active = True
        try:
            yield from self._shrink_locked(target_bytes)
        finally:
            self._shrink_active = False
            waiters, self._shrink_waiters = self._shrink_waiters, []
            for gate in waiters:
                gate.succeed()

    def _shrink_locked(self, target_bytes: int) -> Generator:
        started = self.kernel.now
        span = self.kernel.tracer.start("cache.shrink", node=self.node_id)
        evicted = False
        migrated = False
        goal = target_bytes
        if not self._fits(target_bytes):
            goal = max(0, target_bytes - self.SHRINK_HEADROOM)
        # Pass 1: persisted final outputs not yet discarded.
        if not self._fits(goal):
            for obj in self._local_masters():
                if self._fits(goal):
                    break
                if obj.flags.get("final") and not obj.flags.get("dirty", False):
                    yield from self._drop(obj.key)
                    evicted = True
        # Pass 2: clean input objects, LRU; migrate masters, else evict.
        if not self._fits(goal):
            clean = [
                o
                for o in self._local_masters()
                if not o.flags.get("dirty", False)
            ]
            clean.sort(key=self._reclaim_order)
            for obj in clean:
                if self._fits(goal):
                    break
                new_master = None
                try:
                    new_master = yield from self.cluster.migrate_master(obj.key)
                except NoSuchKey:
                    continue
                if new_master is not None:
                    migrated = True
                    self.metrics.migrations += 1
                    self.metrics.migrated_bytes += obj.size
                else:
                    yield from self._drop(obj.key)
                    evicted = True
        # Pass 3: dirty outputs — write back, then discard.
        if not self._fits(goal):
            dirty = [
                o for o in self._local_masters() if o.flags.get("dirty", False)
            ]
            dirty.sort(key=lambda o: o.t_access)
            for obj in dirty:
                if self._fits(goal):
                    break
                bucket, _sep, name = obj.key.partition("/")
                done = self.persistor.schedule(
                    bucket,
                    name,
                    obj.value,
                    obj.version,
                    final=bool(obj.flags.get("final")),
                    size=obj.size,
                    create_if_missing=not self.config.strict_consistency,
                )
                yield done
                if self.cluster.contains(obj.key):
                    yield from self._drop(obj.key)
                evicted = True
        # Apply the resize (partial if reclamation could not free enough).
        new_capacity = max(target_bytes, self.server.used_bytes)
        try:
            yield from self.cluster.scale_down(
                self.node_id, new_capacity, evicting=evicted
            )
        except CapacityExceeded:
            self.server.log.clean()
            new_capacity = max(new_capacity, self.server.used_bytes)
            yield from self.cluster.scale_down(
                self.node_id, new_capacity, evicting=evicted
            )
        self.invoker.cache_reserved_mb = self.server.capacity / MB
        if migrated:
            self.metrics.scale_downs_migration += 1
        elif evicted:
            self.metrics.scale_downs_eviction += 1
        else:
            self.metrics.scale_downs_plain += 1
        self.metrics.scale_down_time_s += self.kernel.now - started
        span.finish(
            mode="migration" if migrated else ("eviction" if evicted else "plain")
        )

    def _reclaim_order(self, obj):
        """Sort key for pass-2 reclamation.

        Without tenancy this is plain LRU.  With a quota policy, objects
        belonging to tenants holding more than their entitlement go
        first (LRU within each class): reclamation pressure lands on the
        over-consumers before it touches anyone's fair share.
        """
        tenancy = self.tenancy
        if tenancy is None:
            return (False, obj.t_access)
        tenant = obj.flags.get("tenant")
        # Same capacity base as admission (proxy._admit): the clamped
        # figure, or quota checks disagree whenever the live total
        # overshoots a configured cache_cap_mb.
        over = bool(tenant) and tenancy.over_quota(
            tenant, self.cluster.quota_capacity
        )
        return (not over, obj.t_access)

    def _drop(self, key: str) -> Generator:
        try:
            yield from self.cluster.delete(key, caller=self.node_id)
            self.metrics.evictions_pressure += 1
        except NoSuchKey:
            pass

    # -- invoker hook ------------------------------------------------------------------

    def ensure_capacity(self, invoker: Invoker, needed_mb: float) -> Generator:
        """Release node memory from the cache until the invoker's
        accounting balances.

        The shortfall is recomputed on every round: while one shrink is
        in flight, more sandboxes may commit memory concurrently, so a
        target computed up front goes stale immediately.
        """
        for _round in range(4):
            shortfall_mb = -invoker.available_mb
            if shortfall_mb <= 1e-3:
                break
            # Fast-fail when the cache cannot possibly cover the
            # shortfall: under heavy cold-start churn many creations
            # hold committed memory while queueing on the shrink lock,
            # so each waiter sees every other waiter's commitment in
            # the shortfall.  Draining the whole cache for a request
            # that still cannot fit only deepens the convoy — reject
            # immediately and let the scheduler try another node.
            if shortfall_mb * MB > self.server.capacity + 1:
                return False
            target = max(
                0, self.server.capacity - int(shortfall_mb * MB)
            )
            yield from self._shrink_to(target)
            if invoker.available_mb >= -1e-3:
                break
        return invoker.available_mb >= -1e-3

    # -- periodic eviction (§6.3) ----------------------------------------

    def _eviction_loop(self) -> Generator:
        period = self.config.eviction_period_s
        while True:
            yield period
            yield from self.run_periodic_eviction()

    def run_periodic_eviction(self) -> Generator:
        """Evict cold objects: n_access < 5 or idle > 30 min."""
        span = self.kernel.tracer.start("cache.evict_sweep", node=self.node_id)
        now = self.kernel.now
        for obj in self._local_masters():
            # Never evict very young objects (they may belong to an
            # in-flight pipeline and have simply not been read yet).
            if now - obj.created_at < self.config.eviction_period_s:
                continue
            idle = now - obj.t_access
            # §6.3: the sweep targets objects "that have not been
            # recently accessed"; anything read within the last period
            # is left alone regardless of its access count.
            if idle < self.config.eviction_period_s:
                continue
            cold = (
                obj.n_access < self.config.eviction_min_accesses
                or idle > self.config.eviction_max_idle_s
            )
            if not cold:
                continue
            if obj.flags.get("dirty", False):
                bucket, _sep, name = obj.key.partition("/")
                self.persistor.schedule(
                    bucket,
                    name,
                    obj.value,
                    obj.version,
                    final=bool(obj.flags.get("final")),
                    size=obj.size,
                    create_if_missing=not self.config.strict_consistency,
                )
                continue  # evicted on a later round, once clean
            try:
                yield from self.cluster.delete(obj.key, caller=self.node_id)
                self.metrics.evictions_periodic += 1
            except NoSuchKey:
                pass
        if self.tenancy is not None:
            # Re-derive per-tenant usage from the cluster's actual
            # contents (fault paths bypass the object hooks).  Every
            # node's agent runs this sweep; only the first node also
            # decays the proportional-share demand weights, so the
            # decay is applied once per period, not once per node.
            servers = self.cluster.coordinator.servers
            self.tenancy.resync(
                (
                    obj
                    for server in servers.values()
                    if server.up
                    for obj in server.master_objects()
                ),
                decay=self.node_id == min(servers),
            )
        span.finish()
        self._queue_retarget()

    # -- slack pool (§6.4) ------------------------------------------------

    def _slack_loop(self) -> Generator:
        sample_period = self.config.churn_sample_period_s
        adjust_every = max(
            1, int(self.config.slack_adjust_period_s / sample_period)
        )
        ticks = 0
        while True:
            yield sample_period
            committed = self.invoker.committed_mb
            if self._last_committed_mb is not None:
                self._churn_samples.append(
                    abs(committed - self._last_committed_mb)
                )
            self._last_committed_mb = committed
            ticks += 1
            if ticks % adjust_every == 0 and self._churn_samples:
                churn = sum(self._churn_samples) / len(self._churn_samples)
                self.invoker.slack_mb = max(
                    self.config.slack_initial_mb, churn
                )
                self._queue_retarget()
