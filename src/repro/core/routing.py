"""OFC's locality-aware request routing (§6.5)."""

from __future__ import annotations

from typing import List, Optional

from repro.faas.invoker import Invoker
from repro.faas.records import InvocationRequest
from repro.faas.scheduler import Scheduler


class OFCScheduler(Scheduler):
    """Modified load-balancer policy.

    A request goes to an idle warm sandbox when one exists (ranked by
    the §6.5 criteria: memory-limit distance to the prediction, node
    free memory, data locality, recency); otherwise a fresh sandbox is
    created, preferably on the node holding the master cached copy of
    the request's input object.

    ``cluster`` is anything with ``location_of`` — the raw
    :class:`~repro.kvcache.cluster.CacheCluster` or any
    :class:`~repro.cache.backend.CacheBackend`.
    """

    def __init__(self, cluster):
        self.cluster = cluster

    def _locality_node(self, request: InvocationRequest) -> Optional[str]:
        if not request.input_ref:
            return None
        return self.cluster.location_of(request.input_ref)

    def choose_node(
        self,
        request: InvocationRequest,
        memory_mb: float,
        invokers: List[Invoker],
        exclude: Optional[set] = None,
    ) -> Optional[Invoker]:
        exclude = exclude or set()
        candidates = [inv for inv in invokers if inv.node_id not in exclude]
        if not candidates:
            return None
        locality = self._locality_node(request)

        # 1. Idle warm sandboxes anywhere: rank by the §6.5 criteria.
        ranked = []
        for invoker in candidates:
            sandbox = invoker.find_sandbox(request.key, preferred_mb=memory_mb)
            if sandbox is None:
                continue
            ranked.append(
                (
                    abs(sandbox.memory_limit_mb - memory_mb),  # (i)
                    -invoker.available_mb,  # (ii)
                    0 if invoker.node_id == locality else 1,  # (iii)
                    -sandbox.last_used_at,  # (iv)
                    invoker,
                )
            )
        if ranked:
            ranked.sort(key=lambda item: item[:4])
            return ranked[0][-1]

        # 2. No warm sandbox: create one, preferably where the master
        # cached copy of the input lives.
        if locality is not None:
            for invoker in candidates:
                if invoker.node_id == locality and (
                    invoker.available_mb >= memory_mb
                    or invoker.cache_reserved_mb >= memory_mb
                ):
                    return invoker

        # 3. Fall back to the node with the most reclaimable memory
        # (free + cache, since the CacheAgent can hand cache memory back).
        return max(
            candidates,
            key=lambda inv: inv.available_mb + inv.cache_reserved_mb,
        )
