"""Monitor: runtime memory supervision of invocations (§5.3.1).

The Monitor periodically reads the sandbox's cgroup statistics (here:
the pressure callback from the compute loop) and can dynamically raise
the memory cap of a sandbox that runs out — but only for invocations
that have been running for at least 3 s, because short invocations are
frequent and the monitoring overhead is not worth it for them.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import OFCConfig
from repro.faas.invoker import InvocationContext, Invoker
from repro.faas.records import InvocationRecord


class Monitor:
    """Per-invocation memory monitor."""

    def __init__(
        self,
        record: InvocationRecord,
        invoker: Invoker,
        config: Optional[OFCConfig] = None,
    ):
        self.record = record
        self.invoker = invoker
        self.config = config or OFCConfig()
        self.rescues = 0

    def on_pressure(
        self, ctx: InvocationContext, usage_mb: float, footprint_mb: float
    ):
        """Called when the invocation's usage crosses its cgroup limit.

        Returns True when the cap was raised (invocation continues),
        False when the OOM killer must act.
        """
        age = ctx.kernel.now - self.record.started_at
        if age < self.config.monitor_min_runtime_s:
            return False
        booked = self.record.booked_memory_mb
        target = min(
            max(footprint_mb, usage_mb) + self.config.monitor_headroom_mb,
            max(booked, usage_mb + self.config.monitor_headroom_mb),
        )
        if target <= ctx.sandbox.memory_limit_mb:
            return False
        try:
            yield from self.invoker.resize_sandbox(ctx.sandbox, target)
        except Exception:
            return False
        self.rescues += 1
        return True
