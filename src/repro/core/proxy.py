"""rclib: the transparent data-plane proxy (§4, §6.2).

Function bodies never know the cache exists: the platform hands them an
:class:`RcLibClient` instead of a direct store client.  Reads try the
cache first and fall back to the RSDS (populating the cache
asynchronously on a miss); writes create a synchronous zero-payload
*shadow* in the RSDS, buffer the payload in the cache (write-back), and
schedule a persistor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional

from repro.core.config import OFCConfig
from repro.core.persistor import PersistorService
from repro.faas.dataclient import DataClient
from repro.faas.records import InvocationRecord
from repro.kvcache.errors import CacheError, CapacityExceeded, NoSuchKey, ObjectTooLarge
from repro.sim.kernel import Kernel
from repro.storage.errors import NoSuchObject, StoreUnavailable
from repro.storage.meta import ObjectMeta, StoredObject
from repro.storage.object_store import ObjectStore


@dataclass
class RcLibStats:
    """Cluster-wide data-plane counters (Table 2 feeds on these)."""

    hits_local: int = 0
    hits_remote: int = 0
    misses: int = 0
    uncached_reads: int = 0
    writes_cached: int = 0
    writes_direct: int = 0
    write_back_fallbacks: int = 0
    ephemeral_bytes: int = 0
    shadow_writes: int = 0
    degraded_reads: int = 0
    degraded_writes: int = 0
    bypass_reads: int = 0
    bypass_writes: int = 0
    #: RSDS reads held for an in-flight persist of the same key (§6.2
    #: boost, applied explicitly on the proxy's store-read paths).
    pending_boosts: int = 0
    #: Read-miss fills skipped because the same key already had one in
    #: flight (two concurrent misses must not double-fill the cache).
    fills_deduped: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits_local + self.hits_remote + self.misses
        if total == 0:
            return 0.0
        return (self.hits_local + self.hits_remote) / total


class RcLibClient(DataClient):
    """Per-invocation cache-aware data client for one worker node."""

    def __init__(
        self,
        kernel: Kernel,
        node_id: str,
        cluster,  # CacheCluster or any repro.cache CacheBackend
        store: ObjectStore,
        persistor: PersistorService,
        config: OFCConfig,
        record: InvocationRecord,
        stats: RcLibStats,
        tenancy=None,
        inflight_fills: Optional[set] = None,
    ):
        self.kernel = kernel
        self.node_id = node_id
        self.cluster = cluster
        self.store = store
        self.persistor = persistor
        self.config = config
        self.record = record
        self.stats = stats
        #: Optional per-tenant accounting + admission policy
        #: (:class:`repro.core.tenancy.TenantCacheAccounting`).
        self.tenancy = tenancy
        #: Keys with a fill in flight, shared deployment-wide by the
        #: platform so concurrent clients dedupe against each other.
        self.inflight_fills = (
            inflight_fills if inflight_fills is not None else set()
        )

    @property
    def _tenant(self) -> str:
        request = getattr(self.record, "request", None)
        return getattr(request, "tenant", "") or ""

    def _admit(self, size: int, tenant: Optional[str] = None) -> bool:
        """Cross-tenant admission check for caching ``size`` bytes."""
        if self.tenancy is None:
            return True
        if tenant is None:
            tenant = self._tenant
        if not tenant:
            return True
        # Quotas divide the *clamped* capacity: the live total can sit
        # above a configured cache_cap_mb (resizes never go below what
        # the backup log holds), and per-tenant entitlements derived
        # from the unclamped figure would sum past the operator's cap.
        return self.tenancy.admit(tenant, size, self.cluster.quota_capacity)

    # -- helpers ------------------------------------------------------------

    @property
    def _should_cache(self) -> bool:
        return self.record.should_cache is not False

    def _cacheable(self, size: int) -> bool:
        return self._should_cache and size <= self.config.max_cacheable_bytes

    def _as_stored_object(self, key: str, cached) -> StoredObject:
        bucket, _sep, name = key.partition("/")
        meta = ObjectMeta(
            bucket=bucket,
            name=name,
            size=cached.size,
            version=cached.version,
            user_meta=dict(cached.flags.get("user_meta") or {}),
        )
        return StoredObject(meta=meta, payload=cached.value)

    # -- reads ---------------------------------------------------------------

    @property
    def _bypass_cache(self) -> bool:
        """Degraded mode: skip the cache entirely (fault-injected)."""
        faults = self.cluster.faults
        return faults is not None and faults.bypass_cache

    def _boost_pending(self, key: str) -> Generator[Any, Any, None]:
        """Hold an RSDS read while a persist of ``key`` is in flight.

        The store's own read webhook cannot cover this: ``store.get``
        raises :class:`NoSuchObject` *before* hooks run, so a read
        racing a create-if-missing persist would surface a spurious
        miss (and a racing shadow-fill, a zero-payload object).
        """
        if self.persistor.pending_for(key) is not None:
            self.stats.pending_boosts += 1
            yield from self.persistor.boost(key)

    def read(self, bucket: str, name: str) -> Generator[Any, Any, StoredObject]:
        if self._bypass_cache:
            self.stats.bypass_reads += 1
            # Bypass reads are *external* to the cache: take the
            # webhook path (shadow objects are filled from the cache)
            # after explicitly boosting any pending persist.
            yield from self._boost_pending(f"{bucket}/{name}")
            obj = yield from self.store.get(bucket, name, internal=False)
            return obj
        key = f"{bucket}/{name}"
        location = self.cluster.location_of(key)
        if location is not None:
            try:
                cached = yield from self.cluster.get(key, caller=self.node_id)
            except NoSuchKey:
                cached = None
            except CacheError:
                # The master's node went down between the location check
                # and the read (ServerDown must not reach the function):
                # degrade to the RSDS copy below.
                self.stats.degraded_reads += 1
                cached = None
            if cached is not None:
                if location == self.node_id:
                    self.stats.hits_local += 1
                else:
                    self.stats.hits_remote += 1
                tenancy = self.tenancy
                if tenancy is not None:
                    tenant = self._tenant  # two getattrs; resolve once
                    if tenant:
                        tenancy.record_hit(tenant, cached.size)
                return self._as_stored_object(key, cached)
        # Miss fallback: if the key's latest version is still being
        # persisted (cache copy evicted or its node crashed while the
        # write-back was in flight), wait it out rather than reading a
        # shadow or stale RSDS copy.
        yield from self._boost_pending(key)
        obj = yield from self.store.get(bucket, name, internal=True)
        if self._should_cache:
            self.stats.misses += 1
            tenancy = self.tenancy
            tenant = self._tenant if tenancy is not None else ""
            if tenancy is not None and tenant:
                tenancy.record_miss(tenant, obj.meta.size)
            if self._cacheable(obj.meta.size) and self._admit(
                obj.meta.size, tenant
            ):
                self._populate_async(key, obj)
        else:
            self.stats.uncached_reads += 1
        return obj

    def _populate_async(self, key: str, obj: StoredObject) -> None:
        """Admit a read-miss object to the cache off the critical path.

        At most one fill per key is in flight deployment-wide: two
        concurrent misses on the same key used to each schedule a fill,
        double-counting cache writes and skewing the hit-ratio metrics.
        """
        fills = self.inflight_fills
        if key in fills:
            self.stats.fills_deduped += 1
            return
        fills.add(key)

        def fill():
            try:
                yield from self.cluster.put(
                    key,
                    obj.payload,
                    obj.meta.size,
                    caller=self.node_id,
                    flags={
                        "dirty": False,
                        "input": True,
                        "tenant": self._tenant,
                        "user_meta": dict(obj.meta.user_meta),
                    },
                )
            except (CapacityExceeded, ObjectTooLarge, CacheError):
                pass  # no room: the object simply stays uncached
            finally:
                fills.discard(key)

        self.kernel.process(fill(), name=f"cache-fill-{key}")

    # -- writes ---------------------------------------------------------------

    def write(
        self,
        bucket: str,
        name: str,
        payload: Any,
        size: int,
        content_type: str = "application/octet-stream",
        user_meta: Optional[Dict[str, Any]] = None,
        intermediate: bool = False,
        pipeline_id: Optional[str] = None,
    ) -> Generator[Any, Any, None]:
        self.store.ensure_bucket(bucket)
        if self._bypass_cache:
            self.stats.bypass_writes += 1
            # External write: the webhook invalidates any cached copy,
            # otherwise a stale cache hit would shadow this update once
            # the bypass episode ends.
            yield from self.store.put(
                bucket,
                name,
                payload,
                size,
                content_type=content_type,
                user_meta=user_meta,
                internal=False,
            )
            return
        if intermediate:
            self.stats.ephemeral_bytes += size
        # Pipeline intermediates are always buffered in write-back mode
        # (§6.3/§7.2.1: "outputs are always buffered... which helps
        # multi-stage functions"); shouldBeCached only gates the rest.
        cacheable = (
            size <= self.config.max_cacheable_bytes
            if intermediate
            else self._cacheable(size)
        )
        tenant = self._tenant
        if cacheable and not self._admit(size, tenant):
            # Over the tenant's cache entitlement: the write degrades to
            # a direct RSDS put, exactly like a size-ineligible object.
            cacheable = False
        if not cacheable:
            self.stats.writes_direct += 1
            yield from self.store.put(
                bucket,
                name,
                payload,
                size,
                content_type=content_type,
                user_meta=user_meta,
                internal=True,
            )
            return
        # 1. Synchronous zero-payload shadow in the RSDS (strict mode).
        key = f"{bucket}/{name}"
        version = 1
        shadow_ok = False
        if self.config.strict_consistency:
            try:
                meta = yield from self.store.put(
                    bucket,
                    name,
                    None,
                    size,
                    content_type=content_type,
                    user_meta=user_meta,
                    shadow=True,
                    internal=True,
                )
                version = meta.version
                shadow_ok = True
                self.stats.shadow_writes += 1
            except StoreUnavailable:
                # RSDS outage: skip the shadow, buffer in the cache and
                # let the persistor create the object (relaxed-mode
                # write-back) once the store recovers.
                self.stats.degraded_writes += 1
                if self.store.contains(bucket, name):
                    version = self.store.peek_meta(bucket, name).version + 1
                else:
                    cached = self.cluster.peek(key)
                    version = (cached.version + 1) if cached is not None else 1
        else:
            cached = self.cluster.peek(key)
            version = (cached.version + 1) if cached is not None else 1
        # 2. Write-back into the cache.
        flags = {
            "dirty": True,
            "intermediate": intermediate,
            "pipeline_id": pipeline_id,
            "final": not intermediate,
            "tenant": tenant,
            "user_meta": dict(user_meta or {}),
        }
        try:
            yield from self.cluster.put(
                key, payload, size, caller=self.node_id, flags=flags
            )
            self.stats.writes_cached += 1
        except (CapacityExceeded, ObjectTooLarge, CacheError):
            # No cache room: persist the payload synchronously instead.
            self.stats.write_back_fallbacks += 1
            if self.config.strict_consistency and shadow_ok:
                yield from self.store.persist_payload(
                    bucket, name, payload, version
                )
            else:
                yield from self.store.put(
                    bucket,
                    name,
                    payload,
                    size,
                    content_type=content_type,
                    user_meta=user_meta,
                    internal=True,
                )
            return
        # 3. Asynchronous persistence — but never for intermediates:
        # pipeline-internal objects die in the cache (§6.3).  When the
        # shadow write failed (RSDS outage) the persistor runs in
        # create-if-missing mode and performs a full PUT on retry.
        if self.config.strict_consistency and not intermediate:
            self.persistor.schedule(
                bucket,
                name,
                payload,
                version,
                final=True,
                size=size,
                create_if_missing=not shadow_ok,
            )

    # -- deletes ---------------------------------------------------------------

    def delete(self, bucket: str, name: str) -> Generator[Any, Any, None]:
        key = f"{bucket}/{name}"
        try:
            yield from self.cluster.delete(key, caller=self.node_id)
        except NoSuchKey:
            pass
        try:
            yield from self.store.delete(bucket, name, internal=True)
        except NoSuchObject:
            pass
