"""Per-tenant cache accounting and admission/quota policies.

OFC's cache is one harvested pool shared by every tenant on the
platform.  The paper evaluates it with eight cooperative tenants and
never asks who the cached bytes belong to; at production tenant counts
(tens of thousands, heavy-tailed popularity) the pool becomes a
contended resource and the hit ratio a *per-tenant* quantity.  This
module supplies the bookkeeping and the policy seam:

* :class:`TenantCacheAccounting` — per-tenant usage, hit/miss and
  admission counters, maintained via the :class:`CacheCluster` object
  hooks and resynchronised by the cache agent's periodic sweep (the
  fault paths — crash, recover — bypass the hooks, so the sweep is the
  source of truth after failures);
* :class:`QuotaPolicy` and its implementations — ``none`` (the paper's
  behaviour), ``static`` (a fixed fraction of the pool per tenant) and
  ``proportional`` (entitlement follows each tenant's share of recent
  cache demand, with a floor so idle-ish tenants are not starved);
* :func:`jain_index` — the fairness metric the ``repro tenants``
  experiment reports over per-tenant hit ratios.

With the default ``none`` policy the accounting is pure bookkeeping:
no admission is ever refused and no simulation event is created, so
seeded runs remain bit-identical to a tree without this module.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

__all__ = [
    "TenantCacheAccounting",
    "QuotaPolicy",
    "NoQuotaPolicy",
    "StaticQuotaPolicy",
    "ProportionalSharePolicy",
    "jain_index",
    "make_quota_policy",
]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 when every tenant fares equally, ``1/n`` when one tenant gets
    everything.  An empty or all-zero population is defined as fair
    (1.0): nobody is being favoured.
    """
    n = len(values)
    if n == 0:
        return 1.0
    total = float(sum(values))
    squares = float(sum(v * v for v in values))
    if squares <= 0.0:
        return 1.0
    return (total * total) / (n * squares)


class QuotaPolicy:
    """Decides how many cache bytes one tenant may hold."""

    name = "abstract"

    def limit_bytes(
        self,
        tenant: str,
        accounting: "TenantCacheAccounting",
        capacity_bytes: int,
    ) -> Optional[float]:
        """Byte entitlement for ``tenant``; ``None`` means unlimited."""
        raise NotImplementedError


class NoQuotaPolicy(QuotaPolicy):
    """The paper's behaviour: first come, first cached."""

    name = "none"

    def limit_bytes(self, tenant, accounting, capacity_bytes):
        return None


class StaticQuotaPolicy(QuotaPolicy):
    """Every tenant gets the same fixed fraction of the pool.

    ``fraction`` is typically ``1 / expected_tenants``.  Strongly fair
    but not work-conserving: a hot tenant cannot borrow the shares that
    cold tenants leave idle.
    """

    name = "static"

    def __init__(self, fraction: float):
        if fraction <= 0.0:
            raise ValueError(f"static quota fraction must be > 0: {fraction}")
        self.fraction = fraction

    def limit_bytes(self, tenant, accounting, capacity_bytes):
        return capacity_bytes * self.fraction


class ProportionalSharePolicy(QuotaPolicy):
    """Entitlement proportional to the tenant's recent cache demand.

    Each tenant's weight is its exponentially-decayed byte traffic
    through the cache (hits + misses); the entitlement is the pool
    scaled by the tenant's weight share, floored at ``floor`` times the
    equal split so a light tenant always keeps a foothold.  Demand
    decays on every accounting resync (the cache agent's periodic
    sweep), so the shares track the workload's diurnal shape.
    """

    name = "proportional"

    def __init__(self, floor: float = 0.5):
        if floor < 0.0:
            raise ValueError(f"proportional floor must be >= 0: {floor}")
        self.floor = floor

    def limit_bytes(self, tenant, accounting, capacity_bytes):
        active = len(accounting.demand_bytes) or 1
        equal_share = capacity_bytes / active
        total_demand = accounting.total_demand_bytes
        if total_demand <= 0.0:
            return equal_share
        weight = accounting.demand_bytes.get(tenant, 0.0) / total_demand
        return max(self.floor * equal_share, capacity_bytes * weight)


def make_quota_policy(
    name: str,
    static_fraction: float = 0.01,
    proportional_floor: float = 0.5,
) -> QuotaPolicy:
    """Policy factory used by :class:`~repro.core.ofc.OFCPlatform`."""
    if name == "none":
        return NoQuotaPolicy()
    if name == "static":
        return StaticQuotaPolicy(static_fraction)
    if name == "proportional":
        return ProportionalSharePolicy(proportional_floor)
    raise ValueError(f"unknown tenant quota policy: {name}")


class TenantCacheAccounting:
    """Per-tenant cache usage and outcome counters.

    Usage is maintained incrementally through the cluster's
    admitted/removed object hooks; :meth:`resync` recomputes it from a
    master-object scan (run by the cache agent's periodic sweep) to
    absorb any drift from fault paths that bypass the hooks.
    """

    def __init__(self, policy: Optional[QuotaPolicy] = None):
        self.policy = policy or NoQuotaPolicy()
        self.usage_bytes: Dict[str, float] = {}
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        self.admitted: Dict[str, int] = {}
        self.rejected: Dict[str, int] = {}
        self.evicted: Dict[str, int] = {}
        #: Decayed per-tenant byte traffic, the proportional-share weight.
        self.demand_bytes: Dict[str, float] = {}
        self.total_demand_bytes: float = 0.0
        #: EWMA retention applied to the demand on every resync.
        self.demand_decay: float = 0.5

    # -- admission -------------------------------------------------------

    def admit(self, tenant: str, size: int, capacity_bytes: int) -> bool:
        """Policy check for caching ``size`` more bytes for ``tenant``."""
        limit = self.policy.limit_bytes(tenant, self, capacity_bytes)
        if limit is None:
            return True
        if self.usage_bytes.get(tenant, 0.0) + size <= limit:
            return True
        self.rejected[tenant] = self.rejected.get(tenant, 0) + 1
        return False

    def limit_for(self, tenant: str, capacity_bytes: int) -> Optional[float]:
        return self.policy.limit_bytes(tenant, self, capacity_bytes)

    def over_quota(self, tenant: str, capacity_bytes: int) -> bool:
        """True when ``tenant`` currently holds more than its entitlement."""
        limit = self.policy.limit_bytes(tenant, self, capacity_bytes)
        if limit is None:
            return False
        return self.usage_bytes.get(tenant, 0.0) > limit

    # -- usage hooks (wired to CacheCluster.on_object_admitted/removed) --

    def on_object_admitted(self, tenant: Optional[str], size: int) -> None:
        if not tenant:
            return
        self.usage_bytes[tenant] = self.usage_bytes.get(tenant, 0.0) + size
        self.admitted[tenant] = self.admitted.get(tenant, 0) + 1

    def on_object_removed(self, tenant: Optional[str], size: int) -> None:
        if not tenant:
            return
        remaining = self.usage_bytes.get(tenant, 0.0) - size
        if remaining > 0.0:
            self.usage_bytes[tenant] = remaining
        else:
            self.usage_bytes.pop(tenant, None)
        self.evicted[tenant] = self.evicted.get(tenant, 0) + 1

    # -- data-plane outcomes (wired to the rclib proxy) ------------------

    def record_hit(self, tenant: str, size: int) -> None:
        self.hits[tenant] = self.hits.get(tenant, 0) + 1
        self._record_demand(tenant, size)

    def record_miss(self, tenant: str, size: int) -> None:
        self.misses[tenant] = self.misses.get(tenant, 0) + 1
        self._record_demand(tenant, size)

    def _record_demand(self, tenant: str, size: int) -> None:
        self.demand_bytes[tenant] = self.demand_bytes.get(tenant, 0.0) + size
        self.total_demand_bytes += size

    # -- maintenance -----------------------------------------------------

    def reset_counters(self) -> None:
        """Zero the outcome counters (hits, misses, admissions, ...).

        Usage and demand are live state and survive: a bench warmup
        wants fresh counters over a warmed cache, not an empty one.
        """
        self.hits = {}
        self.misses = {}
        self.admitted = {}
        self.rejected = {}
        self.evicted = {}

    def resync(self, objects: Iterable, decay: bool = True) -> None:
        """Recompute usage from the cluster's master objects and decay
        the demand weights.  Called from the cache agent's periodic
        sweep; ``objects`` yields anything with ``size`` and a
        ``flags['tenant']`` attribution.  ``decay=False`` skips the
        demand decay (only one node's agent per period applies it)."""
        usage: Dict[str, float] = {}
        for obj in objects:
            tenant = obj.flags.get("tenant")
            if not tenant:
                continue
            usage[tenant] = usage.get(tenant, 0.0) + obj.size
        self.usage_bytes = usage
        if not decay:
            return
        decay = self.demand_decay
        if decay < 1.0:
            decayed = {
                tenant: value * decay
                for tenant, value in self.demand_bytes.items()
                if value * decay >= 1.0
            }
            self.demand_bytes = decayed
            self.total_demand_bytes = sum(decayed.values())

    # -- reporting -------------------------------------------------------

    def tenants_seen(self) -> list:
        return sorted(set(self.hits) | set(self.misses))

    def hit_ratio(self, tenant: str) -> Optional[float]:
        hits = self.hits.get(tenant, 0)
        total = hits + self.misses.get(tenant, 0)
        if total == 0:
            return None
        return hits / total

    def hit_ratios(self) -> Dict[str, float]:
        """Per-tenant hit ratio for every tenant that touched the cache."""
        out = {}
        for tenant in self.tenants_seen():
            ratio = self.hit_ratio(tenant)
            if ratio is not None:
                out[tenant] = ratio
        return out

    def fairness_index(self) -> float:
        """Jain's index over the per-tenant hit ratios."""
        return jain_index(list(self.hit_ratios().values()))

    def snapshot(self) -> Dict[str, float]:
        """Flat summary for the :class:`~repro.obs.MetricsRegistry`."""
        ratios = self.hit_ratios()
        return {
            "policy": self.policy.name,
            "tenants_seen": len(ratios),
            "fairness_index": self.fairness_index(),
            "total_hits": sum(self.hits.values()),
            "total_misses": sum(self.misses.values()),
            "admissions": sum(self.admitted.values()),
            "rejections": sum(self.rejected.values()),
            "evictions": sum(self.evicted.values()),
            "usage_bytes": sum(self.usage_bytes.values()),
        }
