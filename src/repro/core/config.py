"""OFC configuration: every tunable the paper names, with its value."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.latency import MB


@dataclass
class OFCConfig:
    """Knobs of the OFC system, defaulting to the paper's settings."""

    # -- ML / prediction (§5) ------------------------------------------------
    #: Classification interval size; 16 MB is the paper's choice.
    interval_mb: float = 16.0
    #: OpenWhisk's maximum sandbox memory (upper end of the range).
    max_memory_mb: float = 2048.0
    #: Invocations before the first maturity check (§7.1.3).
    min_history_for_maturity: int = 100
    #: Maturation criterion: fraction of exact-or-over predictions.
    maturity_eo_threshold: float = 0.90
    #: Maturation criterion: fraction of underpredictions within one
    #: interval of the truth.
    maturity_near_threshold: float = 0.50
    #: Conservative post-maturity adjustment: predict one interval up.
    bump_intervals: int = 1
    #: Retrain/maturity-check cadence, in completed invocations.
    retrain_every: int = 25
    #: After maturity, keep only underpredictions and extreme
    #: overpredictions (k - k* > this) in the training set (§5.3.3).
    extreme_over_intervals: int = 6
    #: Weight given to underprediction samples on retraining.
    underprediction_weight: float = 3.0
    #: E+L fraction above which caching is considered beneficial (§5.2).
    cache_benefit_threshold: float = 0.5
    #: Ablation: disable the benefit classifier (cache everything).
    use_benefit_model: bool = True

    # -- monitor (§5.3.1) ------------------------------------------------------
    #: Dynamic cap raising only for invocations running at least this long.
    monitor_min_runtime_s: float = 3.0
    #: Headroom added when the Monitor raises a sandbox's cap.
    monitor_headroom_mb: float = 32.0

    # -- cache policy (§6.3) ----------------------------------------------------
    #: Maximum object size admitted to the cache.
    max_cacheable_bytes: int = 10 * MB
    #: Periodic eviction cadence.
    eviction_period_s: float = 300.0
    #: Evict objects read fewer than this many times...
    eviction_min_accesses: int = 5
    #: ...or idle for longer than this.
    eviction_max_idle_s: float = 30 * 60.0
    #: Optional ceiling on each node's harvested cache, in MB (None =
    #: harvest everything sandboxes and slack leave free, the paper's
    #: behaviour).  Operators cap the harvest to bound cache churn; the
    #: multi-tenant bench uses it to study quota policies under a
    #: contended pool.
    cache_cap_mb: Optional[float] = None

    # -- autoscaling (§6.4) --------------------------------------------------------
    #: Initial per-node slack pool.
    slack_initial_mb: float = 100.0
    #: Slack re-estimation cadence.
    slack_adjust_period_s: float = 120.0
    #: Memory-churn sampling cadence for the sliding window.
    churn_sample_period_s: float = 60.0
    #: Sliding-window length, in churn samples.
    churn_window_samples: int = 5

    # -- multi-tenant cache quotas (beyond the paper) ------------------------------
    #: Cross-tenant admission policy: "none" (the paper's behaviour,
    #: bit-identical to a quota-free build), "static" (fixed fraction of
    #: the pool per tenant) or "proportional" (demand-proportional share
    #: with a floor).  See :mod:`repro.core.tenancy`.
    tenant_quota_policy: str = "none"
    #: Per-tenant pool fraction under the "static" policy (1/expected
    #: tenants is the usual setting).
    tenant_static_fraction: float = 0.01
    #: Floor under the "proportional" policy, as a fraction of the equal
    #: split (0.5 = every active tenant keeps at least half its fair share).
    tenant_proportional_floor: float = 0.5

    # -- storage consistency (§6.2) --------------------------------------------------
    #: True: synchronous shadow writes + persistors + webhooks (full
    #: transparency).  False: relaxed mode (lazy write-back only).
    strict_consistency: bool = True
    #: After exhausting its retry budget during an RSDS outage, the
    #: persistor requeues itself instead of giving up — acked write-back
    #: data stays pending (and boostable) until the store recovers.
    #: False restores the old drop-on-give-up behaviour (the chaos
    #: harness's pre-fix regression mode).
    persistor_requeue: bool = True

    # -- cache cluster ---------------------------------------------------------------
    replication_factor: int = 2

    # -- pluggable cache architecture (see repro.cache) ------------------------------
    #: Which cache architecture backs the data plane: "ofc" (the paper's
    #: harvested RAMCloud design, the default and the only bit-identical
    #: path), "faast" (Faa$T-style per-application auto-scaling cache)
    #: or "infinicache" (InfiniCache-style erasure-coded ephemeral
    #: sandboxes with object-store backup).
    cache_backend: str = "ofc"

    # Faa$T backend knobs (arXiv:2104.13869).
    #: Mirror every shard onto a backup node and promote the mirror on
    #: a crash (closes the chaos-harness finding that a node crash
    #: dropped dirty write-back data with the app's shards).  False
    #: restores the unreplicated pre-fix backend for regression tests.
    faast_replication: bool = True
    #: Size of one per-application cache shard ("cachelet").
    faast_shard_mb: float = 64.0
    #: Horizontal-scaling ceiling per application.
    faast_max_shards_per_app: int = 8
    #: Scaling-decision cadence.
    faast_scale_period_s: float = 10.0
    #: Accesses per period one shard is deemed to absorb (frequency axis).
    faast_ops_per_shard: int = 200
    #: Extra capacity provisioned above the observed working set.
    faast_ws_headroom: float = 0.25
    #: Idle scaling periods before an application's cache is torn down.
    faast_idle_periods: int = 3

    # InfiniCache backend knobs (arXiv:2001.10483).
    #: Erasure-coding geometry: k data + r parity chunks per object.
    infinicache_data_chunks: int = 4
    infinicache_parity_chunks: int = 2
    #: Memory of one ephemeral sandbox ("lambda").
    infinicache_lambda_mb: float = 64.0
    #: Sandbox pool size per node.
    infinicache_lambdas_per_node: int = 4
    #: Provider-side sandbox lifetime before reclamation.
    infinicache_lifetime_s: float = 600.0
    #: Reclamation-scan cadence (expired sandboxes are replaced and
    #: their chunks warmed up from peers or the backup store).
    infinicache_reclaim_period_s: float = 30.0
    #: Periodic backup cadence (objects copied to the object store).
    infinicache_backup_period_s: float = 120.0
