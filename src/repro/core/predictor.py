"""Predictor: the critical-path sizing and benefit decisions (§4, §5.1).

Invoked by the Controller for every request.  Until a function's memory
model matures, the tenant's booked amount is used (§5.3.1); afterwards
the predicted interval is conservatively bumped one interval up, and
the sandbox gets the interval's upper bound.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.config import OFCConfig
from repro.core.features import extract_features
from repro.core.trainer import ModelTrainer
from repro.faas.platform import SizingDecision
from repro.faas.records import InvocationRecord, InvocationRequest
from repro.faas.registry import FunctionSpec
from repro.sim.kernel import Kernel
from repro.sim.latency import OFC_CONTROL_OVERHEAD
from repro.storage.object_store import ObjectStore


class Predictor:
    """Per-invocation memory and cache-benefit prediction."""

    def __init__(
        self,
        kernel: Kernel,
        trainer: ModelTrainer,
        store: Optional[ObjectStore] = None,
        config: Optional[OFCConfig] = None,
        rng=None,
    ):
        self.kernel = kernel
        self.trainer = trainer
        self.store = store
        self.config = config or trainer.config
        self.rng = rng
        self.predictions = 0
        self.mature_predictions = 0

    def sizing_policy(
        self,
        request: InvocationRequest,
        spec: FunctionSpec,
        record: InvocationRecord,
    ) -> Generator[object, object, SizingDecision]:
        """The platform sizing hook (runs on the critical path)."""
        yield OFC_CONTROL_OVERHEAD.sample(self.rng)
        features = extract_features(request, spec, self.store)
        models = self.trainer.models_for(spec.key)
        intervals = self.trainer.intervals
        self.predictions += 1
        memory_mb = spec.booked_memory_mb
        predicted_interval = None
        if models.mature and models.memory_model is not None:
            raw = models.memory_model.predict_one(features)
            predicted_interval = int(raw)
            memory_mb = intervals.allocation_mb(raw, self.config.bump_intervals)
            self.mature_predictions += 1
        should_cache = True
        if (
            self.config.use_benefit_model
            and models.benefit_model is not None
            and len(models.samples) >= 10
        ):
            should_cache = bool(models.benefit_model.predict_one(features))
        record.predicted_interval = predicted_interval
        return SizingDecision(
            memory_mb=memory_mb,
            should_cache=should_cache,
            predicted_mb=memory_mb if predicted_interval is not None else None,
            features=features,
        )
