"""FaultInjector: drives a fault schedule through an OFC deployment.

The injector owns the shared :class:`~repro.sim.faults.FaultState` and
wires it into the deployment's instrumented components (the RSDS store
and the cache cluster; the rclib proxy reads the cluster's reference).
Its driver process then walks the schedule:

* ``crash`` — fail-stop the node, wait the failure-detection delay,
  run cluster recovery (promote surviving backups) and a repair pass
  (restore the replication factor);
* ``restart`` — bring the node back (purging stale disk backups) and
  run a repair pass so the returned disk capacity is used;
* episodes — flip the corresponding :class:`FaultState` knob for the
  episode's duration in a dedicated process, so episodes overlap
  freely with node events and each other.

Everything is traced (``fault.*`` spans) and exported through the
deployment's metrics registry under the ``faults`` collector.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Generator, Optional

from repro.faults.schedule import FaultEvent, FaultSchedule, ScheduleError
from repro.sim.faults import FaultState
from repro.sim.kernel import Process

#: Simulated failure-detection latency: the gap between a fail-stop and
#: the coordinator starting recovery (membership timeout).
DEFAULT_DETECTION_DELAY_S = 0.5


@dataclass
class FaultInjectorStats:
    crashes: int = 0
    restarts: int = 0
    recovered_objects: int = 0
    purged_backups: int = 0
    repaired_keys: int = 0
    outages: int = 0
    brownouts: int = 0
    slow_network_episodes: int = 0
    bypass_episodes: int = 0


class FaultInjector:
    """Applies a :class:`FaultSchedule` to an :class:`OFCPlatform`."""

    def __init__(
        self,
        ofc,
        schedule: FaultSchedule,
        detection_delay_s: float = DEFAULT_DETECTION_DELAY_S,
    ):
        self.ofc = ofc
        self.kernel = ofc.kernel
        self.schedule = schedule
        self.detection_delay_s = detection_delay_s
        self.state = FaultState()
        # Wire the shared fault state into the instrumented components.
        # Deployments built on the backend seam expose ``backend``
        # (crash/restart/recover/repair for any architecture); plain
        # CacheCluster test rigs fall back to the cluster itself.
        self.backend = getattr(ofc, "backend", None) or ofc.cluster
        # Reject schedules targeting nodes the deployment does not
        # have, with the known set in the message (previously this
        # surfaced as a KeyError deep inside the backend's crash path).
        known = list(getattr(self.backend, "node_ids", ()) or ())
        if not known:
            coordinator = getattr(self.backend, "coordinator", None)
            known = sorted(getattr(coordinator, "servers", {}) or ())
        if known:
            unknown = [n for n in schedule.nodes() if n not in known]
            if unknown:
                raise ScheduleError(
                    f"schedule targets unknown node(s) {unknown}; this "
                    f"deployment's nodes are {sorted(known)}"
                )
        ofc.store.faults = self.state
        self.backend.faults = self.state
        # Fault-injected kernels run the specialized faulted fast-path
        # variant: the fault state lives on the components, not the
        # kernel, and the driver/episode processes are ordinary
        # processes, so the fused drain + direct-resume chain stays
        # valid for the whole run (parity-gated in CI like the clean
        # path; REPRO_SIM_FASTPATH=0 still forces the generic loop).
        self.kernel.use_faulted_dispatch()
        self.stats = FaultInjectorStats()
        registry = getattr(ofc, "obs", None)
        if registry is not None:
            # Last writer wins: a second injector on the same
            # deployment rebinds the collector to its own stats (the
            # old `except ValueError: pass` left the first injector's
            # snapshot bound forever, silently discarding the stats of
            # every injector after it).
            registry.register_collector("faults", self.snapshot, replace=True)
        self._driver: Optional[Process] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> Process:
        """Spawn the schedule driver (idempotent)."""
        if self._driver is None:
            self._driver = self.kernel.process(
                self._drive(), name="fault-injector"
            )
        return self._driver

    def snapshot(self) -> Dict[str, Any]:
        """Metrics collector: counters plus the live fault knobs."""
        snap: Dict[str, Any] = asdict(self.stats)
        snap.update(self.state.snapshot())
        return snap

    # -- driver ------------------------------------------------------------

    def _drive(self) -> Generator:
        for event in self.schedule.events:
            delay = event.at - self.kernel.now
            if delay > 0:
                yield delay
            self._apply(event)

    def _apply(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == "crash":
            self.kernel.process(
                self._crash(event.node), name=f"fault-crash-{event.node}"
            )
        elif kind == "restart":
            self.kernel.process(
                self._restart(event.node), name=f"fault-restart-{event.node}"
            )
        else:
            self.kernel.process(
                self._episode(event), name=f"fault-{kind}"
            )

    # -- node events -------------------------------------------------------

    def _crash(self, node: str) -> Generator:
        span = self.kernel.tracer.start("fault.crash", node=node)
        self.backend.crash(node)
        self.stats.crashes += 1
        # Failure detection: recovery starts after the membership
        # timeout, not instantaneously.
        yield self.detection_delay_s
        recovered = yield from self.backend.recover(node)
        self.stats.recovered_objects += recovered
        repaired = yield from self.backend.repair()
        self.stats.repaired_keys += repaired
        span.finish(recovered=recovered, repaired=repaired)

    def _restart(self, node: str) -> Generator:
        span = self.kernel.tracer.start("fault.restart", node=node)
        purged = self.backend.restart(node)
        self.stats.restarts += 1
        self.stats.purged_backups += purged
        # The node's storage is available again: restore redundancy.
        repaired = yield from self.backend.repair()
        self.stats.repaired_keys += repaired
        span.finish(purged=purged, repaired=repaired)

    # -- episodes ----------------------------------------------------------

    def _episode(self, event: FaultEvent) -> Generator:
        kind = event.kind
        state = self.state
        span = self.kernel.tracer.start(
            f"fault.{kind}", duration=event.duration, scale=event.scale
        )
        if kind == "rsds_outage":
            self.stats.outages += 1
            state.enter_outage()
        elif kind == "rsds_brownout":
            self.stats.brownouts += 1
            state.enter_brownout(event.scale)
        elif kind == "slow_network":
            self.stats.slow_network_episodes += 1
            state.enter_slow_network(event.scale)
        else:  # bypass_cache (validated upstream)
            self.stats.bypass_episodes += 1
            state.enter_bypass()
        try:
            yield event.duration
        finally:
            if kind == "rsds_outage":
                state.exit_outage()
            elif kind == "rsds_brownout":
                state.exit_brownout(event.scale)
            elif kind == "slow_network":
                state.exit_slow_network(event.scale)
            else:
                state.exit_bypass()
            span.finish()
