"""Seeded randomized fault fuzzing (the chaos harness generator).

:func:`chaos_schedule` composes the existing episode types — node
crash/restart pairs, RSDS outages and brown-outs, slow-network windows
and bypass-cache degraded mode — into valid :class:`FaultSchedule`
timelines, deterministically from a seed.  Three intensity presets
control event rates, episode lengths and overlap; a target list biases
crashes toward data-bearing nodes (shard hosts for the Faa$T backend,
chunk hosts for InfiniCache), which is where the interesting bugs are.

Design constraints that keep *zero violations* a meaningful verdict:

* at most one node is down at any time, and a minimum gap separates a
  restart from the next crash — OFC's durability claim is single-fault
  tolerance (replication factor 2), so concurrent crashes would lose
  data by design, not by bug;
* restarts are always paired with their crash, so every generated
  schedule passes :class:`FaultSchedule` validation;
* only the "high" preset emits outages longer than the persistor's
  full retry backoff, exercising the give-up/requeue path.

:func:`shrink_schedule` is a ddmin-style delta debugger over *atomic
units* (a crash with its paired restart, or a single episode): given a
failing schedule and a ``still_fails`` predicate it returns a minimal
reproducer, exported as runnable JSON by the chaos bench.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.schedule import FaultEvent, FaultSchedule

#: Weight multiplier for crash targets that currently bear data.
TARGET_WEIGHT = 3


@dataclass(frozen=True)
class ChaosIntensity:
    """One preset of the fuzzer's event-rate knobs."""

    name: str
    #: Poisson mean between crash arrivals (whole cluster).
    mean_crash_interval_s: float
    mean_downtime_s: float
    max_downtime_s: float
    #: Quiet period after a restart before the next crash may land.
    min_crash_gap_s: float
    mean_episode_interval_s: float
    mean_episode_s: float
    max_episode_s: float
    episode_kinds: Tuple[str, ...]
    #: False: episodes are serialized; True: they may nest/overlap.
    episode_overlap: bool
    brownout_scale: float = 4.0
    slow_network_scale: float = 3.0


#: The graded presets the chaos grid sweeps.  "high" episode windows
#: exceed the persistor's ~11 s retry budget on purpose.
INTENSITIES: Dict[str, ChaosIntensity] = {
    "low": ChaosIntensity(
        name="low",
        mean_crash_interval_s=70.0,
        mean_downtime_s=10.0,
        max_downtime_s=15.0,
        min_crash_gap_s=25.0,
        mean_episode_interval_s=45.0,
        mean_episode_s=8.0,
        max_episode_s=10.0,
        episode_kinds=("rsds_brownout", "slow_network"),
        episode_overlap=False,
    ),
    "medium": ChaosIntensity(
        name="medium",
        mean_crash_interval_s=50.0,
        mean_downtime_s=8.0,
        max_downtime_s=12.0,
        min_crash_gap_s=20.0,
        mean_episode_interval_s=25.0,
        mean_episode_s=8.0,
        max_episode_s=10.0,
        episode_kinds=(
            "rsds_brownout", "slow_network", "rsds_outage", "bypass_cache"
        ),
        episode_overlap=False,
    ),
    "high": ChaosIntensity(
        name="high",
        mean_crash_interval_s=35.0,
        mean_downtime_s=8.0,
        max_downtime_s=12.0,
        min_crash_gap_s=15.0,
        mean_episode_interval_s=15.0,
        mean_episode_s=10.0,
        max_episode_s=25.0,
        episode_kinds=(
            "rsds_brownout", "slow_network", "rsds_outage", "bypass_cache"
        ),
        episode_overlap=True,
    ),
}


def chaos_targets(backend) -> List[str]:
    """Nodes currently bearing cached data for ``backend`` — the
    backend-aware crash bias (shard hosts on faast, chunk hosts on
    infinicache, masters on ofc)."""
    known = set(getattr(backend, "node_ids", ()))
    return sorted(
        {node for node, _obj in backend.objects() if node in known}
    )


def _weighted_choice(
    rng: random.Random, nodes: Sequence[str], targets: Optional[Sequence[str]]
) -> str:
    if not targets:
        return rng.choice(list(nodes))
    hot = set(targets)
    pool: List[str] = []
    for node in nodes:
        pool.extend([node] * (TARGET_WEIGHT if node in hot else 1))
    return rng.choice(pool)


def chaos_schedule(
    seed: int,
    duration_s: float,
    nodes: Sequence[str],
    intensity: str = "medium",
    targets: Optional[Sequence[str]] = None,
    start_at: float = 0.0,
) -> FaultSchedule:
    """Generate a randomized, valid fault schedule from a seed.

    ``start_at`` offsets every event (chaos cells inject after warmup,
    so schedule times are absolute sim times).  The result is
    deterministic in ``(seed, duration_s, nodes, intensity, targets,
    start_at)``.
    """
    try:
        spec = INTENSITIES[intensity]
    except KeyError:
        raise ValueError(
            f"unknown chaos intensity {intensity!r} "
            f"(expected one of {sorted(INTENSITIES)})"
        ) from None
    rng = random.Random(seed)
    events: List[FaultEvent] = []
    end = start_at + duration_s

    # Crash/restart pairs: one node down at a time, with a quiet gap.
    if nodes and spec.mean_crash_interval_s > 0:
        t = start_at + rng.expovariate(1.0 / spec.mean_crash_interval_s)
        next_allowed = start_at
        while t < end:
            at = max(t, next_allowed)
            if at < end:
                node = _weighted_choice(rng, nodes, targets)
                downtime = min(
                    spec.max_downtime_s,
                    max(2.0, rng.expovariate(1.0 / spec.mean_downtime_s)),
                )
                events.append(FaultEvent(at=at, kind="crash", node=node))
                events.append(
                    FaultEvent(at=at + downtime, kind="restart", node=node)
                )
                next_allowed = at + downtime + spec.min_crash_gap_s
            t += rng.expovariate(1.0 / spec.mean_crash_interval_s)

    # Episode stream (independent of node events by design: overlap
    # between episodes and crash windows is the point of the fuzzer).
    if spec.mean_episode_interval_s > 0 and spec.episode_kinds:
        t = start_at + rng.expovariate(1.0 / spec.mean_episode_interval_s)
        busy_until = start_at
        while t < end:
            at = t if spec.episode_overlap else max(t, busy_until)
            if at < end:
                kind = rng.choice(list(spec.episode_kinds))
                length = min(
                    spec.max_episode_s,
                    max(2.0, rng.expovariate(1.0 / spec.mean_episode_s)),
                )
                scale = 1.0
                if kind == "rsds_brownout":
                    scale = spec.brownout_scale
                elif kind == "slow_network":
                    scale = spec.slow_network_scale
                events.append(
                    FaultEvent(at=at, kind=kind, duration=length, scale=scale)
                )
                busy_until = at + length
            t += rng.expovariate(1.0 / spec.mean_episode_interval_s)

    return FaultSchedule(events)


# -- schedule shrinking ------------------------------------------------------


def atomic_units(schedule: FaultSchedule) -> List[List[FaultEvent]]:
    """Split a schedule into removable units: a crash with its paired
    restart, or one episode.  Removing whole units preserves validity
    (no orphan restarts, no overlapping crash windows)."""
    units: List[List[FaultEvent]] = []
    open_crash: Dict[str, List[FaultEvent]] = {}
    for event in schedule.events:
        if event.kind == "crash":
            unit = [event]
            open_crash[event.node] = unit
            units.append(unit)
        elif event.kind == "restart":
            unit = open_crash.pop(event.node, None)
            if unit is None:
                units.append([event])
            else:
                unit.append(event)
        else:
            units.append([event])
    return units


def _schedule_of(units: List[List[FaultEvent]]) -> FaultSchedule:
    return FaultSchedule([event for unit in units for event in unit])


def shrink_schedule(
    schedule: FaultSchedule,
    still_fails: Callable[[FaultSchedule], bool],
    max_probes: int = 40,
) -> FaultSchedule:
    """ddmin over atomic units: greedily delete chunks of the schedule
    while ``still_fails`` holds, bounded by ``max_probes`` re-runs.

    Returns the smallest failing schedule found (the input itself if no
    deletion preserves the failure within the probe budget).
    """
    units = atomic_units(schedule)
    if len(units) <= 1:
        return _schedule_of(units)
    probes = 0
    granularity = 2
    while len(units) >= 2 and probes < max_probes:
        chunk = max(1, len(units) // granularity)
        reduced = False
        for i in range(0, len(units), chunk):
            rest = units[:i] + units[i + chunk:]
            if not rest or probes >= max_probes:
                continue
            probes += 1
            if still_fails(_schedule_of(rest)):
                units = rest
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if granularity >= len(units):
                break
            granularity = min(len(units), granularity * 2)
    return _schedule_of(units)
