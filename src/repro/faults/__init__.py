"""Fault injection for the simulated OFC deployment.

The subsystem has three parts:

* :class:`~repro.sim.faults.FaultState` — the shared knobs the
  instrumented components (RSDS, cache cluster, rclib) consult on
  their hot paths (zero cost while ``None``);
* :class:`~repro.faults.schedule.FaultSchedule` — a validated,
  time-sorted list of fault events, loaded from JSON or generated
  stochastically from a seed;
* :class:`~repro.faults.injector.FaultInjector` — the driver process
  that applies a schedule to a running :class:`~repro.core.ofc.
  OFCPlatform`: node crashes/restarts (with detection, recovery and
  re-replication), RSDS outages and brown-outs, slow-network windows
  and bypass-cache degraded mode;
* :mod:`~repro.faults.chaos` — the seeded randomized fuzzer: composes
  the episode types into valid schedules with graded intensity and
  backend-aware crash targeting, plus a ddmin-style shrinker that
  minimizes failing schedules to small reproducers.
"""

from repro.faults.chaos import (
    INTENSITIES,
    ChaosIntensity,
    chaos_schedule,
    chaos_targets,
    shrink_schedule,
)
from repro.faults.injector import FaultInjector, FaultInjectorStats
from repro.faults.schedule import (
    EPISODE_KINDS,
    FaultEvent,
    FaultSchedule,
    NODE_KINDS,
    ScheduleError,
)

__all__ = [
    "EPISODE_KINDS",
    "ChaosIntensity",
    "FaultEvent",
    "FaultInjector",
    "FaultInjectorStats",
    "FaultSchedule",
    "INTENSITIES",
    "NODE_KINDS",
    "ScheduleError",
    "chaos_schedule",
    "chaos_targets",
    "shrink_schedule",
]
