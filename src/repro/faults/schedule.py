"""Fault schedules: scripted and stochastic failure timelines.

A schedule is a time-sorted list of :class:`FaultEvent` records.  Two
families of events exist:

* **node events** (``crash``, ``restart``) — instantaneous, target one
  cache node by id;
* **episodes** (``rsds_outage``, ``rsds_brownout``, ``slow_network``,
  ``bypass_cache``) — have a ``duration``; the injector enters the
  condition at ``at`` and exits it ``duration`` seconds later.
  Brown-outs and slow-network windows carry a latency ``scale``.

The JSON format is a single object ``{"events": [...]}``, one dict per
event::

    {"events": [
      {"at": 60.0,  "kind": "crash",   "node": "w1"},
      {"at": 150.0, "kind": "restart", "node": "w1"},
      {"at": 200.0, "kind": "rsds_outage",   "duration": 20.0},
      {"at": 260.0, "kind": "rsds_brownout", "duration": 30.0, "scale": 4.0},
      {"at": 300.0, "kind": "slow_network",  "duration": 30.0, "scale": 3.0},
      {"at": 340.0, "kind": "bypass_cache",  "duration": 30.0}
    ]}
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

#: Instantaneous events targeting one cache node.
NODE_KINDS = frozenset({"crash", "restart"})
#: Timed conditions the injector enters and exits.
EPISODE_KINDS = frozenset(
    {"rsds_outage", "rsds_brownout", "slow_network", "bypass_cache"}
)
#: Episode kinds whose ``scale`` is meaningful (latency multipliers).
SCALED_KINDS = frozenset({"rsds_brownout", "slow_network"})

ALL_KINDS = NODE_KINDS | EPISODE_KINDS


class ScheduleError(ValueError):
    """A fault schedule failed validation."""


@dataclass(frozen=True)
class FaultEvent:
    """One entry of a fault schedule."""

    at: float
    kind: str
    node: Optional[str] = None
    duration: float = 0.0
    scale: float = 1.0

    def validate(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ScheduleError(
                f"unknown fault kind {self.kind!r} "
                f"(expected one of {sorted(ALL_KINDS)})"
            )
        if self.at < 0:
            raise ScheduleError(f"{self.kind}: negative time {self.at}")
        if self.kind in NODE_KINDS and not self.node:
            raise ScheduleError(f"{self.kind}: missing 'node'")
        if self.kind in EPISODE_KINDS and self.duration <= 0:
            raise ScheduleError(
                f"{self.kind} at t={self.at}: episode needs duration > 0"
            )
        if self.kind in SCALED_KINDS and self.scale <= 0:
            raise ScheduleError(
                f"{self.kind} at t={self.at}: scale must be > 0"
            )

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultEvent":
        unknown = set(payload) - {"at", "kind", "node", "duration", "scale"}
        if unknown:
            raise ScheduleError(f"unknown fault-event fields: {sorted(unknown)}")
        try:
            event = cls(
                at=float(payload["at"]),
                kind=str(payload["kind"]),
                node=payload.get("node"),
                duration=float(payload.get("duration", 0.0)),
                scale=float(payload.get("scale", 1.0)),
            )
        except KeyError as missing:
            raise ScheduleError(f"fault event missing field {missing}") from None
        event.validate()
        return event

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"at": self.at, "kind": self.kind}
        if self.node is not None:
            out["node"] = self.node
        if self.kind in EPISODE_KINDS:
            out["duration"] = self.duration
        if self.kind in SCALED_KINDS:
            out["scale"] = self.scale
        return out

    @property
    def end(self) -> float:
        return self.at + self.duration


@dataclass
class FaultSchedule:
    """A validated, time-sorted fault timeline."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        for event in self.events:
            event.validate()
        # Stable sort: same-instant events keep their authored order.
        self.events = sorted(self.events, key=lambda e: e.at)
        # Per-node crash-window discipline: a node must be restarted
        # before it can crash again, and never restarted while up.
        # Without this, overlapping windows fail deep inside the
        # injector (double recovery, repair racing a dead node).
        crashed_at: Dict[str, float] = {}
        for event in self.events:
            if event.kind == "crash":
                if event.node in crashed_at:
                    raise ScheduleError(
                        f"crash at t={event.at}: node {event.node!r} is "
                        f"already down (crashed at t="
                        f"{crashed_at[event.node]}) — add a restart "
                        "before re-crashing it, or target another node"
                    )
                crashed_at[event.node] = event.at
            elif event.kind == "restart":
                if event.node not in crashed_at:
                    raise ScheduleError(
                        f"restart at t={event.at}: node {event.node!r} "
                        "is not down — pair every restart with a "
                        "preceding crash of the same node"
                    )
                del crashed_at[event.node]

    # -- (de)serialization -------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultSchedule":
        if not isinstance(payload, dict) or "events" not in payload:
            raise ScheduleError('schedule must be {"events": [...]}')
        return cls([FaultEvent.from_dict(e) for e in payload["events"]])

    @classmethod
    def load(cls, path: str) -> "FaultSchedule":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def to_dict(self) -> Dict[str, Any]:
        return {"events": [event.to_dict() for event in self.events]}

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    # -- inspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def duration(self) -> float:
        """Time of the last effect (episode ends included)."""
        return max((event.end for event in self.events), default=0.0)

    def nodes(self) -> List[str]:
        return sorted(
            {event.node for event in self.events if event.node is not None}
        )

    # -- stochastic generation ---------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        duration_s: float,
        nodes: Sequence[str],
        mean_crash_interval_s: float = 300.0,
        mean_downtime_s: float = 60.0,
        mean_episode_interval_s: float = 0.0,
        mean_episode_s: float = 30.0,
        brownout_scale: float = 4.0,
        slow_network_scale: float = 3.0,
    ) -> "FaultSchedule":
        """Generate a stochastic schedule from a seed (deterministic).

        Crash/restart pairs arrive as a Poisson process per the whole
        cluster; a crashed node is never re-crashed before its restart.
        With ``mean_episode_interval_s > 0`` a second Poisson stream
        emits RSDS brown-outs/outages and slow-network windows.
        """
        rng = random.Random(seed)
        events: List[FaultEvent] = []
        node_pool = list(nodes)
        if node_pool and mean_crash_interval_s > 0:
            down_until = {node: 0.0 for node in node_pool}
            t = rng.expovariate(1.0 / mean_crash_interval_s)
            while t < duration_s:
                up = [n for n in node_pool if down_until[n] <= t]
                if up:
                    node = rng.choice(up)
                    downtime = max(1.0, rng.expovariate(1.0 / mean_downtime_s))
                    events.append(FaultEvent(at=t, kind="crash", node=node))
                    events.append(
                        FaultEvent(at=t + downtime, kind="restart", node=node)
                    )
                    down_until[node] = t + downtime
                t += rng.expovariate(1.0 / mean_crash_interval_s)
        if mean_episode_interval_s > 0:
            t = rng.expovariate(1.0 / mean_episode_interval_s)
            while t < duration_s:
                kind = rng.choice(
                    ["rsds_brownout", "rsds_outage", "slow_network"]
                )
                length = max(1.0, rng.expovariate(1.0 / mean_episode_s))
                scale = 1.0
                if kind == "rsds_brownout":
                    scale = brownout_scale
                elif kind == "slow_network":
                    scale = slow_network_scale
                events.append(
                    FaultEvent(at=t, kind=kind, duration=length, scale=scale)
                )
                t += rng.expovariate(1.0 / mean_episode_interval_s)
        return cls(events)
