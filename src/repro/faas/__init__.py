"""OpenWhisk-like FaaS platform substrate.

Implements the slice of Apache OpenWhisk the paper builds on (§2.1):

* a Controller with a LoadBalancer that routes each invocation to a
  *home* worker computed from a hash of (tenant, function), falling back
  to the least-loaded node;
* per-worker Invokers that create and reuse Docker-like sandboxes, keep
  them alive for 600 s after their last use, and enforce per-sandbox
  memory limits (cgroup semantics, including the OOM killer);
* single-invocation-per-sandbox, never-shared-across-functions sandbox
  management;
* sequences/pipelines of functions, with fan-out stages;
* automatic retry of failed (OOM-killed) invocations.

OFC plugs into this platform exclusively through the strategy hooks on
:class:`~repro.faas.platform.FaaSPlatform` (scheduler, sizing policy,
data-client factory, monitor, completion callbacks) — mirroring how the
paper modifies OpenWhisk rather than replacing it.
"""

from repro.faas.dataclient import DataClient, DirectStoreClient
from repro.faas.errors import (
    FaaSError,
    InvocationFailed,
    NoSuchFunction,
    OOMKilled,
    ResourceExhausted,
)
from repro.faas.invoker import Invoker
from repro.faas.keepalive import (
    FixedKeepAlive,
    HistogramKeepAlive,
    KeepAlivePolicy,
)
from repro.faas.pipeline import Pipeline, Stage
from repro.faas.platform import FaaSPlatform, PlatformConfig
from repro.faas.records import (
    InvocationRecord,
    InvocationRequest,
    Phases,
)
from repro.faas.registry import FunctionRegistry, FunctionSpec
from repro.faas.sandbox import Sandbox, SandboxState
from repro.faas.scheduler import HomeWorkerScheduler, Scheduler

__all__ = [
    "DataClient",
    "DirectStoreClient",
    "FaaSError",
    "FaaSPlatform",
    "FixedKeepAlive",
    "HistogramKeepAlive",
    "KeepAlivePolicy",
    "FunctionRegistry",
    "FunctionSpec",
    "HomeWorkerScheduler",
    "InvocationFailed",
    "InvocationRecord",
    "InvocationRequest",
    "Invoker",
    "NoSuchFunction",
    "OOMKilled",
    "Phases",
    "Pipeline",
    "PlatformConfig",
    "ResourceExhausted",
    "Sandbox",
    "SandboxState",
    "Scheduler",
    "Stage",
]
