"""OpenWhisk-like FaaS platform substrate.

Implements the slice of Apache OpenWhisk the paper builds on (§2.1):

* a Controller with a LoadBalancer that routes each invocation to a
  *home* worker computed from a hash of (tenant, function), falling back
  to the least-loaded node;
* per-worker Invokers that create and reuse Docker-like sandboxes, keep
  them alive for 600 s after their last use, and enforce per-sandbox
  memory limits (cgroup semantics, including the OOM killer);
* single-invocation-per-sandbox, never-shared-across-functions sandbox
  management;
* sequences/pipelines of functions, with fan-out stages;
* automatic retry of failed (OOM-killed) invocations.

OFC plugs into this platform exclusively through the strategy hooks on
:class:`~repro.faas.platform.FaaSPlatform` (scheduler, sizing policy,
data-client factory, monitor, completion callbacks) — mirroring how the
paper modifies OpenWhisk rather than replacing it.
"""

from repro.faas.dataclient import DataClient, DirectStoreClient
from repro.faas.errors import (
    FaaSError,
    InvocationFailed,
    NoSuchFunction,
    OOMKilled,
    ResourceExhausted,
)
from repro.faas.invoker import Invoker
from repro.faas.keepalive import (
    FixedKeepAlive,
    HistogramKeepAlive,
    KeepAlivePolicy,
)
from repro.faas.pipeline import Pipeline, Stage
from repro.faas.platform import FaaSPlatform, PlatformConfig
from repro.faas.records import (
    InvocationRecord,
    InvocationRequest,
    Phases,
)
from repro.faas.registry import FunctionRegistry, FunctionSpec
from repro.faas.sandbox import Sandbox, SandboxState
from repro.faas.scheduler import HomeWorkerScheduler, Scheduler


def reset_id_counters() -> None:
    """Restart every process-global id counter (requests, sandboxes,
    pipelines).

    The counters run monotonically for the life of the process, and
    some ids leak into simulated state (pipeline intermediates embed
    the request id in their object keys), so back-to-back deployments
    in one process are not independent: the second sees different keys
    than it would in a fresh process.  Benches that compare cells
    against each other call this before building each deployment so a
    cell's result does not depend on how many cells ran before it (or
    on the ``--workers`` fan-out).  The bit-identity-gated benches
    never reset — their schedules are frozen with the counters running.
    """
    from repro.faas.pipeline import reset_pipeline_ids
    from repro.faas.records import reset_request_ids
    from repro.faas.sandbox import reset_sandbox_ids

    reset_request_ids()
    reset_sandbox_ids()
    reset_pipeline_ids()


__all__ = [
    "DataClient",
    "DirectStoreClient",
    "FaaSError",
    "FaaSPlatform",
    "FixedKeepAlive",
    "HistogramKeepAlive",
    "KeepAlivePolicy",
    "FunctionRegistry",
    "FunctionSpec",
    "HomeWorkerScheduler",
    "InvocationFailed",
    "InvocationRecord",
    "InvocationRequest",
    "Invoker",
    "NoSuchFunction",
    "OOMKilled",
    "Phases",
    "Pipeline",
    "PlatformConfig",
    "ResourceExhausted",
    "reset_id_counters",
    "Sandbox",
    "SandboxState",
    "Scheduler",
    "Stage",
]
