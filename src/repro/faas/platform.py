"""The platform facade: Controller, invocation lifecycle, pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.faas.dataclient import DataClient, DirectStoreClient
from repro.faas.errors import OOMKilled, ResourceExhausted
from repro.faas.invoker import Invoker
from repro.faas.pipeline import Pipeline, PipelineRecord, StageRecord
from repro.faas.records import InvocationRecord, InvocationRequest
from repro.faas.registry import FunctionRegistry, FunctionSpec
from repro.faas.scheduler import HomeWorkerScheduler, Scheduler
from repro.sim.kernel import Kernel
from repro.sim.latency import PLATFORM_OVERHEAD
from repro.storage.errors import NoSuchObject, StoreUnavailable
from repro.storage.object_store import ObjectStore


@dataclass
class PlatformConfig:
    """Deployment parameters of the platform."""

    node_ids: List[str] = field(default_factory=lambda: [f"w{i}" for i in range(4)])
    node_memory_mb: float = 16384.0
    keepalive_s: float = 600.0
    #: OpenWhisk's permitted sandbox memory range ([64 MB, 2 GB], §5.1.1
    #: and §7.2.1: 64 MB is the smallest configurable memory).
    min_sandbox_mb: float = 64.0
    max_sandbox_mb: float = 2048.0
    #: Maximum scheduling attempts after a failure (OOM kill/no room).
    max_retries: int = 2


@dataclass
class SizingDecision:
    """Outcome of the sizing policy for one invocation."""

    memory_mb: float
    should_cache: bool = True
    predicted_mb: Optional[float] = None
    features: Dict[str, Any] = field(default_factory=dict)


class FaaSPlatform:
    """OpenWhisk-like platform: public API for invocations and pipelines.

    OFC (and any other extension) customises behaviour exclusively via
    the hooks:

    * ``scheduler`` — node-selection policy;
    * ``sizing_policy`` — generator ``(request, spec, record) ->
      SizingDecision`` run on the critical path (OFC's Predictor);
    * ``data_client_factory`` — per-node :class:`DataClient` (OFC's
      rclib proxy);
    * ``monitor_factory`` — per-invocation memory monitor (OFC's
      Monitor);
    * ``completion_listeners`` — telemetry consumers (OFC's
      ModelTrainer);
    * ``pipeline_listeners`` — pipeline-end consumers (OFC's
      CacheAgent intermediate-data cleanup).
    """

    def __init__(
        self,
        kernel: Kernel,
        store: ObjectStore,
        config: Optional[PlatformConfig] = None,
        rng=None,
        scheduler: Optional[Scheduler] = None,
    ):
        self.kernel = kernel
        self.store = store
        self.config = config or PlatformConfig()
        self.rng = rng
        self.registry = FunctionRegistry()
        self.invokers: List[Invoker] = [
            Invoker(
                kernel,
                node_id,
                self.config.node_memory_mb,
                keepalive_s=self.config.keepalive_s,
                rng=rng,
            )
            for node_id in self.config.node_ids
        ]
        self.scheduler: Scheduler = scheduler or HomeWorkerScheduler()
        self.sizing_policy: Optional[Callable[..., Generator]] = None
        #: ``(invoker, record) -> DataClient`` — OFC installs rclib here.
        self.data_client_factory: Callable[..., DataClient] = (
            lambda invoker, record: DirectStoreClient(store)
        )
        self.monitor_factory: Optional[Callable[..., Any]] = None
        self.completion_listeners: List[Callable[[InvocationRecord], None]] = []
        self.pipeline_listeners: List[Callable[[PipelineRecord], None]] = []
        self.records: List[InvocationRecord] = []
        self.pipeline_records: List[PipelineRecord] = []
        #: Streaming injectors (repro.workloads.tenants) switch this off
        #: so million-invocation runs do not accumulate a record list;
        #: completion_listeners remain the delivery path either way.
        self.keep_records = True
        self.keepalive_policy = None

    # -- deployment ---------------------------------------------------------

    def register_function(self, spec: FunctionSpec) -> None:
        self.registry.register(spec)

    def set_keepalive_policy(self, policy) -> None:
        """Install a keep-alive policy on every invoker (see
        :mod:`repro.faas.keepalive`)."""
        self.keepalive_policy = policy
        for invoker in self.invokers:
            invoker.keepalive_policy = policy

    def invoker_by_id(self, node_id: str) -> Invoker:
        for invoker in self.invokers:
            if invoker.node_id == node_id:
                return invoker
        raise KeyError(node_id)

    # -- invocation lifecycle ----------------------------------------------------

    def _clamp_memory(self, memory_mb: float) -> float:
        return min(
            self.config.max_sandbox_mb,
            max(self.config.min_sandbox_mb, memory_mb),
        )

    def invoke(
        self, request: InvocationRequest
    ) -> Generator[Any, Any, InvocationRecord]:
        """Run one invocation to completion (public API)."""
        spec = self.registry.get(request.tenant, request.function)
        if self.keepalive_policy is not None:
            self.keepalive_policy.record_invocation(request.key, self.kernel.now)
        record = InvocationRecord(
            request=request,
            submitted_at=self.kernel.now,
            booked_memory_mb=spec.booked_memory_mb,
        )
        span = self.kernel.tracer.start(
            "faas.invoke", function=request.function, tenant=request.tenant
        )
        yield PLATFORM_OVERHEAD.sample(self.rng)
        if self.sizing_policy is not None:
            decision = yield from self.sizing_policy(request, spec, record)
        else:
            decision = SizingDecision(memory_mb=spec.booked_memory_mb)
        record.predicted_memory_mb = decision.predicted_mb
        record.should_cache = decision.should_cache
        record.features = decision.features
        memory_mb = self._clamp_memory(decision.memory_mb)

        excluded: set = set()
        for _attempt in range(self.config.max_retries + 1):
            node = self.scheduler.choose_node(
                request, memory_mb, self.invokers, exclude=excluded
            )
            if node is None:
                break
            monitor = None
            if self.monitor_factory is not None:
                monitor = self.monitor_factory(record, node)
            data_client = self.data_client_factory(node, record)
            try:
                yield from node.execute(spec, record, memory_mb, data_client, monitor)
                record.status = "ok"
                break
            except OOMKilled:
                # §5.3.1: immediately retried with the limit raised to
                # the amount set by the tenant.
                memory_mb = self._clamp_memory(spec.booked_memory_mb)
                record.retries += 1
                # Reset phase accounting: the retry is a fresh run.
                record.phases.extract = 0.0
                record.phases.transform = 0.0
                record.phases.load = 0.0
                record.bytes_in = 0
                record.bytes_out = 0
            except ResourceExhausted:
                excluded.add(node.node_id)
                record.retries += 1
            except (StoreUnavailable, NoSuchObject) as exc:
                # Data-plane failure (RSDS outage, missing input): the
                # invocation fails, the platform must not — retrying on
                # another node cannot help, and letting the exception
                # escape would tear down the whole driver. Found by the
                # chaos harness (rsds_outage episodes during load).
                record.error = f"{type(exc).__name__}: {exc}"
                break
        if record.status != "ok":
            record.status = "failed"
            record.finished_at = self.kernel.now
        span.finish(status=record.status, retries=record.retries)
        if self.keep_records:
            self.records.append(record)
        for listener in self.completion_listeners:
            listener(record)
        return record

    def submit(self, request: InvocationRequest):
        """Fire-and-track: returns the Process (an Event) of invoke()."""
        return self.kernel.process(
            self.invoke(request), name=f"invoke-{request.function}"
        )

    # -- pipelines -----------------------------------------------------------------

    def invoke_pipeline(
        self,
        pipeline: Pipeline,
        tenant: str,
        base_args: Optional[Dict[str, Any]] = None,
        input_refs: Optional[List[str]] = None,
        output_bucket: str = "outputs",
    ) -> Generator[Any, Any, PipelineRecord]:
        """Run a pipeline (fork-join per stage) to completion."""
        base_args = dict(base_args or {})
        pipeline_id = pipeline.new_id()
        prec = PipelineRecord(
            pipeline=pipeline.name,
            pipeline_id=pipeline_id,
            submitted_at=self.kernel.now,
        )
        span = self.kernel.tracer.start(
            "faas.pipeline", pipeline=pipeline.name, tenant=tenant
        )
        prev_refs = list(input_refs or [])
        last = len(pipeline.stages) - 1
        for index, stage in enumerate(pipeline.stages):
            plans = stage.planner(prev_refs, base_args)
            stage_record = StageRecord(
                function=stage.function, started_at=self.kernel.now, finished_at=0.0
            )
            processes = []
            for args, input_ref in plans:
                args = dict(args)
                args["_stage_index"] = index
                request = InvocationRequest(
                    function=stage.function,
                    tenant=tenant,
                    args=args,
                    input_ref=input_ref,
                    output_bucket=output_bucket,
                    pipeline_id=pipeline_id,
                    final_stage=(index == last),
                )
                processes.append(self.submit(request))
            yield self.kernel.all_of(processes)
            stage_record.records = [p.value for p in processes]
            stage_record.finished_at = self.kernel.now
            prec.stage_records.append(stage_record)
            if any(r.status != "ok" for r in stage_record.records):
                break
            prev_refs = [
                ref for r in stage_record.records for ref in r.output_refs
            ]
        prec.finished_at = self.kernel.now
        span.finish(status=prec.status, stages=len(prec.stage_records))
        self.pipeline_records.append(prec)
        for listener in self.pipeline_listeners:
            listener(prec)
        return prec
