"""Data-access layer handed to function bodies.

Function code is written against this interface only, which is what
makes OFC *transparent*: the platform decides whether a function's
reads and writes hit the RSDS directly (OWK-Swift), an IMOC (OWK-Redis)
or OFC's rclib proxy — the function body never changes.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.storage.meta import StoredObject
from repro.storage.object_store import ObjectStore


class DataClient:
    """Abstract E/L data plane for function bodies."""

    def read(self, bucket: str, name: str) -> Generator[Any, Any, StoredObject]:
        raise NotImplementedError

    def write(
        self,
        bucket: str,
        name: str,
        payload: Any,
        size: int,
        content_type: str = "application/octet-stream",
        user_meta: Optional[Dict[str, Any]] = None,
        intermediate: bool = False,
        pipeline_id: Optional[str] = None,
    ) -> Generator[Any, Any, None]:
        raise NotImplementedError

    def delete(self, bucket: str, name: str) -> Generator[Any, Any, None]:
        raise NotImplementedError


class DirectStoreClient(DataClient):
    """Reads and writes straight to one object store.

    Used by both baselines: OWK-Swift (store has the Swift latency
    profile) and OWK-Redis (store has the Redis profile).
    """

    def __init__(self, store: ObjectStore):
        self.store = store

    def read(self, bucket: str, name: str) -> Generator[Any, Any, StoredObject]:
        obj = yield from self.store.get(bucket, name, internal=True)
        return obj

    def write(
        self,
        bucket: str,
        name: str,
        payload: Any,
        size: int,
        content_type: str = "application/octet-stream",
        user_meta: Optional[Dict[str, Any]] = None,
        intermediate: bool = False,
        pipeline_id: Optional[str] = None,
    ) -> Generator[Any, Any, None]:
        self.store.ensure_bucket(bucket)
        yield from self.store.put(
            bucket,
            name,
            payload,
            size,
            content_type=content_type,
            user_meta=user_meta,
            internal=True,
        )

    def delete(self, bucket: str, name: str) -> Generator[Any, Any, None]:
        yield from self.store.delete(bucket, name, internal=True)
