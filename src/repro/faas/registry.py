"""Function registry (OpenWhisk's CouchDB-backed function metadata).

Besides the function specs themselves, the registry stores per-function
ML model blobs: the paper keeps each function's memory model in
OpenWhisk's CouchDB so that fetching a function's metadata also fetches
its model (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.faas.errors import NoSuchFunction


@dataclass
class FunctionSpec:
    """Static description of one deployed function.

    ``body`` is the function's code: a callable taking an invocation
    context (see :class:`repro.faas.invoker.InvocationContext`) and
    returning a simulation generator.
    """

    name: str
    tenant: str
    body: Callable[..., Any]
    #: Memory the tenant booked (MB); the sandbox default.
    booked_memory_mb: float = 512.0
    #: Input data category, used for feature extraction ("image",
    #: "audio", "video", "text", or None).
    input_kind: Optional[str] = None
    #: Names of the function-specific scalar arguments.
    arg_names: List[str] = field(default_factory=list)
    #: Free-form annotations (e.g. which argument holds the object id).
    annotations: Dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.tenant}/{self.name}"


class FunctionRegistry:
    """All deployed functions plus their stored ML models."""

    def __init__(self):
        self._functions: Dict[str, FunctionSpec] = {}
        self._models: Dict[str, Dict[str, Any]] = {}

    def register(self, spec: FunctionSpec) -> None:
        self._functions[spec.key] = spec

    def get(self, tenant: str, name: str) -> FunctionSpec:
        try:
            return self._functions[f"{tenant}/{name}"]
        except KeyError:
            raise NoSuchFunction(f"{tenant}/{name}") from None

    def get_by_key(self, key: str) -> FunctionSpec:
        try:
            return self._functions[key]
        except KeyError:
            raise NoSuchFunction(key) from None

    def __contains__(self, key: str) -> bool:
        return key in self._functions

    def all_functions(self) -> List[FunctionSpec]:
        return list(self._functions.values())

    # -- model storage (CouchDB analog) ------------------------------------

    def store_model(self, function_key: str, kind: str, model: Any) -> None:
        """Persist a trained model blob under (function, kind)."""
        if function_key not in self._functions:
            raise NoSuchFunction(function_key)
        self._models.setdefault(function_key, {})[kind] = model

    def load_model(self, function_key: str, kind: str) -> Optional[Any]:
        return self._models.get(function_key, {}).get(kind)
