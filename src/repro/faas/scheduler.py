"""Load-balancer policies: choosing the worker node for an invocation."""

from __future__ import annotations

import hashlib
from typing import List, Optional

from repro.faas.invoker import Invoker
from repro.faas.records import InvocationRequest


def home_index(tenant: str, function: str, n_nodes: int) -> int:
    """OpenWhisk's home-worker hash over (tenant, function)."""
    digest = hashlib.sha1(f"{tenant}/{function}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % n_nodes


class Scheduler:
    """Strategy interface for node selection."""

    def choose_node(
        self,
        request: InvocationRequest,
        memory_mb: float,
        invokers: List[Invoker],
        exclude: Optional[set] = None,
    ) -> Optional[Invoker]:
        raise NotImplementedError


class HomeWorkerScheduler(Scheduler):
    """OpenWhisk's native policy (§2.1).

    Requests go to the *home* worker (hash of tenant and function id)
    when it has an idle warm sandbox or room for a new one; otherwise
    the search proceeds round-robin from the home index; as a last
    resort the node with the most free memory is picked.
    """

    def choose_node(
        self,
        request: InvocationRequest,
        memory_mb: float,
        invokers: List[Invoker],
        exclude: Optional[set] = None,
    ) -> Optional[Invoker]:
        exclude = exclude or set()
        candidates = [inv for inv in invokers if inv.node_id not in exclude]
        if not candidates:
            return None
        start = home_index(request.tenant, request.function, len(candidates))
        ordered = candidates[start:] + candidates[:start]
        # First pass: a node with an idle warm sandbox (avoid cold start).
        for invoker in ordered:
            if invoker.idle_sandboxes(request.key):
                return invoker
        # Second pass: a node with room for a fresh sandbox.
        for invoker in ordered:
            if invoker.available_mb >= memory_mb:
                return invoker
        # Last resort: the node with the most free memory (its
        # ensure-capacity hook may still make room).
        return max(candidates, key=lambda inv: inv.available_mb)
