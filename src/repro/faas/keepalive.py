"""Pluggable sandbox keep-alive policies.

§2.2.1 discusses two worlds: the fixed idle timeout used by OpenWhisk
(600 s) and AWS Lambda, and the histogram-based policy of Shahrad et
al. (ATC'20) that predicts each function's next invocation and keeps
the sandbox just long enough.  OFC only assumes *some* keep-alive
exists; this module makes the policy a first-class, swappable object so
the interaction between keep-alive behaviour and harvested cache memory
can be studied.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict

from repro.faas.sandbox import Sandbox


class KeepAlivePolicy:
    """Decides how long an idle sandbox survives."""

    def timeout_for(self, sandbox: Sandbox) -> float:
        raise NotImplementedError

    def record_invocation(self, function_key: str, now: float) -> None:
        """Telemetry hook: called for every invocation arrival."""


class FixedKeepAlive(KeepAlivePolicy):
    """OpenWhisk's policy: a constant idle timeout (600 s)."""

    def __init__(self, timeout_s: float = 600.0):
        if timeout_s <= 0:
            raise ValueError("keep-alive timeout must be positive")
        self.timeout_s = timeout_s

    def timeout_for(self, sandbox: Sandbox) -> float:
        return self.timeout_s


class HistogramKeepAlive(KeepAlivePolicy):
    """Shahrad-style adaptive policy.

    Tracks each function's inter-arrival times in a sliding window and
    keeps idle sandboxes alive for the observed high percentile of that
    distribution (so the sandbox is warm for the *likely* next
    invocation but reclaimed quickly for rarely-invoked functions).
    Falls back to ``default_s`` until enough history exists — the
    "must fall back on sandbox keep-alive" case §2.2.1 points out.
    """

    def __init__(
        self,
        percentile: float = 95.0,
        window: int = 50,
        min_history: int = 5,
        default_s: float = 600.0,
        floor_s: float = 10.0,
        cap_s: float = 1200.0,
    ):
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        self.percentile = percentile
        self.window = window
        self.min_history = min_history
        self.default_s = default_s
        self.floor_s = floor_s
        self.cap_s = cap_s
        self._last_arrival: Dict[str, float] = {}
        self._intervals: Dict[str, Deque[float]] = defaultdict(
            lambda: deque(maxlen=window)
        )

    def record_invocation(self, function_key: str, now: float) -> None:
        last = self._last_arrival.get(function_key)
        if last is not None and now > last:
            self._intervals[function_key].append(now - last)
        self._last_arrival[function_key] = now

    def timeout_for(self, sandbox: Sandbox) -> float:
        intervals = self._intervals.get(sandbox.function_key)
        if not intervals or len(intervals) < self.min_history:
            return self.default_s
        ordered = sorted(intervals)
        index = min(
            len(ordered) - 1,
            max(0, int(len(ordered) * self.percentile / 100.0)),
        )
        predicted = ordered[index]
        # Keep a margin over the predicted gap.
        return min(self.cap_s, max(self.floor_s, 1.2 * predicted))
