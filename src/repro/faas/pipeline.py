"""Function pipelines (OpenWhisk sequences/compositions, §2.1).

A pipeline is a list of stages; each stage fans out into one or more
invocations of a single function.  Stage *i*'s invocations all complete
before stage *i+1* starts (fork-join), which is how the paper's
analytics workloads (MapReduce word count, THIS, IMAD, ServerlessBench
Image Processing) are structured.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.faas.records import InvocationRecord, Phases

_next_pipeline = itertools.count(1)


def reset_pipeline_ids() -> None:
    """Restart the process-global pipeline-id counter (see
    :func:`repro.faas.reset_id_counters`)."""
    global _next_pipeline
    _next_pipeline = itertools.count(1)

#: A planner returns one (args, input_ref) tuple per branch invocation.
StagePlanner = Callable[
    [List[str], Dict[str, Any]], List[Tuple[Dict[str, Any], Optional[str]]]
]


def _default_planner(
    prev_refs: List[str], base_args: Dict[str, Any]
) -> List[Tuple[Dict[str, Any], Optional[str]]]:
    """One invocation consuming the first output of the previous stage."""
    return [(dict(base_args), prev_refs[0] if prev_refs else None)]


def fan_out_over_refs(
    prev_refs: List[str], base_args: Dict[str, Any]
) -> List[Tuple[Dict[str, Any], Optional[str]]]:
    """One invocation per previous-stage output (map semantics)."""
    return [(dict(base_args), ref) for ref in prev_refs]


@dataclass
class Stage:
    """One pipeline stage: a function plus its fan-out planner."""

    function: str
    planner: StagePlanner = _default_planner


@dataclass
class Pipeline:
    """A named sequence of stages."""

    name: str
    stages: List[Stage]

    def new_id(self) -> str:
        return f"{self.name}-{next(_next_pipeline)}"


@dataclass
class StageRecord:
    """Aggregated telemetry of one stage's fork-join execution."""

    function: str
    started_at: float
    finished_at: float
    records: List[InvocationRecord] = field(default_factory=list)

    @property
    def wall_time(self) -> float:
        return self.finished_at - self.started_at

    def phase_split(self) -> Phases:
        """Wall-clock attribution of the stage's E/T/L phases.

        Parallel branches overlap, so per-branch durations cannot be
        summed; instead the stage's wall time is split proportionally to
        the average per-branch phase fractions.
        """
        ok_records = [r for r in self.records if r.status == "ok"]
        if not ok_records:
            return Phases()
        n = len(ok_records)
        totals = [r.phases.total or 1e-12 for r in ok_records]
        frac_e = sum(r.phases.extract / t for r, t in zip(ok_records, totals)) / n
        frac_t = sum(r.phases.transform / t for r, t in zip(ok_records, totals)) / n
        frac_l = sum(r.phases.load / t for r, t in zip(ok_records, totals)) / n
        wall = self.wall_time
        return Phases(
            extract=wall * frac_e, transform=wall * frac_t, load=wall * frac_l
        )


@dataclass
class PipelineRecord:
    """Telemetry of one full pipeline execution."""

    pipeline: str
    pipeline_id: str
    submitted_at: float
    finished_at: float = 0.0
    stage_records: List[StageRecord] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.finished_at - self.submitted_at

    @property
    def status(self) -> str:
        for stage in self.stage_records:
            if any(r.status != "ok" for r in stage.records):
                return "failed"
        return "ok"

    def phase_split(self) -> Phases:
        """End-to-end E/T/L attribution (sum of per-stage splits)."""
        combined = Phases()
        for stage in self.stage_records:
            split = stage.phase_split()
            combined.extract += split.extract
            combined.transform += split.transform
            combined.load += split.load
        return combined

    def all_records(self) -> List[InvocationRecord]:
        return [r for stage in self.stage_records for r in stage.records]
