"""Worker nodes: sandbox lifecycle and invocation execution."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.faas.dataclient import DataClient
from repro.faas.errors import OOMKilled, ResourceExhausted
from repro.faas.records import InvocationRecord
from repro.faas.registry import FunctionSpec
from repro.faas.sandbox import Sandbox, SandboxState
from repro.sim.kernel import Kernel
from repro.sim.latency import COLD_START, DOCKER_UPDATE, WARM_START

#: Simulation granularity of the Transform phase's memory ramp: the
#: footprint grows linearly across this many slices, and cgroup-limit
#: crossings (OOM, monitor rescue) are detected at slice boundaries.
COMPUTE_SLICES = 20

#: Tolerance on limit checks (cgroup accounting is page-granular).
_LIMIT_EPS_MB = 0.5

#: Tolerance on node memory arithmetic (float MB <-> byte conversions).
_MEM_EPS_MB = 1e-3


@dataclass
class InvokerStats:
    cold_starts: int = 0
    warm_starts: int = 0
    sandboxes_created: int = 0
    sandboxes_destroyed: int = 0
    sandboxes_reaped: int = 0
    oom_kills: int = 0
    resizes: int = 0
    capacity_rejections: int = 0


class InvocationContext:
    """What a function body sees while executing.

    Provides the ETL primitives (``read``/``write``/``delete`` via the
    data client, ``compute`` for the Transform phase) and records
    per-phase wall-clock durations into the invocation record.
    """

    def __init__(
        self,
        kernel: Kernel,
        record: InvocationRecord,
        sandbox: Sandbox,
        data: DataClient,
        monitor: Optional[Any] = None,
    ):
        self.kernel = kernel
        self.record = record
        self.sandbox = sandbox
        self.data = data
        self.monitor = monitor
        #: Scratch space for pipeline stages to pass values forward.
        self.locals: Dict[str, Any] = {}

    @property
    def request(self):
        return self.record.request

    @property
    def args(self) -> Dict[str, Any]:
        return self.record.request.args

    def read(self, bucket: str, name: str):
        start = self.kernel.now
        obj = yield from self.data.read(bucket, name)
        self.record.phases.extract += self.kernel.now - start
        self.record.bytes_in += obj.meta.size if hasattr(obj, "meta") else 0
        return obj

    def write(
        self,
        bucket: str,
        name: str,
        payload: Any,
        size: int,
        content_type: str = "application/octet-stream",
        user_meta: Optional[Dict[str, Any]] = None,
        intermediate: Optional[bool] = None,
    ):
        if intermediate is None:
            # Outputs of non-final pipeline stages are intermediate data
            # (removed from the cache when the pipeline ends, §6.3).
            request = self.record.request
            intermediate = (
                request.pipeline_id is not None and not request.final_stage
            )
        start = self.kernel.now
        yield from self.data.write(
            bucket,
            name,
            payload,
            size,
            content_type=content_type,
            user_meta=user_meta,
            intermediate=intermediate,
            pipeline_id=self.record.request.pipeline_id,
        )
        self.record.phases.load += self.kernel.now - start
        self.record.bytes_out += size
        self.record.output_refs.append(f"{bucket}/{name}")

    def delete(self, bucket: str, name: str):
        start = self.kernel.now
        yield from self.data.delete(bucket, name)
        self.record.phases.load += self.kernel.now - start

    def compute(self, duration: float, footprint_mb: float):
        """Run the Transform phase: ``duration`` seconds of work whose
        resident set grows linearly to ``footprint_mb``.

        If the footprint crosses the sandbox's cgroup limit, the OFC
        Monitor (when attached) gets a chance to raise the cap; if it
        does not, the invocation is OOM-killed at the crossing point —
        exactly the failure mode §5.3.1 mitigates.
        """
        if duration < 0 or footprint_mb < 0:
            raise ValueError("duration and footprint must be non-negative")
        tracer = self.kernel.tracer
        span = (
            tracer.start("faas.compute", function=self.record.request.function)
            if tracer.enabled
            else None
        )
        start = self.kernel.now
        slices = COMPUTE_SLICES if duration > 0 else 1
        for i in range(1, slices + 1):
            if duration > 0:
                yield duration / slices
            usage = footprint_mb * i / slices
            self.sandbox.current_usage_mb = usage
            self.record.peak_memory_mb = max(self.record.peak_memory_mb, usage)
            if usage > self.sandbox.memory_limit_mb + _LIMIT_EPS_MB:
                rescued = False
                if self.monitor is not None:
                    rescued = yield from self.monitor.on_pressure(
                        self, usage, footprint_mb
                    )
                if not rescued:
                    self.record.peak_memory_mb = max(
                        self.record.peak_memory_mb, self.sandbox.memory_limit_mb
                    )
                    if span is not None:
                        span.finish(status="oom")
                    raise OOMKilled(
                        f"{self.sandbox.sandbox_id}: {usage:.0f} MB > "
                        f"{self.sandbox.memory_limit_mb:.0f} MB limit",
                        needed_mb=footprint_mb,
                    )
        self.record.phases.transform += self.kernel.now - start
        if span is not None:
            span.finish(status="ok")


class Invoker:
    """One worker node: memory arbitration plus sandbox management.

    Node memory is split between sandboxes (``committed_mb``), the OFC
    cache (``cache_reserved_mb``, driven by the CacheAgent), the OFC
    slack pool (``slack_mb``, §6.4) and free memory.  The baselines
    leave the cache and slack at zero.
    """

    def __init__(
        self,
        kernel: Kernel,
        node_id: str,
        total_memory_mb: float,
        keepalive_s: float = 600.0,
        rng=None,
    ):
        self.kernel = kernel
        self.node_id = node_id
        self.total_memory_mb = total_memory_mb
        self.keepalive_s = keepalive_s
        self.rng = rng
        self.sandboxes: List[Sandbox] = []
        #: Creation-ordered sandboxes per function key (a view over
        #: ``sandboxes``): warm-start lookup scans one function's
        #: sandboxes instead of the whole node.
        self._by_function: Dict[str, List[Sandbox]] = {}
        #: Memoized ``committed_mb``; ``None`` marks it stale.  Every
        #: mutation of the committed set funnels through ``_notify``
        #: (create/destroy/resize), which invalidates, and the
        #: recompute evaluates the exact original expression so the
        #: float result is bit-identical to an uncached scan.
        self._committed_cache: Optional[float] = None
        self.cache_reserved_mb = 0.0
        self.slack_mb = 0.0
        #: Optional adaptive keep-alive policy; None = fixed timeout.
        self.keepalive_policy = None
        #: Hook: generator ``(invoker, needed_mb) -> bool`` that tries to
        #: free node memory (OFC shrinks its cache here).
        self.ensure_capacity: Optional[Callable[..., Generator]] = None
        #: Callbacks ``(event, sandbox)`` with event in {"created",
        #: "destroyed", "resized"}; OFC's CacheAgent listens to retarget
        #: the cache size.
        self.listeners: List[Callable[[str, Sandbox], None]] = []
        self.stats = InvokerStats()

    # -- memory accounting -------------------------------------------------

    @property
    def committed_mb(self) -> float:
        cached = self._committed_cache
        if cached is None:
            cached = self._committed_cache = sum(
                s.memory_limit_mb for s in self.sandboxes if s.alive
            )
        return cached

    @property
    def available_mb(self) -> float:
        return (
            self.total_memory_mb
            - self.committed_mb
            - self.cache_reserved_mb
            - self.slack_mb
        )

    def _notify(self, event: str, sandbox: Sandbox) -> None:
        self._committed_cache = None
        for listener in self.listeners:
            listener(event, sandbox)

    def _forget(self, sandbox: Sandbox) -> None:
        """Drop a sandbox from the node lists (idempotent)."""
        if sandbox in self.sandboxes:
            self.sandboxes.remove(sandbox)
        peers = self._by_function.get(sandbox.function_key)
        if peers is not None and sandbox in peers:
            peers.remove(sandbox)

    def _make_room(self, needed_mb: float):
        """Try to free ``needed_mb`` of node memory via the hook."""
        if needed_mb <= self.available_mb + _MEM_EPS_MB:
            return True
        if self.ensure_capacity is None:
            return False
        freed = yield from self.ensure_capacity(self, needed_mb - self.available_mb)
        return bool(freed) and self.available_mb >= needed_mb - _MEM_EPS_MB

    # -- sandbox management ---------------------------------------------------

    def idle_sandboxes(self, function_key: str) -> List[Sandbox]:
        # The per-function view preserves creation order, so this is the
        # exact subsequence the full-node scan produced (ties in
        # find_sandbox resolve to the same sandbox).
        indexed = self._by_function.get(function_key)
        if not indexed:
            return []
        return [s for s in indexed if s.alive and s.idle]

    def find_sandbox(
        self, function_key: str, preferred_mb: Optional[float] = None
    ) -> Optional[Sandbox]:
        """Best idle sandbox for the function, if any.

        With ``preferred_mb`` (OFC), the sandbox whose current limit is
        closest to the predicted size wins (§6.5 criterion i); ties (and
        the baseline) go to the most recently used (criterion iv).
        """
        idle = self.idle_sandboxes(function_key)
        if not idle:
            return None
        if preferred_mb is None:
            return max(idle, key=lambda s: s.last_used_at)
        return min(
            idle,
            key=lambda s: (abs(s.memory_limit_mb - preferred_mb), -s.last_used_at),
        )

    def create_sandbox(
        self, spec: FunctionSpec, memory_mb: float
    ) -> Generator[Any, Any, Sandbox]:
        """Cold-start a new sandbox; raises ResourceExhausted on OOM node.

        The memory is committed (sandbox appended) *before* any yield so
        that concurrent cache retargeting sees the reservation and
        cannot re-grow the cache into it.
        """
        sandbox = Sandbox(self.node_id, spec.key, memory_mb, self.kernel.now)
        self.sandboxes.append(sandbox)
        self._by_function.setdefault(spec.key, []).append(sandbox)
        self._notify("created", sandbox)
        if self.available_mb < -_MEM_EPS_MB:
            fits = yield from self._make_room(0.0)
            if not fits:
                self._forget(sandbox)
                sandbox.kill()
                self._notify("destroyed", sandbox)
                self.stats.capacity_rejections += 1
                raise ResourceExhausted(
                    f"{self.node_id}: no room for {memory_mb:.0f} MB sandbox"
                )
        self.stats.sandboxes_created += 1
        self.stats.cold_starts += 1
        yield COLD_START.sample(self.rng)
        sandbox.state = SandboxState.IDLE
        sandbox.last_used_at = self.kernel.now
        return sandbox

    def resize_sandbox(
        self, sandbox: Sandbox, memory_mb: float
    ) -> Generator[Any, Any, None]:
        """Change a sandbox's cgroup memory limit.

        The accounting change is immediate; the docker-update latency is
        paid in the background (§6.4 performs all adjustments
        asynchronously), so this generator only blocks when node memory
        must be reclaimed first.
        """
        old_limit = sandbox.memory_limit_mb
        sandbox.set_limit(memory_mb)  # commit accounting before yielding
        self._notify("resized", sandbox)
        if memory_mb > old_limit and self.available_mb < -_MEM_EPS_MB:
            fits = yield from self._make_room(0.0)
            if not fits:
                sandbox.set_limit(old_limit)
                self._notify("resized", sandbox)
                self.stats.capacity_rejections += 1
                raise ResourceExhausted(
                    f"{self.node_id}: no room to grow sandbox to "
                    f"{memory_mb:.0f} MB"
                )
        self.stats.resizes += 1
        if self.kernel._tracing:
            # Keep the process (and its span) under tracing.
            def background_update():
                yield DOCKER_UPDATE.sample(self.rng)

            self.kernel.process(background_update(), name="docker-update")
        else:
            # Slot-identical fire-and-forget sleep: the delay thunk runs
            # at the bootstrap-resume position, so the RNG draw lands at
            # the same point in the stream as the generator body did.
            rng = self.rng
            self.kernel.call_later(lambda: DOCKER_UPDATE.sample(rng))

    def destroy_sandbox(self, sandbox: Sandbox, reaped: bool = False) -> None:
        if not sandbox.alive:
            return
        sandbox.kill()
        self._forget(sandbox)
        self.stats.sandboxes_destroyed += 1
        if reaped:
            self.stats.sandboxes_reaped += 1
        self._notify("destroyed", sandbox)

    def _schedule_reap(self, sandbox: Sandbox) -> None:
        """Arm the keep-alive timer for an idle sandbox."""
        generation = sandbox.use_generation
        if self.keepalive_policy is not None:
            timeout_s = self.keepalive_policy.timeout_for(sandbox)
        else:
            timeout_s = self.keepalive_s

        if self.kernel._tracing:
            # Keep the process (and its span) under tracing.
            def reaper():
                yield timeout_s
                if (
                    sandbox.alive
                    and sandbox.idle
                    and sandbox.use_generation == generation
                ):
                    self.destroy_sandbox(sandbox, reaped=True)

            self.kernel.process(reaper(), name=f"reap-{sandbox.sandbox_id}")
            return

        # One reap timer per invocation end is hot; call_later replaces
        # the generator+Process with two plain events on the exact same
        # queue slots (bit-identical schedules).
        def reap(_event):
            if (
                sandbox.alive
                and sandbox.idle
                and sandbox.use_generation == generation
            ):
                self.destroy_sandbox(sandbox, reaped=True)

        self.kernel.call_later(lambda: timeout_s, reap)

    # -- execution ----------------------------------------------------------------

    def execute(
        self,
        spec: FunctionSpec,
        record: InvocationRecord,
        memory_mb: float,
        data_client: DataClient,
        monitor: Optional[Any] = None,
    ) -> Generator[Any, Any, InvocationRecord]:
        """Run one invocation attempt on this node.

        Raises :class:`OOMKilled` (sandbox destroyed, caller retries) or
        :class:`ResourceExhausted` (no memory for the sandbox).
        """
        tracer = self.kernel.tracer
        span = (
            tracer.start("faas.execute", node=self.node_id, function=spec.key)
            if tracer.enabled
            else None
        )
        try:
            sandbox = self.find_sandbox(spec.key, preferred_mb=memory_mb)
            if sandbox is None:
                sandbox = yield from self.create_sandbox(spec, memory_mb)
                record.cold_start = True
                sandbox.reserve()
            else:
                sandbox.reserve()  # before any yield: prevents double-booking
                self.stats.warm_starts += 1
                yield WARM_START.sample(self.rng)
                if abs(sandbox.memory_limit_mb - memory_mb) > _LIMIT_EPS_MB:
                    yield from self.resize_sandbox(sandbox, memory_mb)
            sandbox.begin_invocation(self.kernel.now)
            record.node = self.node_id
            record.sandbox_id = sandbox.sandbox_id
            record.memory_limit_mb = sandbox.memory_limit_mb
            record.started_at = self.kernel.now
            ctx = InvocationContext(
                self.kernel, record, sandbox, data_client, monitor
            )
            try:
                yield from spec.body(ctx)
            except OOMKilled:
                self.stats.oom_kills += 1
                record.oom_kills += 1
                self.destroy_sandbox(sandbox)
                raise
            except BaseException:
                self.destroy_sandbox(sandbox)
                raise
        except OOMKilled:
            if span is not None:
                span.finish(status="oom")
            raise
        except BaseException:
            if span is not None:
                span.finish(status="error")
            raise
        record.finished_at = self.kernel.now
        # The final limit may have been raised mid-flight by the Monitor.
        record.memory_limit_mb = sandbox.memory_limit_mb
        sandbox.end_invocation(self.kernel.now)
        self._schedule_reap(sandbox)
        if span is not None:
            span.finish(status="ok", cold=record.cold_start)
        return record
