"""Exception types for the FaaS platform."""


class FaaSError(Exception):
    """Base class for platform failures."""


class NoSuchFunction(FaaSError):
    """The invoked function is not registered."""


class OOMKilled(FaaSError):
    """The sandbox exceeded its memory limit and was killed.

    ``needed_mb`` carries the actual footprint so the retry path (and
    OFC's model correction) can use it.
    """

    def __init__(self, message: str, needed_mb: float = 0.0):
        super().__init__(message)
        self.needed_mb = needed_mb


class ResourceExhausted(FaaSError):
    """No worker node has enough free memory for the sandbox."""


class InvocationFailed(FaaSError):
    """The invocation failed after exhausting its retries."""
