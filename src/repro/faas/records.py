"""Invocation requests and execution records.

An :class:`InvocationRecord` is the platform's unit of telemetry: it
carries the per-phase (Extract/Transform/Load) timings the evaluation
plots, the memory sizing decisions, and the request features that feed
OFC's ML models.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

_next_id = itertools.count(1)


def reset_request_ids() -> None:
    """Restart the process-global request-id counter.

    Request ids leak into object keys (pipeline intermediates embed
    them), so a deployment's cache behaviour depends on how many
    invocations ran earlier in the same process.  Benches that promise
    a deterministic grid regardless of worker fan-out reset the
    counter before each cell (see :func:`repro.faas.reset_id_counters`).
    """
    global _next_id
    _next_id = itertools.count(1)


@dataclass
class InvocationRequest:
    """One function invocation request as received by the Controller."""

    function: str
    tenant: str
    #: Scalar arguments (function-specific; used as ML features).
    args: Dict[str, Any] = field(default_factory=dict)
    #: Input object reference, as "bucket/name" (None for generators).
    input_ref: Optional[str] = None
    #: Where to write the output (bucket name).
    output_bucket: str = "outputs"
    #: Marks requests that belong to a pipeline execution.
    pipeline_id: Optional[str] = None
    #: True for the last stage of a pipeline (outputs are final).
    final_stage: bool = True
    request_id: int = field(default_factory=lambda: next(_next_id))

    @property
    def key(self) -> str:
        return f"{self.tenant}/{self.function}"


@dataclass
class Phases:
    """Wall-clock duration of each ETL phase, in seconds."""

    extract: float = 0.0
    transform: float = 0.0
    load: float = 0.0

    @property
    def total(self) -> float:
        return self.extract + self.transform + self.load

    @property
    def el_fraction(self) -> float:
        """Fraction of the invocation spent in Extract+Load."""
        if self.total == 0.0:
            return 0.0
        return (self.extract + self.load) / self.total


@dataclass
class InvocationRecord:
    """Telemetry for one invocation attempt chain (including retries)."""

    request: InvocationRequest
    node: str = ""
    sandbox_id: str = ""
    cold_start: bool = False
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    phases: Phases = field(default_factory=Phases)
    #: Sandbox memory limit during the (final, successful) attempt.
    memory_limit_mb: float = 0.0
    #: Peak memory actually used by the function body.
    peak_memory_mb: float = 0.0
    #: Memory the tenant booked for the function.
    booked_memory_mb: float = 0.0
    #: ML features extracted from the request (set by OFC).
    features: Dict[str, Any] = field(default_factory=dict)
    #: Predicted memory (MB), if a predictor was consulted.
    predicted_memory_mb: Optional[float] = None
    #: Raw predicted interval index (before the conservative bump).
    predicted_interval: Optional[int] = None
    #: Bytes moved during Extract and Load (feeds the cache-benefit label).
    bytes_in: int = 0
    bytes_out: int = 0
    #: Predicted caching benefit, if a predictor was consulted.
    should_cache: Optional[bool] = None
    retries: int = 0
    oom_kills: int = 0
    status: str = "pending"  # pending | ok | failed
    #: Why the invocation failed (e.g. a data-plane outage), if it did.
    error: str = ""
    #: Output object reference(s) produced by the invocation.
    output_refs: list = field(default_factory=list)

    @property
    def duration(self) -> float:
        """End-to-end latency, submission to completion."""
        return self.finished_at - self.submitted_at

    @property
    def execution_time(self) -> float:
        """Execution latency excluding queueing/scheduling."""
        return self.finished_at - self.started_at

    @property
    def wasted_memory_mb(self) -> float:
        """Booked-but-unused memory during this invocation."""
        return max(0.0, self.booked_memory_mb - self.peak_memory_mb)
