"""Function sandboxes (Docker-container semantics).

A sandbox belongs to one (tenant, function) pair, runs one invocation
at a time, has a cgroup-style memory limit, and is kept alive after an
invocation for ``keepalive_s`` in anticipation of the next one (§2.1).
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Optional

_next_id = itertools.count(1)


def reset_sandbox_ids() -> None:
    """Restart the process-global sandbox-id counter (see
    :func:`repro.faas.reset_id_counters`)."""
    global _next_id
    _next_id = itertools.count(1)


class SandboxState(Enum):
    STARTING = "starting"
    IDLE = "idle"
    BUSY = "busy"
    DEAD = "dead"


class Sandbox:
    """One container sandbox on a worker node."""

    def __init__(
        self,
        node_id: str,
        function_key: str,
        memory_limit_mb: float,
        created_at: float,
    ):
        self.sandbox_id = f"sbx-{next(_next_id)}"
        self.node_id = node_id
        self.function_key = function_key
        self.memory_limit_mb = memory_limit_mb
        self.created_at = created_at
        self.last_used_at = created_at
        self.state = SandboxState.STARTING
        #: Peak memory used by the invocation currently running.
        self.current_usage_mb = 0.0
        #: Number of invocations served (warm reuse counter).
        self.invocations = 0
        #: Generation counter for keep-alive bookkeeping: bumped on each
        #: use so that stale reap timers can detect they are outdated.
        self.use_generation = 0

    @property
    def alive(self) -> bool:
        return self.state not in (SandboxState.DEAD,)

    @property
    def idle(self) -> bool:
        return self.state == SandboxState.IDLE

    def reserve(self) -> None:
        """Claim an idle sandbox for an incoming invocation.

        Must be called synchronously at selection time (before any
        simulation yield) so that two concurrent invocations can never
        pick the same sandbox.
        """
        if self.state != SandboxState.IDLE:
            raise RuntimeError(
                f"{self.sandbox_id}: reserve in state {self.state}"
            )
        self.state = SandboxState.BUSY
        self.use_generation += 1

    def begin_invocation(self, now: float) -> None:
        if self.state != SandboxState.BUSY:
            raise RuntimeError(
                f"{self.sandbox_id}: begin_invocation in state {self.state}"
            )
        self.last_used_at = now
        self.current_usage_mb = 0.0
        self.invocations += 1

    def end_invocation(self, now: float) -> None:
        if self.state != SandboxState.BUSY:
            raise RuntimeError(
                f"{self.sandbox_id}: end_invocation in state {self.state}"
            )
        self.state = SandboxState.IDLE
        self.last_used_at = now
        self.use_generation += 1
        self.current_usage_mb = 0.0

    def set_limit(self, memory_mb: float) -> None:
        """Apply a new cgroup memory limit (the latency of the docker
        update path is charged by the caller, asynchronously per §6.4)."""
        if memory_mb <= 0:
            raise ValueError("memory limit must be positive")
        self.memory_limit_mb = memory_mb

    def kill(self) -> None:
        self.state = SandboxState.DEAD

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Sandbox {self.sandbox_id} fn={self.function_key} "
            f"{self.state.value} limit={self.memory_limit_mb}MB>"
        )
