"""Code-generated dispatch loops for :class:`repro.sim.kernel.Kernel`.

This is the kernel-side counterpart of :mod:`repro.ml.compiled`: the
event-dispatch loop is emitted as Python source once at import time,
``exec``-compiled, and installed per kernel at construction.  Three
specializations over the generic loop:

* the heap/FIFO drain, the ``_TRIGGERED`` delivery arm and the process
  resume are fused into one flat function — a process wake runs the
  generator ``send`` directly instead of dispatching through
  ``Event._run_callbacks`` → ``Process._resume`` (two frames per event
  saved);
* **fused callback delivery**: a triggered event whose callback is a
  plain :meth:`Process._resume` bound method (the overwhelmingly
  common case — one process blocked on a timeout, an event or another
  process) delivers by running the generator ``send``/``throw``
  inline, and list (fan-in) deliveries inline each process-resume
  element the same way; only foreign callables (condition checks,
  ``call_later`` arms, user hooks) still dispatch through a call;
* **direct resume**: when a resumed process yields a positive delay and
  its wake instant is strictly earlier than everything on the heap
  (with the FIFO empty), the loop advances the clock and resumes the
  generator immediately — no heap push/pop, no sequence number.

All are provably order-preserving, so schedules are bit-identical to
the generic loop (CI runs the bench gate with the fast path forced on
and off and diffs the exported metrics):

* the fused arms execute the exact statements of the generic loop, in
  the same order (the delivery chain mirrors ``Process._resume``
  statement for statement, including the ``defused`` handshake on the
  throw path, so a fused failure delivery can never leave an
  un-defused exception behind);
* direct resume fires only when the woken process would be the next
  occurrence regardless of its sequence number (strictly earliest wake
  time, empty FIFO), and nothing else can run between the skipped push
  and the skipped pop, so no observer exists for the elided state
  (``_wake`` bookkeeping, ``_target`` reset, heap entry).  Skipping
  the sequence-number mint is safe because sequence numbers only break
  ties between co-resident heap entries and the skipped mint leaves
  every other mint in the same relative order.  In ``run_until`` the
  delivery chain additionally refuses direct resume while delivering
  the awaited event itself — the generic loop returns control to the
  drain right there, and the fast path must stop at the same instant.

Variant selection happens once at kernel construction (the same policy
:class:`~repro.sim.kernel._TracedProcess` uses): kernels with tracing
enabled keep the generic loop, because the fused resume would skip the
per-process span bookkeeping.  Fault tooling installs the **faulted
variant** via :meth:`~repro.sim.kernel.Kernel.use_faulted_dispatch`:
the same generated semantics compiled as a separate unit
(``<sim-fastpath-faulted>``), so profiles and tracebacks attribute
failure-path dispatch distinctly and the variant is parity-gated on
its own.  The fault state lives on the components, not the kernel —
the injector's driver and episode processes are ordinary processes —
so fault-injected kernels keep the fused drain and the direct-resume
chain for the whole run instead of downgrading to the generic loop.

Opt out globally with ``REPRO_SIM_FASTPATH=0`` (or ``set_enabled``),
which routes every variant (faulted included) through the generic
loop and also disables the batched-RNG wiring keyed off
:func:`rng_batching_enabled`, so "off" is the exact pre-fast-path
system.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = [
    "enabled",
    "set_enabled",
    "rng_batching_enabled",
    "compile_dispatch",
    "make_dispatch",
    "dispatch_source",
]


def _env_enabled() -> bool:
    raw = os.environ.get("REPRO_SIM_FASTPATH", "1").strip().lower()
    return raw not in ("0", "false", "off", "no")


_ENABLED = _env_enabled()


def enabled() -> bool:
    """Whether new kernels install the generated dispatch loop."""
    return _ENABLED


def set_enabled(value: bool) -> None:
    """Toggle the fast path for kernels built after this call."""
    global _ENABLED
    _ENABLED = bool(value)


def rng_batching_enabled() -> bool:
    """Whether single-distribution RNG streams are served batched.

    Rides the same knob as the dispatch loop so forcing
    ``REPRO_SIM_FASTPATH=0`` yields the exact generic system.
    """
    return _ENABLED


# ---------------------------------------------------------------------------
# Source templates.
# ---------------------------------------------------------------------------

#: Fused resume: advance the generator until it blocks, schedules a
#: future wake that something else precedes, or terminates.  Mirrors
#: ``Process._resume`` statement for statement; ``{limit_guard}``
#: bounds direct resume by ``run(until=...)``'s limit.  ``event`` is
#: the process, ``when`` the current instant (updated in place so the
#: enclosing drain keeps using the advanced clock).
_RESUME_CHAIN = """\
kernel._active_process = event
send = event._send
while True:
    try:
        target = send(None)
    except StopIteration as stop:
        kernel._active_process = None
        event._target = None
        event._value = stop.value
        event._state = _TRIGGERED
        ipush(event)
        break
    except Interrupt as interrupt_exc:
        kernel._active_process = None
        event._target = None
        event._exception = interrupt_exc
        event.defused = False
        event._state = _TRIGGERED
        ipush(event)
        break
    except BaseException as failure:
        kernel._active_process = None
        event._target = None
        event._exception = failure
        event.defused = False
        event._state = _TRIGGERED
        ipush(event)
        break
    cls = target.__class__
    if cls is float or cls is int:
        if target < 0:
            raise SimulationError(f"negative sleep delay: {{target}}")
        wake = when + target
        if wake == when:
            event._wake = when
            ipush(event)
            break
        if not immediate and (not queue or wake < queue[0][0]){limit_guard}:
            kernel._now = when = wake
            continue
        event._wake = wake
        heappush(queue, (wake, seqn(), event))
        break
    try:
        foreign = target.kernel is not kernel
    except AttributeError:
        raise SimulationError(
            f"process {{event.name!r}} yielded {{target!r}}, "
            "expected an Event"
        ) from None
    if foreign:
        raise SimulationError("yielded an event from another kernel")
    event._target = target
    if target._state != _PROCESSED:
        callbacks = target.callbacks
        if callbacks is None:
            target.callbacks = event._cb
        elif callbacks.__class__ is list:
            callbacks.append(event._cb)
        else:
            target.callbacks = [callbacks, event._cb]
    else:
        target.wait(event._cb)
    break"""

#: Fused single-callback delivery: the triggered event's one waiter is
#: a plain ``Process._resume`` bound method, so deliver by advancing
#: the generator inline — value on the first send, ``None`` on the
#: direct-resume continuations, throw (after the ``defused``
#: handshake) when the event failed.  ``event`` is the delivered
#: event, ``proc`` the waiter; the sleep path clears ``proc._target``
#: exactly like ``Process._resume`` does (entering via a delivery the
#: process always has a live ``_target``).  ``{target_guard}`` keeps
#: ``run_until`` from sailing past the awaited event's own delivery.
_DELIVERY_CHAIN = """\
proc = callbacks.__self__
kernel._active_process = proc
send = proc._send
value = event._value
exc = event._exception
while True:
    try:
        if exc is None:
            target = send(value)
        else:
            event.defused = True
            target = proc._throw(exc)
            exc = None
    except StopIteration as stop:
        kernel._active_process = None
        proc._target = None
        proc._value = stop.value
        proc._state = _TRIGGERED
        ipush(proc)
        break
    except Interrupt as interrupt_exc:
        kernel._active_process = None
        proc._target = None
        proc._exception = interrupt_exc
        proc.defused = False
        proc._state = _TRIGGERED
        ipush(proc)
        break
    except BaseException as failure:
        kernel._active_process = None
        proc._target = None
        proc._exception = failure
        proc.defused = False
        proc._state = _TRIGGERED
        ipush(proc)
        break
    cls = target.__class__
    if cls is float or cls is int:
        if target < 0:
            raise SimulationError(f"negative sleep delay: {{target}}")
        proc._target = None
        wake = when + target
        if wake == when:
            proc._wake = when
            ipush(proc)
            break
        if not immediate and (not queue or wake < queue[0][0]){limit_guard}{target_guard}:
            kernel._now = when = wake
            value = None
            continue
        proc._wake = wake
        heappush(queue, (wake, seqn(), proc))
        break
    try:
        foreign = target.kernel is not kernel
    except AttributeError:
        raise SimulationError(
            f"process {{proc.name!r}} yielded {{target!r}}, "
            "expected an Event"
        ) from None
    if foreign:
        raise SimulationError("yielded an event from another kernel")
    proc._target = target
    if target._state != _PROCESSED:
        waiters = target.callbacks
        if waiters is None:
            target.callbacks = proc._cb
        elif waiters.__class__ is list:
            waiters.append(proc._cb)
        else:
            target.callbacks = [waiters, proc._cb]
    else:
        target.wait(proc._cb)
    break"""

#: Fused fan-in delivery: each ``Process._resume`` element of a
#: callback list advances its generator inline — one advance, no
#: direct-resume continuation (the clock must not move while later
#: callbacks of the same event are still pending delivery, exactly as
#: in the generic loop).  Foreign callables dispatch through a call.
_LIST_DELIVERY = """\
for callback in callbacks:
    if callback.__class__ is not _MethodType or callback.__func__ is not _PROC_RESUME:
        callback(event)
        continue
    proc = callback.__self__
    kernel._active_process = proc
    exc = event._exception
    try:
        if exc is None:
            target = proc._send(event._value)
        else:
            event.defused = True
            target = proc._throw(exc)
    except StopIteration as stop:
        kernel._active_process = None
        proc._target = None
        proc._value = stop.value
        proc._state = _TRIGGERED
        ipush(proc)
        continue
    except Interrupt as interrupt_exc:
        kernel._active_process = None
        proc._target = None
        proc._exception = interrupt_exc
        proc.defused = False
        proc._state = _TRIGGERED
        ipush(proc)
        continue
    except BaseException as failure:
        kernel._active_process = None
        proc._target = None
        proc._exception = failure
        proc.defused = False
        proc._state = _TRIGGERED
        ipush(proc)
        continue
    cls = target.__class__
    if cls is float or cls is int:
        if target < 0:
            raise SimulationError(f"negative sleep delay: {{target}}")
        proc._target = None
        wake = when + target
        proc._wake = wake
        if wake == when:
            ipush(proc)
        else:
            heappush(queue, (wake, seqn(), proc))
        continue
    try:
        foreign = target.kernel is not kernel
    except AttributeError:
        raise SimulationError(
            f"process {{proc.name!r}} yielded {{target!r}}, "
            "expected an Event"
        ) from None
    if foreign:
        raise SimulationError("yielded an event from another kernel")
    proc._target = target
    if target._state != _PROCESSED:
        waiters = target.callbacks
        if waiters is None:
            target.callbacks = proc._cb
        elif waiters.__class__ is list:
            waiters.append(proc._cb)
        else:
            target.callbacks = [waiters, proc._cb]
    else:
        target.wait(proc._cb)"""

#: One occurrence: the inlined ``_TRIGGERED`` arm (Event._run_callbacks
#: without the method call, with process resumes fused through the
#: delivery chains), the ``_PENDING`` arm fused with the resume chain,
#: and the ``_PROCESSED`` redelivery arm via the method.  The fused
#: single-resume branch skips the unhandled-failure tail: a failed
#: event delivered to a process is defused on the throw path, so the
#: tail can never raise there.
_DISPATCH_ARMS = """\
state = event._state
if state == _TRIGGERED:
    event._state = _PROCESSED
    callbacks = event.callbacks
    if callbacks is None:
        exc = event._exception
        if exc is not None and not event.defused:
            raise exc
    elif callbacks.__class__ is _MethodType and callbacks.__func__ is _PROC_RESUME:
        event.callbacks = None
{delivery_chain}
    else:
        event.callbacks = None
        if callbacks.__class__ is list:
{list_delivery}
        else:
            callbacks(event)
        exc = event._exception
        if exc is not None and not event.defused:
            raise exc
elif state == _PENDING:
    if not event._started:
        event._started = True
        resumable = True
    elif event._wake == when:
        event._wake = -1.0
        resumable = True
    else:
        resumable = False
    if resumable:
{resume_chain}
else:
    event._run_callbacks()"""

_RUN_TEMPLATE = '''\
def make_run(kernel):
    """Specialized ``Kernel.run`` bound to ``kernel``."""

    def run(until=None):
        if until is not None and until < kernel._now:
            raise SimulationError(
                f"until={{until}} is in the past (now={{kernel._now}})"
            )
        limit = _INF if until is None else until
        queue = kernel._queue
        immediate = kernel._immediate
        ipush = kernel._ipush
        seqn = kernel._seqn
        popleft = immediate.popleft
        while True:
            if immediate:
                when = kernel._now
                while queue and queue[0][0] == when:
                    heappop(queue)[2]._run_callbacks()
            elif queue:
                entry = heappop(queue)
                when = entry[0]
                if when > limit:
                    heappush(queue, entry)
                    break
                kernel._now = when
                event = entry[2]
                while True:
{heap_arms}
                    if not queue or queue[0][0] != when:
                        break
                    event = heappop(queue)[2]
            else:
                break
            while immediate:
                event = popleft()
{fifo_arms}
        if until is not None:
            kernel._now = max(kernel._now, until)

    return run
'''

_RUN_UNTIL_TEMPLATE = '''\
def make_run_until(kernel):
    """Specialized ``Kernel.run_until`` bound to ``kernel``."""

    def run_until(target_event):
        queue = kernel._queue
        immediate = kernel._immediate
        ipush = kernel._ipush
        seqn = kernel._seqn
        popleft = immediate.popleft
        while target_event._state != _PROCESSED:
            if queue and (not immediate or queue[0][0] == kernel._now):
                entry = heappop(queue)
                when = entry[0]
                kernel._now = when
                event = entry[2]
            elif immediate:
                event = popleft()
                when = kernel._now
            else:
                raise SimulationError(
                    "queue drained before the awaited event triggered"
                )
{arms}
        return target_event.value

    return run_until
'''


def _indent(block: str, pad: str) -> str:
    return "\n".join(
        (pad + line) if line else line for line in block.split("\n")
    )


def _arms(limit_guard: str, target_guard: str) -> str:
    """The three-state dispatch arms with every chain specialized."""
    return _DISPATCH_ARMS.format(
        resume_chain=_indent(
            _RESUME_CHAIN.format(limit_guard=limit_guard), " " * 8
        ),
        delivery_chain=_indent(
            _DELIVERY_CHAIN.format(
                limit_guard=limit_guard, target_guard=target_guard
            ),
            " " * 8,
        ),
        list_delivery=_indent(_LIST_DELIVERY, " " * 12),
    )


def dispatch_source() -> str:
    """The generated module source (exposed for tests/inspection)."""
    run_arms = _arms(limit_guard=" and wake <= limit", target_guard="")
    until_arms = _arms(
        limit_guard="", target_guard=" and event is not target_event"
    )
    run_src = _RUN_TEMPLATE.format(
        heap_arms=_indent(run_arms, " " * 20),
        fifo_arms=_indent(run_arms, " " * 16),
    )
    until_src = _RUN_UNTIL_TEMPLATE.format(
        arms=_indent(until_arms, " " * 12),
    )
    return run_src + "\n\n" + until_src


_FACTORIES: Optional[tuple] = None
_FAULTED_FACTORIES: Optional[tuple] = None


def _compile_variant(source: str, internals: dict, filename: str) -> tuple:
    namespace = dict(internals)
    exec(  # noqa: S102 - the source is generated above, not user input
        compile(source, filename, "exec"), namespace
    )
    return (namespace["make_run"], namespace["make_run_until"])


def compile_dispatch(kernel_internals: dict) -> None:
    """Exec-compile the dispatch loops against the kernel's internals.

    Called once from the bottom of :mod:`repro.sim.kernel`;
    ``kernel_internals`` supplies ``heappush``/``heappop``, the event
    state constants, the ``Process._resume`` identity pair used by the
    fused delivery arms, ``SimulationError`` and ``Interrupt`` so this
    module never imports the kernel (no circular import).

    Two variants compile from the same source: the standard unit
    (``<sim-fastpath>``) and the faulted unit
    (``<sim-fastpath-faulted>``) that fault-injected kernels install.
    Identical semantics — the split exists so failure-path dispatch is
    attributable (profiles, tracebacks) and parity-gated on its own.
    """
    global _FACTORIES, _FAULTED_FACTORIES
    source = dispatch_source()
    _FACTORIES = _compile_variant(source, kernel_internals, "<sim-fastpath>")
    _FAULTED_FACTORIES = _compile_variant(
        source, kernel_internals, "<sim-fastpath-faulted>"
    )


def make_dispatch(kernel, faulted: bool = False) -> Optional[tuple]:
    """Specialized ``(run, run_until)`` for ``kernel``, or ``None``.

    Variant selection happens here, once per kernel: traced kernels
    (and anything after ``use_generic_dispatch``) stay on the generic
    loop.  ``faulted=True`` hands out the separately compiled faulted
    unit — same semantics, distinct code object — for kernels driven
    by a :class:`~repro.faults.injector.FaultInjector`.
    """
    factories = _FAULTED_FACTORIES if faulted else _FACTORIES
    if not _ENABLED or factories is None or kernel._tracing:
        return None
    make_run, make_run_until = factories
    return make_run(kernel), make_run_until(kernel)
