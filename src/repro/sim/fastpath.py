"""Code-generated dispatch loops for :class:`repro.sim.kernel.Kernel`.

This is the kernel-side counterpart of :mod:`repro.ml.compiled`: the
event-dispatch loop is emitted as Python source once at import time,
``exec``-compiled, and installed per kernel at construction.  Two
specializations over the generic loop:

* the heap/FIFO drain, the ``_TRIGGERED`` delivery arm and the process
  resume are fused into one flat function — a process wake runs the
  generator ``send`` directly instead of dispatching through
  ``Event._run_callbacks`` → ``Process._resume`` (two frames per event
  saved);
* **direct resume**: when a resumed process yields a positive delay and
  its wake instant is strictly earlier than everything on the heap
  (with the FIFO empty), the loop advances the clock and resumes the
  generator immediately — no heap push/pop, no sequence number.

Both are provably order-preserving, so schedules are bit-identical to
the generic loop (CI runs the bench gate with the fast path forced on
and off and diffs the exported metrics):

* the fused arms execute the exact statements of the generic loop, in
  the same order;
* direct resume fires only when the woken process would be the next
  occurrence regardless of its sequence number (strictly earliest wake
  time, empty FIFO), and nothing else can run between the skipped push
  and the skipped pop, so no observer exists for the elided state
  (``_wake`` bookkeeping, ``_target`` reset, heap entry).  Skipping
  the sequence-number mint is safe because sequence numbers only break
  ties between co-resident heap entries and the skipped mint leaves
  every other mint in the same relative order.

Variant selection happens once at kernel construction (the same policy
:class:`~repro.sim.kernel._TracedProcess` uses): kernels with tracing
enabled keep the generic loop, because the fused resume would skip the
per-process span bookkeeping.  Fault tooling calls
:meth:`~repro.sim.kernel.Kernel.use_generic_dispatch` for the same
reason — not because the fast path misbehaves under faults (the fault
state lives on the components, not the kernel), but so fault runs stay
on the reference loop until a specialized faulted variant is parity
gated.

Opt out globally with ``REPRO_SIM_FASTPATH=0`` (or ``set_enabled``),
which also disables the batched-RNG wiring keyed off
:func:`rng_batching_enabled` so "off" is the exact pre-fast-path
system.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = [
    "enabled",
    "set_enabled",
    "rng_batching_enabled",
    "compile_dispatch",
    "make_dispatch",
    "dispatch_source",
]


def _env_enabled() -> bool:
    raw = os.environ.get("REPRO_SIM_FASTPATH", "1").strip().lower()
    return raw not in ("0", "false", "off", "no")


_ENABLED = _env_enabled()


def enabled() -> bool:
    """Whether new kernels install the generated dispatch loop."""
    return _ENABLED


def set_enabled(value: bool) -> None:
    """Toggle the fast path for kernels built after this call."""
    global _ENABLED
    _ENABLED = bool(value)


def rng_batching_enabled() -> bool:
    """Whether single-distribution RNG streams are served batched.

    Rides the same knob as the dispatch loop so forcing
    ``REPRO_SIM_FASTPATH=0`` yields the exact generic system.
    """
    return _ENABLED


# ---------------------------------------------------------------------------
# Source templates.
# ---------------------------------------------------------------------------

#: Fused resume: advance the generator until it blocks, schedules a
#: future wake that something else precedes, or terminates.  Mirrors
#: ``Process._resume`` statement for statement; ``{limit_guard}``
#: bounds direct resume by ``run(until=...)``'s limit.  ``event`` is
#: the process, ``when`` the current instant (updated in place so the
#: enclosing drain keeps using the advanced clock).
_RESUME_CHAIN = """\
kernel._active_process = event
send = event._send
while True:
    try:
        target = send(None)
    except StopIteration as stop:
        kernel._active_process = None
        event._target = None
        event._value = stop.value
        event._state = _TRIGGERED
        ipush(event)
        break
    except Interrupt as interrupt_exc:
        kernel._active_process = None
        event._target = None
        event._exception = interrupt_exc
        event.defused = False
        event._state = _TRIGGERED
        ipush(event)
        break
    except BaseException as failure:
        kernel._active_process = None
        event._target = None
        event._exception = failure
        event.defused = False
        event._state = _TRIGGERED
        ipush(event)
        break
    cls = target.__class__
    if cls is float or cls is int:
        if target < 0:
            raise SimulationError(f"negative sleep delay: {{target}}")
        wake = when + target
        if wake == when:
            event._wake = when
            ipush(event)
            break
        if not immediate and (not queue or wake < queue[0][0]){limit_guard}:
            kernel._now = when = wake
            continue
        event._wake = wake
        heappush(queue, (wake, seqn(), event))
        break
    try:
        foreign = target.kernel is not kernel
    except AttributeError:
        raise SimulationError(
            f"process {{event.name!r}} yielded {{target!r}}, "
            "expected an Event"
        ) from None
    if foreign:
        raise SimulationError("yielded an event from another kernel")
    event._target = target
    if target._state != _PROCESSED:
        callbacks = target.callbacks
        if callbacks is None:
            target.callbacks = event._cb
        elif callbacks.__class__ is list:
            callbacks.append(event._cb)
        else:
            target.callbacks = [callbacks, event._cb]
    else:
        target.wait(event._cb)
    break"""

#: One occurrence: the inlined ``_TRIGGERED`` arm (Event._run_callbacks
#: without the method call), the ``_PENDING`` arm fused with the resume
#: chain, and the ``_PROCESSED`` redelivery arm via the method.
_DISPATCH_ARMS = """\
state = event._state
if state == _TRIGGERED:
    event._state = _PROCESSED
    callbacks = event.callbacks
    if callbacks is not None:
        event.callbacks = None
        if callbacks.__class__ is list:
            for callback in callbacks:
                callback(event)
        else:
            callbacks(event)
    exc = event._exception
    if exc is not None and not event.defused:
        raise exc
elif state == _PENDING:
    if not event._started:
        event._started = True
        resumable = True
    elif event._wake == when:
        event._wake = -1.0
        resumable = True
    else:
        resumable = False
    if resumable:
{resume_chain}
else:
    event._run_callbacks()"""

_RUN_TEMPLATE = '''\
def make_run(kernel):
    """Specialized ``Kernel.run`` bound to ``kernel``."""

    def run(until=None):
        if until is not None and until < kernel._now:
            raise SimulationError(
                f"until={{until}} is in the past (now={{kernel._now}})"
            )
        limit = _INF if until is None else until
        queue = kernel._queue
        immediate = kernel._immediate
        ipush = kernel._ipush
        seqn = kernel._seqn
        popleft = immediate.popleft
        while True:
            if immediate:
                when = kernel._now
                while queue and queue[0][0] == when:
                    heappop(queue)[2]._run_callbacks()
            elif queue:
                entry = heappop(queue)
                when = entry[0]
                if when > limit:
                    heappush(queue, entry)
                    break
                kernel._now = when
                event = entry[2]
                while True:
{heap_arms}
                    if not queue or queue[0][0] != when:
                        break
                    event = heappop(queue)[2]
            else:
                break
            while immediate:
                event = popleft()
{fifo_arms}
        if until is not None:
            kernel._now = max(kernel._now, until)

    return run
'''

_RUN_UNTIL_TEMPLATE = '''\
def make_run_until(kernel):
    """Specialized ``Kernel.run_until`` bound to ``kernel``."""

    def run_until(target_event):
        queue = kernel._queue
        immediate = kernel._immediate
        ipush = kernel._ipush
        seqn = kernel._seqn
        popleft = immediate.popleft
        while target_event._state != _PROCESSED:
            if queue and (not immediate or queue[0][0] == kernel._now):
                entry = heappop(queue)
                when = entry[0]
                kernel._now = when
                event = entry[2]
            elif immediate:
                event = popleft()
                when = kernel._now
            else:
                raise SimulationError(
                    "queue drained before the awaited event triggered"
                )
{arms}
        return target_event.value

    return run_until
'''


def _indent(block: str, pad: str) -> str:
    return "\n".join(
        (pad + line) if line else line for line in block.split("\n")
    )


def dispatch_source() -> str:
    """The generated module source (exposed for tests/inspection)."""
    bounded_chain = _RESUME_CHAIN.format(limit_guard=" and wake <= limit")
    free_chain = _RESUME_CHAIN.format(limit_guard="")
    run_arms = _DISPATCH_ARMS.format(
        resume_chain=_indent(bounded_chain, " " * 8)
    )
    until_arms = _DISPATCH_ARMS.format(
        resume_chain=_indent(free_chain, " " * 8)
    )
    run_src = _RUN_TEMPLATE.format(
        heap_arms=_indent(run_arms, " " * 20),
        fifo_arms=_indent(run_arms, " " * 16),
    )
    until_src = _RUN_UNTIL_TEMPLATE.format(
        arms=_indent(until_arms, " " * 12),
    )
    return run_src + "\n\n" + until_src


_FACTORIES: Optional[tuple] = None


def compile_dispatch(kernel_internals: dict) -> None:
    """Exec-compile the dispatch loops against the kernel's internals.

    Called once from the bottom of :mod:`repro.sim.kernel`;
    ``kernel_internals`` supplies ``heappush``/``heappop``, the event
    state constants, ``SimulationError`` and ``Interrupt`` so this
    module never imports the kernel (no circular import).
    """
    global _FACTORIES
    namespace = dict(kernel_internals)
    exec(  # noqa: S102 - the source is generated above, not user input
        compile(dispatch_source(), "<sim-fastpath>", "exec"), namespace
    )
    _FACTORIES = (namespace["make_run"], namespace["make_run_until"])


def make_dispatch(kernel) -> Optional[tuple]:
    """Specialized ``(run, run_until)`` for ``kernel``, or ``None``.

    Variant selection happens here, once per kernel: traced kernels
    (and anything after ``use_generic_dispatch``) stay on the generic
    loop.
    """
    if not _ENABLED or _FACTORIES is None or kernel._tracing:
        return None
    make_run, make_run_until = _FACTORIES
    return make_run(kernel), make_run_until(kernel)
