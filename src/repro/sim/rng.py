"""Named deterministic random streams.

Every stochastic component of the simulation draws from its own named
stream so that (a) runs are reproducible for a given seed and (b) adding
randomness to one component never perturbs another component's draws.

Streams whose *every* draw is one fixed (distribution, parameters)
configuration can be served through :class:`BatchedStream`, which
pre-draws vectors and hands out scalars from a cursor.  numpy's
vectorized draws consume the underlying bit stream exactly like repeated
scalar draws for the distributions allowed here (asserted per
distribution in ``tests/sim/test_rng_batched.py``), so batching is
bit-identical — provided nothing else draws from the wrapped generator.
Streams that mix distributions or parameters (workload generators, the
store's profile-dependent jitters, the platform/invoker stream) must
stay scalar; :class:`RngRegistry` enforces that a name is handed out
either raw or batched, never both.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

#: Pre-draw granularity.  Large enough to amortize the vectorized call,
#: small enough that an unused tail costs nothing noticeable.
DEFAULT_BATCH = 1024


class BatchedStream:
    """Cursor over pre-drawn vectors of ONE fixed-parameter distribution.

    Exposes the distribution's draw method under its numpy name (e.g.
    ``stream.lognormal(mean=0.0, sigma=0.05)``) so call sites keep the
    ``numpy.random.Generator`` calling convention; the arguments are
    validated against the batch configuration on every call and a
    mismatch raises — a silent scalar fallback could not be bit-identical
    once a vector has been prefetched.
    """

    #: Distributions verified batchable (vectorized == sequential draws).
    KINDS = (
        "random",
        "uniform",
        "exponential",
        "pareto",
        "lognormal",
        "standard_normal",
        "normal",
        "geometric",
    )

    __slots__ = ("generator", "kind", "params", "batch", "_buf", "_pos", "_end")

    def __init__(
        self,
        generator: np.random.Generator,
        kind: str,
        batch: int = DEFAULT_BATCH,
        **params: float,
    ):
        if kind not in self.KINDS:
            raise ValueError(
                f"distribution {kind!r} is not verified batchable "
                f"(allowed: {', '.join(self.KINDS)})"
            )
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.generator = generator
        self.kind = kind
        self.params = dict(params)
        self.batch = int(batch)
        self._buf: List[float] = []
        self._pos = 0
        self._end = 0

    def draw(self) -> float:
        """Next scalar of the configured distribution."""
        pos = self._pos
        if pos >= self._end:
            # .tolist() converts to Python floats once per batch: the
            # values are bitwise what sequential scalar draws return.
            self._buf = getattr(self.generator, self.kind)(
                size=self.batch, **self.params
            ).tolist()
            self._end = len(self._buf)
            pos = 0
        self._pos = pos + 1
        return self._buf[pos]

    def _mismatch(self, kind: str, params: dict) -> RuntimeError:
        return RuntimeError(
            f"BatchedStream serves {self.kind}({self.params}); "
            f"refusing {kind}({params}) — draws are prefetched, so a "
            "scalar fallback would break bit-identity. Use a raw stream "
            "for mixed-distribution draw sites."
        )

    # -- numpy.random.Generator-style façade -------------------------------

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        if self.kind != "lognormal" or self.params != {
            "mean": mean,
            "sigma": sigma,
        }:
            raise self._mismatch("lognormal", {"mean": mean, "sigma": sigma})
        return self.draw()

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        if self.kind != "uniform" or self.params != {"low": low, "high": high}:
            raise self._mismatch("uniform", {"low": low, "high": high})
        return self.draw()

    def exponential(self, scale: float = 1.0) -> float:
        if self.kind != "exponential" or self.params != {"scale": scale}:
            raise self._mismatch("exponential", {"scale": scale})
        return self.draw()

    def pareto(self, a: float) -> float:
        if self.kind != "pareto" or self.params != {"a": a}:
            raise self._mismatch("pareto", {"a": a})
        return self.draw()

    def random(self) -> float:
        if self.kind != "random":
            raise self._mismatch("random", {})
        return self.draw()

    def standard_normal(self) -> float:
        if self.kind != "standard_normal":
            raise self._mismatch("standard_normal", {})
        return self.draw()


class RngRegistry:
    """Hands out independent ``numpy.random.Generator`` streams by name."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}
        self._batched: Dict[str, BatchedStream] = {}

    def _seeded(self, name: str) -> np.random.Generator:
        seed_seq = np.random.SeedSequence(
            entropy=self.seed,
            spawn_key=tuple(name.encode("utf-8")),
        )
        return np.random.default_rng(seed_seq)

    def stream(self, name: str) -> np.random.Generator:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed is derived from (registry seed, name) so the
        same name always yields the same sequence for a given seed.
        """
        if name in self._batched:
            raise RuntimeError(
                f"stream {name!r} is served batched; drawing from the "
                "raw generator would desynchronize the prefetched cursor"
            )
        if name not in self._streams:
            self._streams[name] = self._seeded(name)
        return self._streams[name]

    def batched_stream(
        self,
        name: str,
        kind: str,
        batch: int = DEFAULT_BATCH,
        **params: float,
    ) -> BatchedStream:
        """A :class:`BatchedStream` over the named stream.

        Only valid for streams whose every draw uses this one
        configuration; the registry refuses to also hand out the raw
        generator for ``name`` (and vice versa) because interleaved
        direct draws would break the cursor's bit-identity.
        """
        existing = self._batched.get(name)
        if existing is not None:
            if existing.kind != kind or existing.params != params:
                raise RuntimeError(
                    f"stream {name!r} already batched as "
                    f"{existing.kind}({existing.params})"
                )
            return existing
        if name in self._streams:
            raise RuntimeError(
                f"stream {name!r} was already handed out raw; batching it "
                "now would desynchronize earlier scalar draws"
            )
        wrapped = BatchedStream(self._seeded(name), kind, batch, **params)
        self._batched[name] = wrapped
        return wrapped

    def fork(self, salt: int) -> "RngRegistry":
        """A registry whose streams are all independent of this one's."""
        return RngRegistry(seed=(self.seed * 1_000_003 + salt) & 0x7FFFFFFF)
