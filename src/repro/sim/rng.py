"""Named deterministic random streams.

Every stochastic component of the simulation draws from its own named
stream so that (a) runs are reproducible for a given seed and (b) adding
randomness to one component never perturbs another component's draws.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RngRegistry:
    """Hands out independent ``numpy.random.Generator`` streams by name."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed is derived from (registry seed, name) so the
        same name always yields the same sequence for a given seed.
        """
        if name not in self._streams:
            seed_seq = np.random.SeedSequence(
                entropy=self.seed,
                spawn_key=tuple(name.encode("utf-8")),
            )
            self._streams[name] = np.random.default_rng(seed_seq)
        return self._streams[name]

    def fork(self, salt: int) -> "RngRegistry":
        """A registry whose streams are all independent of this one's."""
        return RngRegistry(seed=(self.seed * 1_000_003 + salt) & 0x7FFFFFFF)
