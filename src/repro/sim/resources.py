"""Counting resources and object stores for simulation processes."""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List

from repro.sim.kernel import Event, Kernel, SimulationError


class Resource:
    """A counting resource with FIFO queueing.

    Processes acquire capacity with ``yield resource.acquire(n)`` and must
    release it with ``resource.release(n)``.  Used to model CPU slots on
    invoker nodes and concurrency limits in the storage services.
    """

    def __init__(self, kernel: Kernel, capacity: int):
        if capacity < 0:
            raise SimulationError("resource capacity must be non-negative")
        self.kernel = kernel
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self, amount: int = 1) -> Event:
        if amount <= 0:
            raise SimulationError("acquire amount must be positive")
        if amount > self.capacity:
            raise SimulationError(
                f"acquire({amount}) exceeds capacity {self.capacity}"
            )
        event = Event(self.kernel)
        if not self._waiters and self.in_use + amount <= self.capacity:
            self.in_use += amount
            event.succeed(amount)
        else:
            self._waiters.append((event, amount))
        return event

    def release(self, amount: int = 1) -> None:
        if amount <= 0:
            raise SimulationError("release amount must be positive")
        if amount > self.in_use:
            raise SimulationError("releasing more than is in use")
        self.in_use -= amount
        self._drain()

    def resize(self, capacity: int) -> None:
        """Change total capacity; shrinking never revokes granted units.

        Queued acquires larger than the new capacity can never be
        satisfied; they fail with :class:`SimulationError` instead of
        wedging the FIFO head and starving smaller requests behind them.
        """
        if capacity < 0:
            raise SimulationError("resource capacity must be non-negative")
        self.capacity = capacity
        if self._waiters:
            kept: Deque = deque()
            for event, amount in self._waiters:
                if event.abandoned:
                    continue
                if amount > capacity:
                    event.fail(
                        SimulationError(
                            f"resize({capacity}) below queued "
                            f"acquire({amount})"
                        )
                    )
                else:
                    kept.append((event, amount))
            self._waiters = kept
        self._drain()

    def _drain(self) -> None:
        waiters = self._waiters
        while waiters:
            event, amount = waiters[0]
            if event.abandoned:
                # The waiter was interrupted while queued; granting would
                # leak the units forever (nobody is left to release).
                waiters.popleft()
                continue
            if self.in_use + amount > self.capacity:
                break
            waiters.popleft()
            self.in_use += amount
            event.succeed(amount)


class Store:
    """An unbounded FIFO queue of items with blocking ``get``."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        getters = self._getters
        while getters:
            getter = getters.popleft()
            if getter.abandoned:
                # The getter was interrupted while queued; handing it the
                # item would silently drop it.
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        event = Event(self.kernel)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def snapshot(self) -> List[Any]:
        """Non-destructive view of the queued items (for tests/metrics)."""
        return list(self._items)
