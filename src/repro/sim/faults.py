"""Injectable fault state consulted by instrumented components.

A :class:`FaultState` is a small shared-mutable record that the fault
injector (:mod:`repro.faults`) flips while episodes are active and that
the data-plane components (the RSDS :class:`~repro.storage.object_store.
ObjectStore`, the :class:`~repro.kvcache.cluster.CacheCluster`, the
rclib proxy) consult on their hot paths.

The contract is *zero cost when disabled*: components keep a ``faults``
attribute that is ``None`` by default, so the undisturbed path pays one
attribute load and an ``is None`` test — no generator hop, no extra
event, no RNG draw.  Episodes may overlap (two brown-outs, a brown-out
inside a slow-network window); each knob therefore nests with an entry
counter and multiplicative scales compose.
"""

from __future__ import annotations

from typing import Dict


class FaultState:
    """Mutable fault knobs shared between the injector and components.

    * ``rsds_down`` — the RSDS refuses every operation (raises
      :class:`~repro.storage.errors.StoreUnavailable`).
    * ``rsds_latency_scale`` — multiplier on every RSDS op latency
      (brown-out; 1.0 = healthy).
    * ``network_latency_scale`` — multiplier on inter-node cache ops
      (remote get/put, backup replication, migration hand-off).
    * ``bypass_cache`` — degraded mode: rclib skips the cache entirely
      and serves reads/writes straight from the RSDS.
    """

    __slots__ = (
        "rsds_down",
        "rsds_latency_scale",
        "network_latency_scale",
        "bypass_cache",
        "_outage_depth",
        "_bypass_depth",
    )

    def __init__(self):
        self.rsds_down = False
        self.rsds_latency_scale = 1.0
        self.network_latency_scale = 1.0
        self.bypass_cache = False
        self._outage_depth = 0
        self._bypass_depth = 0

    # -- episode transitions (nesting-safe) --------------------------------

    def enter_outage(self) -> None:
        self._outage_depth += 1
        self.rsds_down = True

    def exit_outage(self) -> None:
        self._outage_depth = max(0, self._outage_depth - 1)
        self.rsds_down = self._outage_depth > 0

    def enter_brownout(self, scale: float) -> None:
        self.rsds_latency_scale *= scale

    def exit_brownout(self, scale: float) -> None:
        if scale:
            self.rsds_latency_scale /= scale

    def enter_slow_network(self, scale: float) -> None:
        self.network_latency_scale *= scale

    def exit_slow_network(self, scale: float) -> None:
        if scale:
            self.network_latency_scale /= scale

    def enter_bypass(self) -> None:
        self._bypass_depth += 1
        self.bypass_cache = True

    def exit_bypass(self) -> None:
        self._bypass_depth = max(0, self._bypass_depth - 1)
        self.bypass_cache = self._bypass_depth > 0

    # -- inspection ---------------------------------------------------------

    @property
    def any_active(self) -> bool:
        return (
            self.rsds_down
            or self.bypass_cache
            or self.rsds_latency_scale != 1.0
            or self.network_latency_scale != 1.0
        )

    def snapshot(self) -> Dict[str, float]:
        return {
            "rsds_down": int(self.rsds_down),
            "rsds_latency_scale": self.rsds_latency_scale,
            "network_latency_scale": self.network_latency_scale,
            "bypass_cache": int(self.bypass_cache),
        }

    def __repr__(self) -> str:
        return (
            f"<FaultState down={self.rsds_down} "
            f"rsds_x{self.rsds_latency_scale:g} "
            f"net_x{self.network_latency_scale:g} "
            f"bypass={self.bypass_cache}>"
        )
