"""Event loop and process machinery for the discrete-event simulator.

The design follows the classic process-interaction style: simulation
logic is written as Python generators that ``yield`` :class:`Event`
objects.  When a yielded event triggers, the process resumes with the
event's value; if the event failed, the exception is thrown into the
generator at the yield point.

Time is a float in **seconds**.  All ordering is deterministic: events
scheduled for the same instant fire in schedule order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.obs.trace import tracer_for_clock


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states.
_PENDING = 0
_TRIGGERED = 1  # scheduled on the queue, callbacks not yet run
_PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it, which schedules its callbacks to run at the current
    simulation time.
    """

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.callbacks: List[Callable[["Event"], None]] = []
        self._state = _PENDING
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        #: Set to True by a waiter (Process/AnyOf) that consumed the failure,
        #: suppressing the "unhandled failed event" error.
        self.defused = False

    @property
    def triggered(self) -> bool:
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event triggered successfully."""
        if not self.triggered:
            raise SimulationError("event has not triggered yet")
        return self._exception is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event has not triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self._state = _TRIGGERED
        self.kernel._enqueue(0.0, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._state = _TRIGGERED
        self.kernel._enqueue(0.0, self)
        return self

    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)
        if self._exception is not None and not self.defused:
            raise self._exception

    def wait(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed."""
        if self._state == _PROCESSED:
            # Already done: deliver on a fresh queue slot, preserving the
            # invariant that callbacks never run re-entrantly.
            proxy = Event(self.kernel)
            proxy.callbacks.append(callback)
            proxy._value = self._value
            proxy._exception = self._exception
            if self._exception is not None:
                proxy.defused = True  # the original already surfaced/defused
            proxy._state = _TRIGGERED
            self.kernel._enqueue(0.0, proxy)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that triggers ``delay`` seconds after creation."""

    def __init__(self, kernel: "Kernel", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(kernel)
        self._value = value
        self._state = _TRIGGERED
        self.delay = delay
        kernel._enqueue(delay, self)


class Process(Event):
    """A running generator; also an event that triggers on termination."""

    def __init__(self, kernel: "Kernel", generator: Generator, name: str = ""):
        super().__init__(kernel)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError("Process requires a generator")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        self._span = (
            kernel.tracer.start("sim.process", process=self.name)
            if kernel.tracer.enabled
            else None
        )
        # Bootstrap: resume once at the current instant.
        kick = Event(kernel)
        kick._state = _TRIGGERED
        kick.callbacks.append(self._resume)
        kernel._enqueue(0.0, kick)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self.triggered:
            return
        if self._target is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None
        kick = Event(self.kernel)
        kick._exception = Interrupt(cause)
        kick.defused = True
        kick._state = _TRIGGERED
        kick.callbacks.append(self._resume)
        self.kernel._enqueue(0.0, kick)

    def _resume(self, event: Event) -> None:
        self._target = None
        self.kernel._active_process = self
        try:
            if event._exception is not None:
                event.defused = True
                target = self.generator.throw(event._exception)
            else:
                target = self.generator.send(event._value)
        except StopIteration as stop:
            self.kernel._active_process = None
            if self._span is not None:
                self._span.finish(status="ok")
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An unhandled Interrupt terminates the process as a failure.
            self.kernel._active_process = None
            if self._span is not None:
                self._span.finish(status="interrupted")
            self._exception = exc
            self._state = _TRIGGERED
            self.kernel._enqueue(0.0, self)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self.kernel._active_process = None
            if self._span is not None:
                self._span.finish(status="failed")
            self._exception = exc
            self._state = _TRIGGERED
            self.kernel._enqueue(0.0, self)
            return
        self.kernel._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        if target.kernel is not self.kernel:
            raise SimulationError("yielded an event from another kernel")
        self._target = target
        target.wait(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf combinators."""

    def __init__(self, kernel: "Kernel", events: Iterable[Event]):
        super().__init__(kernel)
        self.events = list(events)
        self._pending = 0
        for event in self.events:
            if event.kernel is not self.kernel:
                raise SimulationError("mixing events of different kernels")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            self._pending += 1
            event.wait(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict:
        # Only *processed* events count as fired: a Timeout is born in the
        # triggered state, but it has not occurred until its callbacks run.
        return {
            event: event._value
            for event in self.events
            if event.processed and event._exception is None
        }


class AllOf(_Condition):
    """Triggers when all constituent events have triggered.

    Fails as soon as any constituent fails.
    """

    def _check(self, event: Event) -> None:
        self._pending -= 1
        if self.triggered:
            return
        if event._exception is not None:
            event.defused = True
            self.fail(event._exception)
        elif self._pending == 0:
            self.succeed(self._results())


class AnyOf(_Condition):
    """Triggers when the first constituent event triggers."""

    def _check(self, event: Event) -> None:
        self._pending -= 1
        if self.triggered:
            if event._exception is not None:
                event.defused = True
            return
        if event._exception is not None:
            event.defused = True
            self.fail(event._exception)
        else:
            self.succeed(self._results())


class Kernel:
    """The event loop: a priority queue of (time, seq, event)."""

    def __init__(self):
        self._now = 0.0
        self._queue: List = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Observability hook: the shared no-op tracer unless tracing was
        #: globally enabled (see :mod:`repro.obs.trace`) before this
        #: kernel was built.  Components reach it as ``kernel.tracer``.
        self.tracer = tracer_for_clock(lambda: self._now)

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    def _enqueue(self, delay: float, event: Event) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))

    # -- factories -------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        when, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("time went backwards")
        self._now = when
        event._run_callbacks()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if the queue drains earlier.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, until)

    def run_until(self, event: Event) -> Any:
        """Step the loop only until ``event`` completes, then stop.

        Unlike :meth:`run_process`, pending future work (keep-alive
        timers, background persistors, …) is left on the queue, so the
        clock does not race ahead of the event being waited on.
        """
        while not event.processed:
            if not self._queue:
                raise SimulationError(
                    "queue drained before the awaited event triggered"
                )
            self.step()
        return event.value

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: run ``generator`` to completion, return its value."""
        proc = self.process(generator, name=name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} deadlocked (queue drained while waiting)"
            )
        return proc.value
