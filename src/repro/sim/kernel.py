"""Event loop and process machinery for the discrete-event simulator.

The design follows the classic process-interaction style: simulation
logic is written as Python generators that ``yield`` :class:`Event`
objects.  When a yielded event triggers, the process resumes with the
event's value; if the event failed, the exception is thrown into the
generator at the yield point.

Time is a float in **seconds**.  All ordering is deterministic: events
scheduled for the same instant fire in schedule order.

Hot-path notes
--------------
This module is the innermost loop of every experiment, so it trades a
little uniformity for speed:

* every event class uses ``__slots__`` and flattened constructors (no
  ``super().__init__`` chain on the per-occurrence path), and the
  constructors skip fields that are never read for that class (a
  :class:`Timeout` cannot fail, so ``defused`` is never consulted);
* ``callbacks`` stores ``None`` (no waiter), a single callable (the
  overwhelmingly common case: the one process blocked on the event) or
  a list (fan-in), avoiding a list allocation per event;
* occurrences scheduled for the *current* instant — process starts and
  terminations, ``succeed()``/``fail()``, zero timeouts — go to a FIFO
  deque (``_immediate``) instead of the heap: no entry tuple, no
  sequence number, O(1) at both ends.  Heap entries for a time ``T``
  are always older (pushed while the clock was still behind ``T``)
  than immediate entries created at ``T``, so draining heap-then-FIFO
  preserves the exact global schedule order;
* :meth:`Kernel.run` runs callbacks inline instead of dispatching
  through :meth:`Event._run_callbacks`;
* tracing is decided once per kernel: :meth:`Kernel.process` builds a
  plain :class:`Process` (no span fields, no enabled-checks) unless the
  kernel was constructed with tracing on, in which case it builds
  :class:`_TracedProcess`;
* starting a process enqueues the process object itself instead of a
  bootstrap :class:`Event`, and waiting on an already-processed event
  reuses the event's own delivery slot (``_redeliver``) instead of
  allocating a proxy :class:`Event` where that preserves ordering.

All of this changes wall-clock behaviour only: the delivery order of
every occurrence is identical to the straightforward implementation,
so seeded simulations produce bit-identical results (CI enforces this
against ``scripts/bench_baseline.json``).
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from itertools import count
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.obs.trace import tracer_for_clock

_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states.
_PENDING = 0
_TRIGGERED = 1  # scheduled on the queue, callbacks not yet run
_PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it, which schedules its callbacks to run at the current
    simulation time.

    ``callbacks`` is a compact union: ``None`` when nobody waits, a bare
    callable for a single waiter, or a list for several.  Register
    through :meth:`wait`; never append to it directly.
    """

    __slots__ = (
        "kernel",
        "callbacks",
        "_state",
        "_value",
        "_exception",
        "defused",
        "abandoned",
        "_redeliver",
    )

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.callbacks: Any = None
        self._state = _PENDING
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        #: Set to True by a waiter (Process/AnyOf) that consumed the failure,
        #: suppressing the "unhandled failed event" error.
        self.defused = False
        #: Set to True when the last waiter was interrupted away while the
        #: event sat in a Resource/Store queue; the owning queue then drops
        #: the entry instead of triggering it (see sim/resources.py).
        self.abandoned = False
        # Late-wait delivery slot (see wait()).
        self._redeliver: Optional[List[Callable[["Event"], None]]] = None

    @property
    def triggered(self) -> bool:
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event triggered successfully."""
        if self._state == _PENDING:
            raise SimulationError("event has not triggered yet")
        return self._exception is None

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("event has not triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        self._state = _TRIGGERED
        self.kernel._ipush(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        # (Re)initialize here so subclasses whose constructors skip the
        # field (Process) are safe to fail externally.
        self.defused = False
        self._state = _TRIGGERED
        self.kernel._ipush(self)
        return self

    def _run_callbacks(self) -> None:
        # NOTE: Kernel.run/run_until inline the _TRIGGERED arm of this
        # method; any change here must be mirrored there.
        if self._state == _PROCESSED:
            # Redelivery slot for a waiter that registered after this
            # event was processed (see wait()); the failure, if any, was
            # already surfaced or defused the first time around.  The
            # slot is read guarded: a stale queue entry for an already
            # terminated process (interrupted sleep) never had one.
            try:
                callbacks = self._redeliver
            except AttributeError:
                return
            self._redeliver = None
            if callbacks:
                for callback in callbacks:
                    callback(self)
            return
        self._state = _PROCESSED
        callbacks = self.callbacks
        if callbacks is not None:
            self.callbacks = None
            if callbacks.__class__ is list:
                for callback in callbacks:
                    callback(self)
            else:
                callbacks(self)
        if self._exception is not None and not self.defused:
            raise self._exception

    def wait(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed."""
        if self._state != _PROCESSED:
            callbacks = self.callbacks
            if callbacks is None:
                self.callbacks = callback
            elif callbacks.__class__ is list:
                callbacks.append(callback)
            else:
                self.callbacks = [callbacks, callback]
            return
        # Already done: deliver on a fresh queue slot, preserving the
        # invariant that callbacks never run re-entrantly.  The slot is
        # read guarded because flattened constructors skip it.
        try:
            redeliver = self._redeliver
        except AttributeError:
            redeliver = None
        if redeliver is None:
            # The event carries its own redelivery slot: no proxy Event.
            self._redeliver = [callback]
            self.kernel._ipush(self)
        else:
            # A redelivery is already in flight; a second late waiter
            # needs its own, later queue slot to keep the historical
            # delivery order, so fall back to a proxy event.
            proxy = Event(self.kernel)
            proxy.callbacks = callback
            proxy._value = self._value
            proxy._exception = self._exception
            if self._exception is not None:
                proxy.defused = True  # the original already surfaced/defused
            proxy._state = _TRIGGERED
            self.kernel._ipush(proxy)


class Timeout(Event):
    """An event that triggers ``delay`` seconds after creation.

    A timeout is born triggered and can never fail, so the flattened
    constructor skips ``defused``/``abandoned``/``_redeliver`` (every
    read of those fields is either unreachable for timeouts or guarded).
    """

    __slots__ = ("delay",)

    def __init__(self, kernel: "Kernel", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.kernel = kernel
        self.callbacks = None
        self._state = _TRIGGERED
        self._value = value
        self._exception = None
        self.delay = delay
        now = kernel._now
        when = now + delay
        if when == now:
            kernel._ipush(self)
        else:
            heappush(kernel._queue, (when, kernel._seqn(), self))


class Process(Event):
    """A running generator; also an event that triggers on termination.

    This is the no-trace fast path: it carries no span state and never
    consults the tracer.  Kernels with tracing enabled build
    :class:`_TracedProcess` instead (see :meth:`Kernel.process`).

    Besides events, a process may ``yield`` a bare ``float``/``int``
    delay — the fast sleep path.  The process itself is enqueued for
    the wake instant (no Timeout object, no callback registration),
    consuming exactly the sequence number the equivalent
    ``kernel.timeout(delay)`` would have, so the global schedule order
    is unchanged.  ``_wake`` carries the pending wake time (interrupt
    invalidates it so a stale heap entry is dropped on delivery).
    """

    __slots__ = (
        "generator",
        "name",
        "_target",
        "_started",
        "_wake",
        "_cb",
        "_send",
        "_throw",
    )

    def __init__(self, kernel: "Kernel", generator: Generator, name: str = ""):
        try:
            # Cached bound methods: saves an attribute lookup plus a
            # method-object allocation on every resume.
            self._send = generator.send
            self._throw = generator.throw
        except AttributeError:
            raise SimulationError("Process requires a generator") from None
        self.kernel = kernel
        self.callbacks = None
        self._state = _PENDING
        self._value = None
        self._exception = None
        # defused is initialized by the failure-termination paths in
        # _resume — the only flows that ever read it for a process.
        self.generator = generator
        if name:
            self.name = name
        else:
            try:
                self.name = generator.__name__
            except AttributeError:
                self.name = "process"
        self._target: Optional[Event] = None
        self._started = False
        # The one bound resume callback this process ever registers;
        # binding it once avoids a method-object allocation per yield.
        self._cb = self._resume
        # Bootstrap: the process object itself takes the queue slot the
        # first resume fires from (no kick Event needed).
        kernel._ipush(self)

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self._state != _PENDING:
            return
        target = self._target
        if target is not None:
            callbacks = target.callbacks
            removed = False
            if callbacks is self._cb:
                target.callbacks = None
                removed = True
            elif callbacks.__class__ is list:
                try:
                    callbacks.remove(self._cb)
                    removed = True
                except ValueError:
                    pass
            if removed and not target.callbacks and target._state == _PENDING:
                # Nobody is listening any more: let owning queues
                # (Resource/Store) drop the entry instead of
                # granting/consuming on behalf of a dead waiter.
                target.abandoned = True
            self._target = None
        # Invalidate any pending sleep so its queue entry goes stale.
        self._wake = -1.0
        kick = Event(self.kernel)
        kick._exception = Interrupt(cause)
        kick.defused = True
        kick._state = _TRIGGERED
        kick.callbacks = self._cb
        self.kernel._ipush(kick)

    def _run_callbacks(self) -> None:
        if self._state == _PENDING:
            # A pending process on the queue is either its bootstrap
            # slot or a sleep wake (stale if the sleep was interrupted).
            if self._started:
                if self._wake == self.kernel._now:
                    self._wake = -1.0
                    self._resume(_BOOTSTRAP)
            else:
                self._started = True
                self._resume(_BOOTSTRAP)
            return
        Event._run_callbacks(self)

    def _resume(self, event: Event) -> Optional[str]:
        """Advance the generator once; returns a status on termination."""
        kernel = self.kernel
        # Set on entry, cleared only on termination: between resumes the
        # field names the last process that ran (see Kernel.active_process).
        kernel._active_process = self
        try:
            exc = event._exception
            if exc is None:
                target = self._send(event._value)
            else:
                event.defused = True
                target = self._throw(exc)
        except StopIteration as stop:
            kernel._active_process = None
            self._target = None
            self._value = stop.value
            self._state = _TRIGGERED
            kernel._ipush(self)
            return "ok"
        except Interrupt as interrupt_exc:
            # An unhandled Interrupt terminates the process as a failure.
            kernel._active_process = None
            self._target = None
            self._exception = interrupt_exc
            self.defused = False
            self._state = _TRIGGERED
            kernel._ipush(self)
            return "interrupted"
        except BaseException as failure:  # noqa: BLE001 - propagate via event
            kernel._active_process = None
            self._target = None
            self._exception = failure
            self.defused = False
            self._state = _TRIGGERED
            kernel._ipush(self)
            return "failed"
        # Fast sleep path: a bare delay re-enqueues the process itself.
        cls = target.__class__
        if cls is float or cls is int:
            if target < 0:
                raise SimulationError(f"negative sleep delay: {target}")
            self._target = None
            now = kernel._now
            when = now + target
            self._wake = when
            if when == now:
                kernel._ipush(self)
            else:
                heappush(kernel._queue, (when, kernel._seqn(), self))
            return None
        # Duck-typed Event check: every Event carries ``kernel``, so the
        # identity test doubles as the type test (saves an isinstance per
        # yield on the hot path).
        try:
            foreign = target.kernel is not kernel
        except AttributeError:
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            ) from None
        if foreign:
            raise SimulationError("yielded an event from another kernel")
        self._target = target
        if target._state != _PROCESSED:
            callbacks = target.callbacks
            if callbacks is None:
                target.callbacks = self._cb
            elif callbacks.__class__ is list:
                callbacks.append(self._cb)
            else:
                target.callbacks = [callbacks, self._cb]
        else:
            target.wait(self._cb)
        return None


#: Shared sentinel delivered on a process's first resume: a bare Event
#: shell whose only readable fields are a None value and no exception.
_BOOTSTRAP = Event.__new__(Event)
_BOOTSTRAP._value = None
_BOOTSTRAP._exception = None


class _TracedProcess(Process):
    """Process variant that records a ``sim.process`` span."""

    __slots__ = ("_span",)

    def __init__(self, kernel: "Kernel", generator: Generator, name: str = ""):
        Process.__init__(self, kernel, generator, name)
        self._span = kernel.tracer.start("sim.process", process=self.name)

    def _resume(self, event: Event) -> Optional[str]:
        status = Process._resume(self, event)
        if status is not None:
            self._span.finish(status=status)
        return status


class _Condition(Event):
    """Base for AllOf/AnyOf combinators."""

    __slots__ = ("events", "_pending")

    def __init__(self, kernel: "Kernel", events: Iterable[Event]):
        super().__init__(kernel)
        self.events = list(events)
        self._pending = 0
        for event in self.events:
            if event.kernel is not self.kernel:
                raise SimulationError("mixing events of different kernels")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            self._pending += 1
            event.wait(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict:
        # Only *processed* events count as fired: a Timeout is born in the
        # triggered state, but it has not occurred until its callbacks run.
        return {
            event: event._value
            for event in self.events
            if event._state == _PROCESSED and event._exception is None
        }


class AllOf(_Condition):
    """Triggers when all constituent events have triggered.

    Fails as soon as any constituent fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        self._pending -= 1
        if self._state != _PENDING:
            return
        if event._exception is not None:
            event.defused = True
            self.fail(event._exception)
        elif self._pending == 0:
            self.succeed(self._results())


class AnyOf(_Condition):
    """Triggers when the first constituent event triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        self._pending -= 1
        if self._state != _PENDING:
            if event._exception is not None:
                event.defused = True
            return
        if event._exception is not None:
            event.defused = True
            self.fail(event._exception)
        else:
            self.succeed(self._results())


class Kernel:
    """The event loop.

    Future occurrences live on a heap of ``(time, seq, event)``;
    occurrences for the current instant live on the ``_immediate`` FIFO.
    At any instant the heap's same-time entries are strictly older than
    every ``_immediate`` entry, so the drain order heap-then-FIFO equals
    the classic single-heap schedule order.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_immediate",
        "_ipush",
        "_seqn",
        "_active_process",
        "tracer",
        "_tracing",
        "_fast_run",
        "_fast_run_until",
        "_dispatch_variant",
    )

    def __init__(self):
        self._now = 0.0
        self._queue: List = []
        self._immediate: deque = deque()
        # Cached bound methods for the hot push paths: `kernel._ipush(e)`
        # appends to the FIFO, `kernel._seqn()` mints the next heap
        # sequence number (monotonic from 1, so schedule order ties break
        # identically to the classic counter).
        self._ipush = self._immediate.append
        self._seqn = count(1).__next__
        self._active_process: Optional[Process] = None
        #: Observability hook: the shared no-op tracer unless tracing was
        #: globally enabled (see :mod:`repro.obs.trace`) before this
        #: kernel was built.  Components reach it as ``kernel.tracer``.
        self.tracer = tracer_for_clock(lambda: self._now)
        # Cached once: picks the traced/untraced Process class below.
        self._tracing = self.tracer.enabled
        # Generated dispatch loops (see repro.sim.fastpath): selected
        # once per kernel; None routes run()/run_until() through the
        # generic bodies below (traced kernels, knob off).
        dispatch = _fastpath.make_dispatch(self)
        if dispatch is None:
            self._fast_run = None
            self._fast_run_until = None
            self._dispatch_variant = "generic"
        else:
            self._fast_run, self._fast_run_until = dispatch
            self._dispatch_variant = "fast"

    def use_generic_dispatch(self) -> None:
        """Route this kernel through the generic (reference) loop.

        The global opt-out (``REPRO_SIM_FASTPATH=0``) and tracing both
        land here; harmless when the fast path was never installed.
        """
        self._fast_run = None
        self._fast_run_until = None
        self._dispatch_variant = "generic"

    def use_faulted_dispatch(self) -> None:
        """Install the faulted fast-path variant on this kernel.

        Fault tooling (:class:`~repro.faults.injector.FaultInjector`)
        calls this instead of downgrading to the generic loop: the
        fault state lives on the components, not the kernel, so the
        fused drain and direct-resume chain stay valid for the whole
        run.  The variant is the same generated semantics compiled as
        its own unit (``<sim-fastpath-faulted>``), parity-gated like
        the standard one.  Falls back to the generic loop when the
        fast path is globally disabled or this kernel is traced.
        """
        dispatch = _fastpath.make_dispatch(self, faulted=True)
        if dispatch is None:
            self.use_generic_dispatch()
        else:
            self._fast_run, self._fast_run_until = dispatch
            self._dispatch_variant = "fast-faulted"

    @property
    def dispatch_variant(self) -> str:
        """Which dispatch loop this kernel runs.

        ``"fast"`` (generated), ``"fast-faulted"`` (generated, faulted
        compile unit) or ``"generic"`` (reference loop).
        """
        return self._dispatch_variant

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process whose generator is executing (or just ran).

        Only meaningful when read from inside process code; between
        resumes the hot path leaves the last-resumed process in place
        rather than clearing it, and it resets to None when that process
        terminates.
        """
        return self._active_process

    def _enqueue(self, delay: float, event: Event) -> None:
        now = self._now
        when = now + delay
        if when == now:
            self._ipush(event)
        else:
            heappush(self._queue, (when, self._seqn(), event))

    # -- factories -------------------------------------------------------

    def event(self, _new=Event.__new__, _cls=Event) -> Event:
        # Flattened copy of Event.__init__ (same trick as timeout()).
        event = _new(_cls)
        event.kernel = self
        event.callbacks = None
        event._state = _PENDING
        event._value = None
        event._exception = None
        event.defused = False
        event.abandoned = False
        event._redeliver = None
        return event

    def timeout(
        self,
        delay: float,
        value: Any = None,
        _new=Timeout.__new__,
        _cls=Timeout,
        _push=heappush,
    ) -> Timeout:
        # Flattened copy of Timeout.__init__: timeouts dominate event
        # traffic, so the factory skips the extra constructor frame (and
        # binds its globals as defaults — the classic CPython trick).
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        timeout = _new(_cls)
        timeout.kernel = self
        timeout.callbacks = None
        timeout._state = _TRIGGERED
        timeout._value = value
        timeout._exception = None
        timeout.delay = delay
        now = self._now
        when = now + delay
        if when == now:
            self._ipush(timeout)
        else:
            _push(self._queue, (when, self._seqn(), timeout))
        return timeout

    def process(self, generator: Generator, name: str = "") -> Process:
        if self._tracing:
            return _TracedProcess(self, generator, name=name)
        return Process(self, generator, name=name)

    def call_later(
        self,
        delay_fn: Callable[[], float],
        callback: Optional[Callable[[Event], None]] = None,
        _new=Event.__new__,
        _cls=Event,
    ) -> None:
        """Run ``callback`` after ``delay_fn()`` sim-seconds, cheaply.

        Drop-in replacement for the fire-and-forget pattern

            def task():
                yield delay_fn()
                callback_body()
            kernel.process(task())  # handle discarded

        without the generator, Process, or two resume frames — while
        consuming *exactly* the queue slots of that process, so
        schedules stay bit-identical:

        * an arming event on the FIFO **now**, whose callback runs at
          the process's bootstrap-resume position and evaluates
          ``delay_fn`` there (RNG draws land at the same point in the
          stream as the generator body would draw them);
        * the fire event on the heap (or FIFO for a zero/underflowed
          delay), minting its sequence number at that same position —
          ``callback`` runs where the post-sleep body would.

        The generic process also ipushes a no-op termination event; with
        the handle discarded it has no callbacks and no observable
        effect, so it is elided.  Exceptions from ``callback`` surface
        out of ``run()`` at the wake instant, like a process failure.
        """
        kernel = self

        def _arm(_event: Event) -> None:
            fire = kernel.timeout(delay_fn())
            if callback is not None:
                fire.callbacks = callback

        arming = _new(_cls)
        arming.kernel = kernel
        arming.callbacks = _arm
        arming._state = _TRIGGERED
        arming._value = None
        arming._exception = None
        arming.defused = False
        self._ipush(arming)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        queue = self._queue
        immediate = self._immediate
        if queue and (not immediate or queue[0][0] == self._now):
            when, _seq, event = heappop(queue)
            if when < self._now:
                raise SimulationError("time went backwards")
            self._now = when
        else:
            event = immediate.popleft()  # IndexError mirrors empty heap
        event._run_callbacks()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if the queue drains earlier.
        """
        fast = self._fast_run
        if fast is not None:
            return fast(until)
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        limit = _INF if until is None else until
        queue = self._queue
        immediate = self._immediate
        pop = heappop
        push = heappush
        popleft = immediate.popleft
        while True:
            # Pick the next instant.  Leftovers on the FIFO (only after
            # a partial run_until) happen now — and heap entries already
            # at the current instant (same provenance) are older still,
            # so the cold branch drains those first.
            if immediate:
                when = self._now
                while queue and queue[0][0] == when:
                    pop(queue)[2]._run_callbacks()
            elif queue:
                # Speculative pop: the heap top is the next instant
                # unless it lies beyond `limit` (rare — push it back).
                entry = pop(queue)
                when = entry[0]
                if when > limit:
                    push(queue, entry)
                    break
                self._now = when
                event = entry[2]
                # Drain the heap at `when`: all entries for this instant
                # are already on the heap (a push while the clock sits
                # at `when` goes to the FIFO).  The _TRIGGERED arm is
                # Event._run_callbacks inlined (one call per event
                # saved); a _PENDING entry can only be a process
                # bootstrap (pending events are never enqueued
                # otherwise), and _PROCESSED (late-wait redelivery)
                # dispatches through the method.
                while True:
                    state = event._state
                    if state == _TRIGGERED:
                        event._state = _PROCESSED
                        callbacks = event.callbacks
                        if callbacks is not None:
                            event.callbacks = None
                            if callbacks.__class__ is list:
                                for callback in callbacks:
                                    callback(event)
                            else:
                                callbacks(event)
                        exc = event._exception
                        if exc is not None and not event.defused:
                            raise exc
                    elif state == _PENDING:
                        if not event._started:
                            event._started = True
                            event._resume(_BOOTSTRAP)
                        elif event._wake == when:
                            event._wake = -1.0
                            event._resume(_BOOTSTRAP)
                        # else: stale wake of an interrupted sleep — drop
                    else:
                        event._run_callbacks()
                    if not queue or queue[0][0] != when:
                        break
                    event = pop(queue)[2]
            else:
                break
            # Then the FIFO, which may grow while draining (strictly
            # younger than every heap entry for this instant).
            while immediate:
                event = popleft()
                state = event._state
                if state == _TRIGGERED:
                    event._state = _PROCESSED
                    callbacks = event.callbacks
                    if callbacks is not None:
                        event.callbacks = None
                        if callbacks.__class__ is list:
                            for callback in callbacks:
                                callback(event)
                        else:
                            callbacks(event)
                    exc = event._exception
                    if exc is not None and not event.defused:
                        raise exc
                elif state == _PENDING:
                    if not event._started:
                        event._started = True
                        event._resume(_BOOTSTRAP)
                    elif event._wake == when:
                        event._wake = -1.0
                        event._resume(_BOOTSTRAP)
                else:
                    event._run_callbacks()
        if until is not None:
            self._now = max(self._now, until)

    def run_until(self, event: Event) -> Any:
        """Step the loop only until ``event`` completes, then stop.

        Unlike :meth:`run_process`, pending future work (keep-alive
        timers, background persistors, …) is left on the queue, so the
        clock does not race ahead of the event being waited on.
        """
        fast = self._fast_run_until
        if fast is not None:
            return fast(event)
        queue = self._queue
        immediate = self._immediate
        while event._state != _PROCESSED:
            if queue and (not immediate or queue[0][0] == self._now):
                when, _seq, current = heappop(queue)
                self._now = when
            elif immediate:
                current = immediate.popleft()
            else:
                raise SimulationError(
                    "queue drained before the awaited event triggered"
                )
            state = current._state
            if state == _TRIGGERED:
                current._state = _PROCESSED
                callbacks = current.callbacks
                if callbacks is not None:
                    current.callbacks = None
                    if callbacks.__class__ is list:
                        for callback in callbacks:
                            callback(current)
                    else:
                        callbacks(current)
                exc = current._exception
                if exc is not None and not current.defused:
                    raise exc
            elif state == _PENDING:
                if not current._started:
                    current._started = True
                    current._resume(_BOOTSTRAP)
                elif current._wake == self._now:
                    current._wake = -1.0
                    current._resume(_BOOTSTRAP)
            else:
                current._run_callbacks()
        return event.value

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: run ``generator`` to completion, return its value."""
        proc = self.process(generator, name=name)
        self.run()
        if proc._state == _PENDING:
            raise SimulationError(
                f"process {proc.name!r} deadlocked (queue drained while waiting)"
            )
        return proc.value


# ---------------------------------------------------------------------------
# Generated dispatch (see repro.sim.fastpath).  Imported last so the
# fastpath module can be handed this module's internals without a
# circular import; the loops compile once per interpreter and install
# per kernel in Kernel.__init__.
from repro.sim import fastpath as _fastpath  # noqa: E402

_fastpath.compile_dispatch(
    {
        "heappop": heappop,
        "heappush": heappush,
        "_PENDING": _PENDING,
        "_TRIGGERED": _TRIGGERED,
        "_PROCESSED": _PROCESSED,
        "_INF": _INF,
        # The fused delivery arms recognize a plain process-resume
        # callback by identity: a bound method whose function is
        # exactly Process._resume (subclass overrides — _TracedProcess
        # — fail the check and dispatch through the call, preserving
        # their span bookkeeping).
        "_MethodType": type(_BOOTSTRAP._run_callbacks),
        "_PROC_RESUME": Process._resume,
        "SimulationError": SimulationError,
        "Interrupt": Interrupt,
    }
)
