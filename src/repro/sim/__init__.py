"""Discrete-event simulation kernel.

This package provides the simulated substrate on which every other
subsystem of the reproduction runs: a deterministic event loop with a
virtual clock (:class:`~repro.sim.kernel.Kernel`), generator-based
processes (:class:`~repro.sim.kernel.Process`), counting resources
(:class:`~repro.sim.resources.Resource`), calibrated latency models
(:mod:`repro.sim.latency`) and named deterministic random streams
(:class:`~repro.sim.rng.RngRegistry`).

The kernel is intentionally SimPy-flavoured (processes are generators
that ``yield`` events) but is written from scratch so the repository has
no dependency beyond numpy.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Kernel,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.latency import LatencyModel
from repro.sim.resources import Resource, Store
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Kernel",
    "LatencyModel",
    "Process",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Store",
    "Timeout",
]
