"""Calibrated latency models.

A :class:`LatencyModel` turns an operation on ``nbytes`` of payload into
a duration: ``base + nbytes / bandwidth``, scaled by a bounded lognormal
jitter factor.  The constants used across the repository are calibrated
to the numbers the OFC paper reports (§6.4, §7.2.1): e.g. the cgroup
resize of ~24 ms, RAMCloud scaling in the hundreds of microseconds, and
object migration of 0.18 ms for 8 MB up to 13.5 ms for 1 GB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024

#: Jitter-factor clip bounds (see :class:`LatencyModel.jitter`).
_JITTER_FLOOR = 1 / 3
_JITTER_CEIL = 3.0


@dataclass(frozen=True)
class LatencyModel:
    """``base_s + nbytes / bandwidth_bps`` with multiplicative jitter.

    Parameters
    ----------
    base_s:
        Fixed per-operation overhead in seconds.
    bandwidth_bps:
        Payload transfer rate in bytes/second (``None`` = infinite).
    jitter:
        Standard deviation of the lognormal jitter factor (0 disables
        jitter).  The factor is clipped to [1/3, 3] so a single unlucky
        draw cannot distort an experiment.
    """

    base_s: float
    bandwidth_bps: Optional[float] = None
    jitter: float = 0.0

    def mean(self, nbytes: int = 0) -> float:
        """Expected duration without jitter."""
        duration = self.base_s
        if self.bandwidth_bps:
            duration += nbytes / self.bandwidth_bps
        return duration

    def sample(self, rng: Optional[np.random.Generator], nbytes: int = 0) -> float:
        """Draw one duration for an operation on ``nbytes``."""
        duration = self.mean(nbytes)
        if self.jitter > 0.0 and rng is not None:
            # min/max instead of np.clip: identical on scalars (clip is
            # max-then-min) without the ufunc machinery per draw.  `rng`
            # may be a BatchedStream serving pre-drawn lognormals — the
            # call signature is the contract it validates against.
            factor = rng.lognormal(mean=0.0, sigma=self.jitter)
            if factor < _JITTER_FLOOR:
                factor = _JITTER_FLOOR
            elif factor > _JITTER_CEIL:
                factor = _JITTER_CEIL
            duration *= factor
        return duration

    def scaled(self, factor: float) -> "LatencyModel":
        """A model with both base and per-byte cost scaled by ``factor``."""
        bandwidth = (
            None if self.bandwidth_bps is None else self.bandwidth_bps / factor
        )
        return LatencyModel(self.base_s * factor, bandwidth, self.jitter)


# ---------------------------------------------------------------------------
# Platform constants calibrated to the paper.
# ---------------------------------------------------------------------------

#: End-to-end time to push an empty invocation through the platform (§6.4).
PLATFORM_OVERHEAD = LatencyModel(base_s=8e-3, jitter=0.05)

#: Predictor + Sizer overhead on the critical path (§7.2.1: "about 6 ms").
OFC_CONTROL_OVERHEAD = LatencyModel(base_s=6e-3, jitter=0.05)

#: cgroup memory-limit syscall (§6.4: ~0.8 ms syscall).
CGROUP_SYSCALL = LatencyModel(base_s=0.8e-3, jitter=0.05)

#: Full ``docker update`` path including the cgroup syscall (~24 ms).
DOCKER_UPDATE = LatencyModel(base_s=23.8e-3, jitter=0.05)

#: Cold start of a container sandbox (hundreds of ms under load, §2.2.1).
COLD_START = LatencyModel(base_s=450e-3, jitter=0.08)

#: Warm start handoff to an idle sandbox.
WARM_START = LatencyModel(base_s=8e-3, jitter=0.05)

#: RAMCloud memory-pool reconfiguration without eviction (§7.2.1: 289 us).
CACHE_SCALE_PLAIN = LatencyModel(base_s=289e-6, jitter=0.05)

#: RAMCloud memory-pool reconfiguration with eviction (§7.2.1: 373 us).
CACHE_SCALE_EVICT = LatencyModel(base_s=373e-6, jitter=0.05)

#: Master hand-off migration: 0.18 ms @ 8 MB ... 13.5 ms @ 1 GB (§7.2.1).
#: Affine fit: ~0.08 ms + ~13.1 us/MB.
MIGRATION = LatencyModel(base_s=0.08e-3, bandwidth_bps=80 * GB, jitter=0.05)

#: Synchronous persistence of a zero-payload shadow object (~11 ms, §7.2.1).
SHADOW_PERSIST = LatencyModel(base_s=11e-3, jitter=0.05)
