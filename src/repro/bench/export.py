"""Telemetry export: invocation records as JSON lines.

Lets downstream analysis (pandas, spreadsheets) consume simulation
telemetry without touching internal objects.  Used by the examples and
available as a library utility.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Union

from repro.faas.pipeline import PipelineRecord
from repro.faas.records import InvocationRecord


def record_to_dict(record: InvocationRecord) -> dict:
    """A flat, JSON-safe view of one invocation record."""
    return {
        "request_id": record.request.request_id,
        "function": record.request.function,
        "tenant": record.request.tenant,
        "pipeline_id": record.request.pipeline_id,
        "node": record.node,
        "sandbox_id": record.sandbox_id,
        "status": record.status,
        "cold_start": record.cold_start,
        "submitted_at": record.submitted_at,
        "started_at": record.started_at,
        "finished_at": record.finished_at,
        "duration_s": record.duration,
        "execution_s": record.execution_time,
        "extract_s": record.phases.extract,
        "transform_s": record.phases.transform,
        "load_s": record.phases.load,
        "bytes_in": record.bytes_in,
        "bytes_out": record.bytes_out,
        "booked_mb": record.booked_memory_mb,
        "limit_mb": record.memory_limit_mb,
        "peak_mb": record.peak_memory_mb,
        "predicted_mb": record.predicted_memory_mb,
        "should_cache": record.should_cache,
        "retries": record.retries,
        "oom_kills": record.oom_kills,
        "output_refs": list(record.output_refs),
    }


def pipeline_to_dict(record: PipelineRecord) -> dict:
    split = record.phase_split()
    return {
        "pipeline": record.pipeline,
        "pipeline_id": record.pipeline_id,
        "status": record.status,
        "submitted_at": record.submitted_at,
        "finished_at": record.finished_at,
        "duration_s": record.duration,
        "extract_s": split.extract,
        "transform_s": split.transform,
        "load_s": split.load,
        "stages": [
            {
                "function": stage.function,
                "wall_s": stage.wall_time,
                "invocations": len(stage.records),
            }
            for stage in record.stage_records
        ],
    }


def write_jsonl(
    records: Iterable[Union[InvocationRecord, PipelineRecord]],
    sink: IO[str],
) -> int:
    """Write records as JSON lines; returns the number written."""
    count = 0
    for record in records:
        if isinstance(record, PipelineRecord):
            payload = pipeline_to_dict(record)
        else:
            payload = record_to_dict(record)
        sink.write(json.dumps(payload) + "\n")
        count += 1
    return count


def read_jsonl(source: IO[str]) -> List[dict]:
    """Parse a JSONL telemetry file back into dicts."""
    return [json.loads(line) for line in source if line.strip()]
